# Shared helpers for the CI smoke scripts. Source this after `set
# -euo pipefail`:
#
#   source "$(dirname "$0")/lib.sh"
#
# Provides:
#   $BIN                 — the binary under test (override with BIN=...)
#   fail MSG             — print "FAIL: MSG" and exit 1
#   start_server SOCK .. — start `$BIN serve --listen SOCK ..` in the
#                          background, wait for the socket, track the pid
#   stop_server [PID]    — kill + reap one tracked server (default: the
#                          most recent) and remove its socket file
#   wait_for_socket SOCK — wait until SOCK exists (or fail)
#   assert_json_field FILE FIELD VALUE_RE [MSG]
#                        — grep a JSON-lines file for "FIELD": VALUE_RE
#   json_field_value FILE FIELD
#                        — print the first numeric value of FIELD
#   CLEANUP_FILES+=(..)  — extra files to remove on exit
#   CLEANUP_DIRS+=(..)   — extra directories to remove on exit
#
# Every tracked server is killed *and reaped* by the EXIT trap, so a
# failing assertion can never leak a background process or hang the
# runner.

BIN=${BIN:-./target/release/rect-addr}
SERVER_PIDS=()
SERVER_SOCKS=()
CLEANUP_FILES=()
CLEANUP_DIRS=()

fail() {
  echo "FAIL: $*"
  exit 1
}

wait_for_socket() {
  local sock=$1
  for _ in $(seq 40); do
    [ -S "$sock" ] && return 0
    sleep 0.25
  done
  fail "server socket $sock never appeared"
}

# start_server SOCK [serve args...] — the socket path comes first, any
# extra `serve` options follow. Sets LAST_SERVER_PID.
start_server() {
  local sock=$1
  shift
  rm -f "$sock"
  "$BIN" serve --listen "$sock" "$@" &
  LAST_SERVER_PID=$!
  SERVER_PIDS+=("$LAST_SERVER_PID")
  SERVER_SOCKS+=("$sock")
  wait_for_socket "$sock"
}

# stop_server [PID] — kill + reap one tracked server; with no argument,
# the most recently started one.
stop_server() {
  local pid=${1:-${SERVER_PIDS[${#SERVER_PIDS[@]}-1]}}
  local pids=("${SERVER_PIDS[@]}") socks=("${SERVER_SOCKS[@]}")
  SERVER_PIDS=()
  SERVER_SOCKS=()
  local i
  for i in "${!pids[@]}"; do
    if [ "${pids[$i]}" = "$pid" ]; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
      rm -f "${socks[$i]}"
    else
      SERVER_PIDS+=("${pids[$i]}")
      SERVER_SOCKS+=("${socks[$i]}")
    fi
  done
}

# assert_json_field FILE FIELD VALUE_RE [MSG] — the file must contain a
# line with `"FIELD": VALUE_RE` (extended regex on the value side).
assert_json_field() {
  local file=$1 field=$2 value=$3
  grep -Eq "\"$field\": $value" "$file" \
    || fail "${4:-$file lacks \"$field\": $value}"
}

# json_field_value FILE FIELD — first numeric value of FIELD, or empty.
json_field_value() {
  sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

lib_cleanup() {
  local pid
  for pid in ${SERVER_PIDS[@]+"${SERVER_PIDS[@]}"}; do
    if kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  local sock
  for sock in ${SERVER_SOCKS[@]+"${SERVER_SOCKS[@]}"}; do
    rm -f "$sock"
  done
  local f
  for f in ${CLEANUP_FILES[@]+"${CLEANUP_FILES[@]}"}; do
    rm -f "$f"
  done
  local d
  for d in ${CLEANUP_DIRS[@]+"${CLEANUP_DIRS[@]}"}; do
    rm -rf "$d"
  done
}
trap lib_cleanup EXIT
