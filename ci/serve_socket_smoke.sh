#!/usr/bin/env bash
# Serve-socket smoke: start the socket server, pump 50 v1 job lines
# through `rect-addr client`, assert the drained summary. 49 jobs are
# permuted duplicates of one 2x2 class — the shared cache must answer 49
# hits. Hardened: the server is always killed *and reaped* (trap), the
# temp files never leak, and a hung server fails the step via `timeout`
# instead of hanging the runner.
set -euo pipefail

BIN=${BIN:-./target/release/rect-addr}
SOCK=/tmp/rect-addr-ci.sock
JOBS=/tmp/rect-addr-ci-jobs.jsonl
OUT=/tmp/rect-addr-ci-out.jsonl
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK" "$JOBS" "$OUT"
}
trap cleanup EXIT

rm -f "$SOCK"
"$BIN" serve --listen "$SOCK" &
SERVER_PID=$!
for _ in $(seq 40); do
  [ -S "$SOCK" ] && break
  sleep 0.25
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

{ for i in $(seq 50); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "{\"id\": \"j$i\", \"matrix\": \"10;01\"}"
    else
      echo "{\"id\": \"j$i\", \"matrix\": \"01;10\"}"
    fi
  done } > "$JOBS"

timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

tail -n 1 "$OUT"
grep -q '"summary": true' "$OUT"
grep -q '"solved": 50' "$OUT"
grep -q '"cache_hits": 49' "$OUT"
test "$(wc -l < "$OUT")" -eq 51
echo "serve-socket smoke OK"
