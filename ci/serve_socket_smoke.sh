#!/usr/bin/env bash
# Serve-socket smoke: start the socket server, pump 50 v1 job lines
# through `rect-addr client`, assert the drained summary. 49 jobs are
# permuted duplicates of one 2x2 class — the shared cache must answer 49
# hits. Hardening (trap-reaped server, no temp leaks, `timeout` instead
# of hangs) comes from ci/lib.sh.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK=/tmp/rect-addr-ci.sock
JOBS=/tmp/rect-addr-ci-jobs.jsonl
OUT=/tmp/rect-addr-ci-out.jsonl
CLEANUP_FILES+=("$JOBS" "$OUT")

start_server "$SOCK"

{ for i in $(seq 50); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "{\"id\": \"j$i\", \"matrix\": \"10;01\"}"
    else
      echo "{\"id\": \"j$i\", \"matrix\": \"01;10\"}"
    fi
  done } > "$JOBS"

timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

stop_server

tail -n 1 "$OUT"
assert_json_field "$OUT" summary true
assert_json_field "$OUT" solved 50
assert_json_field "$OUT" cache_hits 49
test "$(wc -l < "$OUT")" -eq 51
echo "serve-socket smoke OK"
