#!/usr/bin/env bash
# Traffic smoke: the circuit-level workload path end to end against a
# live socket server. (1) A 3-layer v2 `schedule` frame must stream
# three per-layer responses plus a summary whose cross-layer cache hits
# are nonzero — layer 2 repeats layer 0, so the sequential schedule
# runner must harvest the reuse. (2) The stats frame must count the
# schedule and its layers. (3) A seeded `rect-addr traffic` stream must
# replay byte-identically and solve through the same server. Hardening
# (trap-reaped server, no temp leaks, `timeout` instead of hangs) comes
# from ci/lib.sh.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK=/tmp/rect-addr-traffic-ci.sock
IN=/tmp/rect-addr-traffic-ci-in.jsonl
OUT=/tmp/rect-addr-traffic-ci-out.jsonl
GEN_A=/tmp/rect-addr-traffic-ci-gen-a.jsonl
GEN_B=/tmp/rect-addr-traffic-ci-gen-b.jsonl
CLEANUP_FILES+=("$IN" "$OUT" "$GEN_A" "$GEN_B")

start_server "$SOCK"

# One v2 session: a 3-layer schedule (layer 2 == layer 0). The client
# half-closes after stdin, so the summary drains too.
{
  echo '{"hello": 2}'
  echo '{"schedule": "smoke", "layers": [["1100", "0011", "1100", "0011"], ["0110", "1001", "0110", "1001"], ["1100", "0011", "1100", "0011"]]}'
} > "$IN"
timeout 120 "$BIN" client "$SOCK" < "$IN" > "$OUT"

cat "$OUT"
# Every layer answered under its schedule-scoped id, in order.
grep -q '"id": "smoke/L0", "ok": true' "$OUT" || fail "layer 0 unanswered"
grep -q '"id": "smoke/L1", "ok": true' "$OUT" || fail "layer 1 unanswered"
grep -q '"id": "smoke/L2", "ok": true' "$OUT" || fail "layer 2 unanswered"
# The schedule summary reports the cross-layer reuse: >= 1 cache hit
# (layer 2 repeats layer 0 byte-for-byte).
grep '"schedule": "smoke", "done": true' "$OUT" | grep -q '"solved": 3' \
  || fail "schedule summary must report 3 solved layers"
grep '"schedule": "smoke", "done": true' "$OUT" | grep -Eq '"cache_hits": [1-9]' \
  || fail "schedule summary must harvest the cross-layer cache hit"
# The session summary tallies the schedule alongside the layer totals.
grep '"summary": true' "$OUT" | grep -q '"schedule_jobs": 1' \
  || fail "session summary lacks schedule_jobs"
grep '"summary": true' "$OUT" | grep -q '"schedule_layers": 3' \
  || fail "session summary lacks schedule_layers"

# A second session probes the service-wide stats counters after the
# first fully drained (probing inside the schedule's own session would
# race its still-running layers).
{
  echo '{"hello": 2}'
  echo '{"stats": true}'
} > "$IN"
timeout 120 "$BIN" client "$SOCK" < "$IN" > "$OUT"
grep '"stats": true' "$OUT" | grep -q '"schedule_jobs": 1' \
  || fail "stats frame lacks schedule_jobs"
grep '"stats": true' "$OUT" | grep -q '"schedule_layers": 3' \
  || fail "stats frame lacks schedule_layers"

# Seeded generator: byte-identical replay, and the stream solves through
# the same live server.
"$BIN" traffic bursty --seed 11 --count 16 > "$GEN_A"
"$BIN" traffic bursty --seed 11 --count 16 > "$GEN_B"
cmp "$GEN_A" "$GEN_B" || fail "traffic stream is not reproducible"
test "$(wc -l < "$GEN_A")" -eq 16
timeout 120 "$BIN" client "$SOCK" < "$GEN_A" > "$OUT"
grep '"summary": true' "$OUT" | grep -q '"solved": 16' \
  || fail "replayed traffic stream must fully solve"

stop_server

echo "traffic smoke OK"
