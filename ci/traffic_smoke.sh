#!/usr/bin/env bash
# Traffic smoke: the circuit-level workload path end to end against a
# live socket server. (1) A 3-layer v2 `schedule` frame must stream
# three per-layer responses plus a summary whose cross-layer cache hits
# are nonzero — layer 2 repeats layer 0, so the sequential schedule
# runner must harvest the reuse. (2) The stats frame must count the
# schedule and its layers. (3) A seeded `rect-addr traffic` stream must
# replay byte-identically and solve through the same server. Hardened
# like the serve smoke: trap-reaped server, no temp leaks, `timeout`
# instead of hangs.
set -euo pipefail

BIN=${BIN:-./target/release/rect-addr}
SOCK=/tmp/rect-addr-traffic-ci.sock
IN=/tmp/rect-addr-traffic-ci-in.jsonl
OUT=/tmp/rect-addr-traffic-ci-out.jsonl
GEN_A=/tmp/rect-addr-traffic-ci-gen-a.jsonl
GEN_B=/tmp/rect-addr-traffic-ci-gen-b.jsonl
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK" "$IN" "$OUT" "$GEN_A" "$GEN_B"
}
trap cleanup EXIT

rm -f "$SOCK"
"$BIN" serve --listen "$SOCK" &
SERVER_PID=$!
for _ in $(seq 40); do
  [ -S "$SOCK" ] && break
  sleep 0.25
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

# One v2 session: a 3-layer schedule (layer 2 == layer 0). The client
# half-closes after stdin, so the summary drains too.
{
  echo '{"hello": 2}'
  echo '{"schedule": "smoke", "layers": [["1100", "0011", "1100", "0011"], ["0110", "1001", "0110", "1001"], ["1100", "0011", "1100", "0011"]]}'
} > "$IN"
timeout 120 "$BIN" client "$SOCK" < "$IN" > "$OUT"

cat "$OUT"
# Every layer answered under its schedule-scoped id, in order.
grep -q '"id": "smoke/L0", "ok": true' "$OUT"
grep -q '"id": "smoke/L1", "ok": true' "$OUT"
grep -q '"id": "smoke/L2", "ok": true' "$OUT"
# The schedule summary reports the cross-layer reuse: >= 1 cache hit
# (layer 2 repeats layer 0 byte-for-byte).
grep '"schedule": "smoke", "done": true' "$OUT" | grep -q '"solved": 3'
grep '"schedule": "smoke", "done": true' "$OUT" | grep -Eq '"cache_hits": [1-9]'
# The session summary tallies the schedule alongside the layer totals.
grep '"summary": true' "$OUT" | grep -q '"schedule_jobs": 1'
grep '"summary": true' "$OUT" | grep -q '"schedule_layers": 3'

# A second session probes the service-wide stats counters after the
# first fully drained (probing inside the schedule's own session would
# race its still-running layers).
{
  echo '{"hello": 2}'
  echo '{"stats": true}'
} > "$IN"
timeout 120 "$BIN" client "$SOCK" < "$IN" > "$OUT"
grep '"stats": true' "$OUT" | grep -q '"schedule_jobs": 1'
grep '"stats": true' "$OUT" | grep -q '"schedule_layers": 3'

# Seeded generator: byte-identical replay, and the stream solves through
# the same live server.
"$BIN" traffic bursty --seed 11 --count 16 > "$GEN_A"
"$BIN" traffic bursty --seed 11 --count 16 > "$GEN_B"
cmp "$GEN_A" "$GEN_B" || { echo "FAIL: traffic stream is not reproducible"; exit 1; }
test "$(wc -l < "$GEN_A")" -eq 16
timeout 120 "$BIN" client "$SOCK" < "$GEN_A" > "$OUT"
grep '"summary": true' "$OUT" | grep -q '"solved": 16'

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "traffic smoke OK"
