#!/usr/bin/env bash
# Scaling smoke: the horizontally scaled serving tier end to end.
#   1. An --event-loop server must hold 2048 idle connections (via
#      `rect-addr idle` ballast) while 4 active clients each solve a
#      25-job stream, and its v2 stats frame must report
#      open_connections >= 2048.
#   2. A second process started against the same --state-dir must come
#      up as a lease *reader*, adopt the first process's snapshot
#      (persisted_sessions >= 1, snapshot_generation >= 1), and serve
#      jobs concurrently with the writer.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK1=/tmp/rect-addr-scale-ci-1.sock
SOCK2=/tmp/rect-addr-scale-ci-2.sock
STATE=/tmp/rect-addr-scale-ci-state
HOLD=/tmp/rect-addr-scale-ci.hold
IDLE_OUT=/tmp/rect-addr-scale-ci-idle.out
WARM=/tmp/rect-addr-scale-ci-warm.jsonl
CLEANUP_FILES+=("$HOLD" "$IDLE_OUT" "$WARM")
CLEANUP_DIRS+=("$STATE")
for i in 1 2 3 4; do
  CLEANUP_FILES+=("/tmp/rect-addr-scale-ci-jobs$i.jsonl" "/tmp/rect-addr-scale-ci-out$i.jsonl")
done
CLEANUP_FILES+=(/tmp/rect-addr-scale-ci-warm-out.jsonl
  /tmp/rect-addr-scale-ci-dual-a.jsonl /tmp/rect-addr-scale-ci-dual-b.jsonl
  /tmp/rect-addr-scale-ci-stats1.jsonl /tmp/rect-addr-scale-ci-stats2.jsonl)

IDLE_PID=""
release_ballast() {
  # EOF on the ballast's stdin: kill the `tail` that holds the pipe's
  # write end. (A fifo kept on a shell fd doesn't work here — every
  # later-started background process would inherit the write end and
  # keep the ballast alive; the pipeline's pipe belongs to tail alone.)
  pkill -f "tail -f $HOLD" 2>/dev/null || true
}
scale_cleanup() {
  release_ballast
  if [ -n "$IDLE_PID" ] && kill -0 "$IDLE_PID" 2>/dev/null; then
    kill "$IDLE_PID" 2>/dev/null || true
    wait "$IDLE_PID" 2>/dev/null || true
  fi
  lib_cleanup
}
trap scale_cleanup EXIT

rm -rf "$STATE"

# Writer instance: event-driven acceptor, shared state dir, lease on.
start_server "$SOCK1" --event-loop --state-dir "$STATE" --lease --snapshot-every 1
SERVER1_PID=$LAST_SERVER_PID

# 2048 idle connections held by the ballast client. Its stdin is a pipe
# whose write end is owned by a `tail -f` on an empty hold file (never
# writes, never exits) — release_ballast kills the tail, the ballast
# sees EOF, drops its connections, and exits.
: > "$HOLD"
tail -f "$HOLD" | "$BIN" idle "$SOCK1" 2048 > "$IDLE_OUT" &
IDLE_PID=$!
for _ in $(seq 120); do
  grep -q '^held 2048$' "$IDLE_OUT" 2>/dev/null && break
  kill -0 "$IDLE_PID" 2>/dev/null || fail "idle ballast client died: $(cat "$IDLE_OUT")"
  sleep 0.5
done
grep -q '^held 2048$' "$IDLE_OUT" || fail "ballast never reached 2048 connections"

# 4 active clients, 25 jobs each, all concurrent with the ballast.
for i in 1 2 3 4; do
  { for j in $(seq 25); do
      if [ $(((i + j) % 2)) -eq 0 ]; then
        echo "{\"id\": \"c$i-$j\", \"matrix\": \"10;01\"}"
      else
        echo "{\"id\": \"c$i-$j\", \"matrix\": \"01;10\"}"
      fi
    done } > "/tmp/rect-addr-scale-ci-jobs$i.jsonl"
  timeout 120 "$BIN" client "$SOCK1" \
    < "/tmp/rect-addr-scale-ci-jobs$i.jsonl" \
    > "/tmp/rect-addr-scale-ci-out$i.jsonl" &
  eval "CLIENT$i=\$!"
done
for i in 1 2 3 4; do
  eval "wait \$CLIENT$i" || fail "active client $i failed under ballast"
  assert_json_field "/tmp/rect-addr-scale-ci-out$i.jsonl" solved 25 \
    "active client $i must solve all 25 jobs"
done

# Warm the shared state with SAT-hard rank-gap sessions so the snapshot
# has something worth adopting (same instance family as the restart
# smoke; the 2500-conflict budget leaves resumable warm sessions).
MATRIX=$("$BIN" gen gap 12 12 4 0 | tr '\n' ';' | sed 's/;*$//')
{ echo '{"hello": 2}'
  for j in $(seq 8); do
    echo "{\"id\": \"warm$j\", \"matrix\": \"$MATRIX\", \"conflicts\": 2500}"
  done } > "$WARM"
timeout 180 "$BIN" client "$SOCK1" < "$WARM" > /tmp/rect-addr-scale-ci-warm-out.jsonl
for _ in $(seq 40); do
  [ -f "$STATE/engine.snapshot" ] && break
  sleep 0.25
done
[ -f "$STATE/engine.snapshot" ] || fail "writer never flushed a snapshot"

# The writer's stats frame counts the ballast.
printf '{"hello": 2}\n{"stats": true}\n' \
  | timeout 120 "$BIN" client "$SOCK1" > /tmp/rect-addr-scale-ci-stats1.jsonl
OPEN=$(json_field_value /tmp/rect-addr-scale-ci-stats1.jsonl open_connections)
[ -n "$OPEN" ] || fail "stats frame lacks open_connections"
[ "$OPEN" -ge 2048 ] || fail "open_connections $OPEN < 2048 under ballast"

# Second process, same state dir: it must come up as a lease reader and
# adopt the writer's snapshot while the writer keeps running.
start_server "$SOCK2" --event-loop --state-dir "$STATE" --lease --snapshot-every 1
printf '{"hello": 2}\n{"stats": true}\n' \
  | timeout 120 "$BIN" client "$SOCK2" > /tmp/rect-addr-scale-ci-stats2.jsonl
SESS=$(json_field_value /tmp/rect-addr-scale-ci-stats2.jsonl persisted_sessions)
[ -n "$SESS" ] && [ "$SESS" -ge 1 ] \
  || fail "second process adopted no persisted sessions (got '$SESS')"
GEN=$(json_field_value /tmp/rect-addr-scale-ci-stats2.jsonl snapshot_generation)
[ -n "$GEN" ] && [ "$GEN" -ge 1 ] \
  || fail "second process reports no snapshot generation (got '$GEN')"

# Both processes serve concurrently against the same state dir.
timeout 120 "$BIN" client "$SOCK1" < /tmp/rect-addr-scale-ci-jobs1.jsonl \
  > /tmp/rect-addr-scale-ci-dual-a.jsonl &
DUAL_A=$!
timeout 120 "$BIN" client "$SOCK2" < /tmp/rect-addr-scale-ci-jobs2.jsonl \
  > /tmp/rect-addr-scale-ci-dual-b.jsonl &
DUAL_B=$!
wait "$DUAL_A" || fail "writer-side client failed during dual serving"
wait "$DUAL_B" || fail "reader-side client failed during dual serving"
assert_json_field /tmp/rect-addr-scale-ci-dual-a.jsonl solved 25 \
  "writer instance must keep solving during dual serving"
assert_json_field /tmp/rect-addr-scale-ci-dual-b.jsonl solved 25 \
  "reader instance must solve during dual serving"

# Release the ballast and shut down cleanly.
release_ballast
wait "$IDLE_PID" 2>/dev/null || true
IDLE_PID=""
stop_server
stop_server "$SERVER1_PID"

echo "scale smoke OK"
