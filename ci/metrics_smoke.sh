#!/usr/bin/env bash
# Metrics smoke: start the socket server with --metrics-dump, run a
# timing-opted v2 session, and assert the three telemetry surfaces:
#   1. every response carries a "timing" object whose stages are
#      internally consistent (queue+canon+cache+race <= total);
#   2. a v2 "stats" frame reports the latency section with percentiles;
#   3. the --metrics-dump file appears with a nonzero jobs_completed
#      counter and histogram percentiles.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK=/tmp/rect-addr-metrics-ci.sock
DUMP=/tmp/rect-addr-metrics-ci.json
JOBS=/tmp/rect-addr-metrics-ci-jobs.jsonl
OUT=/tmp/rect-addr-metrics-ci-out.jsonl
STATS=/tmp/rect-addr-metrics-ci-stats.jsonl
CLEANUP_FILES+=("$DUMP" "$JOBS" "$OUT" "$STATS")

rm -f "$DUMP"
start_server "$SOCK" --metrics-dump "$DUMP"

# Session 1: a timing-opted v2 connection pumping 20 jobs (10 distinct
# permuted pairs, so the stream exercises both cache misses and hits).
{ echo '{"hello": 2, "timing": true}'
  for i in $(seq 20); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "{\"id\": \"t$i\", \"matrix\": \"10;01\"}"
    else
      echo "{\"id\": \"t$i\", \"matrix\": \"01;10\"}"
    fi
  done } > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

assert_json_field "$OUT" timing true "hello ack lacks the timing capability"
test "$(grep -c '"ok": true' "$OUT")" -eq 20

# Every solved response carries a stage trace whose stages sum to at
# most the end-to-end total (the total also covers dispatch overhead).
grep '"ok": true' "$OUT" | while IFS= read -r line; do
  nums=$(printf '%s\n' "$line" | sed -n 's/.*"timing": {"queue_us": \([0-9]*\), "canon_us": \([0-9]*\), "cache_us": \([0-9]*\), "race_us": \([0-9]*\), "total_us": \([0-9]*\)}.*/\1 \2 \3 \4 \5/p')
  [ -n "$nums" ] || fail "solved response without timing: $line"
  set -- $nums
  sum=$(( $1 + $2 + $3 + $4 ))
  [ "$sum" -le "$5" ] || fail "stages sum to $sum > total $5: $line"
done

# Session 2 (after session 1 fully drained): the stats frame must now
# report the latency section with populated percentiles.
printf '{"hello": 2}\n{"stats": true}\n' | timeout 120 "$BIN" client "$SOCK" > "$STATS"
grep -q '"latency": {' "$STATS" || fail "stats frame lacks the latency section"
grep -q '"job_us"' "$STATS" || fail "stats latency lacks the job_us histogram"
grep -q '"p99"' "$STATS" || fail "stats latency lacks percentiles"
assert_json_field "$STATS" snapshot_load_failures 0 \
  "stats frame lacks snapshot_load_failures"

# The periodic metrics dump (1s cadence) must materialize with the
# completed jobs counted and percentiles present.
FOUND=0
for _ in $(seq 40); do
  if [ -f "$DUMP" ] && grep -q '"jobs_completed"' "$DUMP"; then
    DONE=$(json_field_value "$DUMP" jobs_completed)
    if [ -n "$DONE" ] && [ "$DONE" -ge 20 ]; then
      FOUND=1
      break
    fi
  fi
  sleep 0.25
done
[ "$FOUND" -eq 1 ] || fail "metrics dump never reported the completed jobs"
grep -q '"p99"' "$DUMP" || fail "metrics dump lacks percentiles"
grep -q '"histograms"' "$DUMP" || fail "metrics dump lacks the histograms section"

stop_server

echo "metrics smoke OK"
