#!/usr/bin/env bash
# Metrics smoke: start the socket server with --metrics-dump, run a
# timing-opted v2 session, and assert the three telemetry surfaces:
#   1. every response carries a "timing" object whose stages are
#      internally consistent (queue+canon+cache+race <= total);
#   2. a v2 "stats" frame reports the latency section with percentiles;
#   3. the --metrics-dump file appears with a nonzero jobs_completed
#      counter and histogram percentiles.
# Hardened like the other smokes: the server is always killed *and
# reaped* (trap), temp files never leak, and a hung server fails the
# step via `timeout` instead of hanging the runner.
set -euo pipefail

BIN=${BIN:-./target/release/rect-addr}
SOCK=/tmp/rect-addr-metrics-ci.sock
DUMP=/tmp/rect-addr-metrics-ci.json
JOBS=/tmp/rect-addr-metrics-ci-jobs.jsonl
OUT=/tmp/rect-addr-metrics-ci-out.jsonl
STATS=/tmp/rect-addr-metrics-ci-stats.jsonl
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK" "$DUMP" "$JOBS" "$OUT" "$STATS"
}
trap cleanup EXIT

rm -f "$SOCK" "$DUMP"
"$BIN" serve --listen "$SOCK" --metrics-dump "$DUMP" &
SERVER_PID=$!
for _ in $(seq 40); do
  [ -S "$SOCK" ] && break
  sleep 0.25
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

# Session 1: a timing-opted v2 connection pumping 20 jobs (10 distinct
# permuted pairs, so the stream exercises both cache misses and hits).
{ echo '{"hello": 2, "timing": true}'
  for i in $(seq 20); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "{\"id\": \"t$i\", \"matrix\": \"10;01\"}"
    else
      echo "{\"id\": \"t$i\", \"matrix\": \"01;10\"}"
    fi
  done } > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

grep -q '"timing": true' "$OUT" || { echo "FAIL: hello ack lacks the timing capability"; exit 1; }
test "$(grep -c '"ok": true' "$OUT")" -eq 20

# Every solved response carries a stage trace whose stages sum to at
# most the end-to-end total (the total also covers dispatch overhead).
grep '"ok": true' "$OUT" | while IFS= read -r line; do
  nums=$(printf '%s\n' "$line" | sed -n 's/.*"timing": {"queue_us": \([0-9]*\), "canon_us": \([0-9]*\), "cache_us": \([0-9]*\), "race_us": \([0-9]*\), "total_us": \([0-9]*\)}.*/\1 \2 \3 \4 \5/p')
  [ -n "$nums" ] || { echo "FAIL: solved response without timing: $line"; exit 1; }
  set -- $nums
  sum=$(( $1 + $2 + $3 + $4 ))
  [ "$sum" -le "$5" ] || { echo "FAIL: stages sum to $sum > total $5: $line"; exit 1; }
done

# Session 2 (after session 1 fully drained): the stats frame must now
# report the latency section with populated percentiles.
printf '{"hello": 2}\n{"stats": true}\n' | timeout 120 "$BIN" client "$SOCK" > "$STATS"
grep -q '"latency": {' "$STATS" || { echo "FAIL: stats frame lacks the latency section"; exit 1; }
grep -q '"job_us"' "$STATS" || { echo "FAIL: stats latency lacks the job_us histogram"; exit 1; }
grep -q '"p99"' "$STATS" || { echo "FAIL: stats latency lacks percentiles"; exit 1; }
grep -q '"snapshot_load_failures": 0' "$STATS" || { echo "FAIL: stats frame lacks snapshot_load_failures"; exit 1; }

# The periodic metrics dump (1s cadence) must materialize with the
# completed jobs counted and percentiles present.
FOUND=0
for _ in $(seq 40); do
  if [ -f "$DUMP" ] && grep -q '"jobs_completed"' "$DUMP"; then
    DONE=$(sed -n 's/.*"jobs_completed": \([0-9]*\).*/\1/p' "$DUMP" | head -n 1)
    if [ -n "$DONE" ] && [ "$DONE" -ge 20 ]; then
      FOUND=1
      break
    fi
  fi
  sleep 0.25
done
[ "$FOUND" -eq 1 ] || { echo "FAIL: metrics dump never reported the completed jobs"; exit 1; }
grep -q '"p99"' "$DUMP" || { echo "FAIL: metrics dump lacks percentiles"; exit 1; }
grep -q '"histograms"' "$DUMP" || { echo "FAIL: metrics dump lacks the histograms section"; exit 1; }

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "metrics smoke OK"
