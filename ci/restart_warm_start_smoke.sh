#!/usr/bin/env bash
# Restart warm-start smoke: run the socket server with --state-dir, pump a
# SAT-hard job stream, kill the process, restart it against the same
# directory, and assert (1) the restarted server's v2 stats frame reports
# restored sessions and (2) the second run's responses sum to fewer SAT
# conflicts than the first — the persisted learnt-clause core did the work.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK=/tmp/rect-addr-restart.sock
STATE=/tmp/rect-addr-restart-state
JOBS=/tmp/rect-addr-restart-jobs.jsonl
OUT1=/tmp/rect-addr-restart-1.jsonl
OUT2=/tmp/rect-addr-restart-2.jsonl
CLEANUP_FILES+=("$JOBS" "$OUT1" "$OUT2")
CLEANUP_DIRS+=("$STATE")

rm -rf "$STATE"

# A rank-gap instance whose SAP descent costs thousands of conflicts; the
# 2500-conflict per-job budget forces the descent to span several jobs,
# all resuming one warm session.
MATRIX=$("$BIN" gen gap 12 12 4 0 | tr '\n' ';' | sed 's/;*$//')
{
  echo '{"hello": 2}'
  echo '{"stats": true}'
  for i in $(seq 12); do
    echo "{\"id\": \"g$i\", \"matrix\": \"$MATRIX\", \"conflicts\": 2500}"
  done
} > "$JOBS"

# Run 1: day-zero cold state dir.
start_server "$SOCK" --workers 1 --state-dir "$STATE" --snapshot-every 1
timeout 180 "$BIN" client "$SOCK" < "$JOBS" > "$OUT1"
stop_server
assert_json_field "$OUT1" persisted_sessions 0 \
  "first boot must report zero persisted sessions"
test -f "$STATE/engine.snapshot" \
  || fail "periodic flush left no snapshot behind"

# Run 2: a genuinely restarted process against the same state dir.
start_server "$SOCK" --workers 1 --state-dir "$STATE" --snapshot-every 1
timeout 180 "$BIN" client "$SOCK" < "$JOBS" > "$OUT2"
stop_server

assert_json_field "$OUT2" persisted_sessions '[1-9]' \
  "restarted server must report restored sessions"

sum_conflicts() {
  grep -o '"conflicts": [0-9]*' "$1" | awk '{s+=$2} END {print s+0}'
}
C1=$(sum_conflicts "$OUT1")
C2=$(sum_conflicts "$OUT2")
echo "run 1 total conflicts: $C1; run 2 (restarted): $C2"
test "$C1" -gt 0 || fail "first run must spend SAT conflicts"
test "$C2" -lt "$C1" \
  || fail "restarted run must spend fewer conflicts than the first"
echo "restart warm-start smoke OK"
