#!/usr/bin/env bash
# Certificate smoke: the verified-answers pipeline end-to-end through the
# shipped binary.
#   1. `solve --certify` on the paper's Fig. 1b matrix writes a
#      self-contained (DIMACS, DRAT) pair and `certcheck` verifies it;
#   2. corrupting the trace flips the verdict (exit 1, "s NOT VERIFIED")
#      — the mutation half of the acceptance criterion;
#   3. a v2 socket session that opts into `certificate` at handshake gets
#      the proof object on its certified response, the stats frame counts
#      it in `certified_jobs`, and a session *without* the opt-in never
#      sees the field.
set -euo pipefail
source "$(dirname "$0")/lib.sh"

SOCK=/tmp/rect-addr-certify-ci.sock
PREFIX=/tmp/rect-addr-certify-ci
JOBS=/tmp/rect-addr-certify-ci-jobs.jsonl
OUT=/tmp/rect-addr-certify-ci-out.jsonl
CLEANUP_FILES+=("$PREFIX.cnf" "$PREFIX.drat" "$PREFIX.drat.bad" "$JOBS" "$OUT")

# Fig. 1b: depth 5 over a rank floor of 4 — optimality rests on an UNSAT
# answer, so the certified solve must export its refutation.
FIG1B='101100
010011
101010
010101
111000
000111'

printf '%s\n' "$FIG1B" | timeout 120 "$BIN" solve - --certify "$PREFIX" \
  | grep -q 'because depth 4 is UNSAT' \
  || fail "certified solve did not report the refuted bound"
[ -s "$PREFIX.cnf" ] && [ -s "$PREFIX.drat" ] \
  || fail "certificate files missing or empty"

# The embedded checker accepts the genuine pair...
timeout 120 "$BIN" certcheck "$PREFIX.cnf" "$PREFIX.drat" | grep -q '^s VERIFIED' \
  || fail "certcheck rejected a genuine certificate"

# ...and rejects a truncated trace with exit 1 and the NOT VERIFIED verdict.
sed '$d' "$PREFIX.drat" > "$PREFIX.drat.bad"
if OUTPUT=$(timeout 120 "$BIN" certcheck "$PREFIX.cnf" "$PREFIX.drat.bad"); then
  fail "certcheck accepted a truncated proof"
else
  CODE=$?
  [ "$CODE" -eq 1 ] || fail "truncated proof exited $CODE, want 1"
fi
printf '%s\n' "$OUTPUT" | grep -q '^s NOT VERIFIED' \
  || fail "truncated proof lacked the NOT VERIFIED verdict: $OUTPUT"

# Socket server: the certificate must ride v2 responses when (and only
# when) the handshake opted in, and the stats frame must count it.
start_server "$SOCK"

MATRIX='101100;010011;101010;010101;111000;000111'
{ echo '{"hello": 2, "certificate": true}'
  echo "{\"id\": \"c0\", \"matrix\": \"$MATRIX\", \"certify\": true}"
} > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

assert_json_field "$OUT" certificate true \
  "hello ack lacks the certificate capability"
grep '"id": "c0"' "$OUT" | grep -q '"certificate": {"bound": 4' \
  || fail "opted-in certified response lacks the certificate object"
grep '"id": "c0"' "$OUT" | grep -q '"drat"' \
  || fail "wire certificate lacks the DRAT trace"

# A second session (after the first fully drained): the stats frame must
# now count the certified job.
printf '{"hello": 2}\n{"stats": true}\n' | timeout 120 "$BIN" client "$SOCK" > "$OUT"
assert_json_field "$OUT" certified_jobs '[1-9]' \
  "stats frame did not count the certified job"

# Without the handshake flag the proof stays off the wire entirely.
{ echo '{"hello": 2}'
  echo "{\"id\": \"plain\", \"matrix\": \"$MATRIX\", \"certify\": true}"
} > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"
grep '"id": "plain"' "$OUT" | grep -q '"certificate"' \
  && fail "certificate leaked onto a non-opted connection"
grep '"id": "plain"' "$OUT" | grep -q '"ok": true' \
  || fail "non-opted certify job must still solve"

stop_server

echo "certify smoke OK"
