#!/usr/bin/env bash
# Certificate smoke: the verified-answers pipeline end-to-end through the
# shipped binary.
#   1. `solve --certify` on the paper's Fig. 1b matrix writes a
#      self-contained (DIMACS, DRAT) pair and `certcheck` verifies it;
#   2. corrupting the trace flips the verdict (exit 1, "s NOT VERIFIED")
#      — the mutation half of the acceptance criterion;
#   3. a v2 socket session that opts into `certificate` at handshake gets
#      the proof object on its certified response, the stats frame counts
#      it in `certified_jobs`, and a session *without* the opt-in never
#      sees the field.
# Hardened like the other smokes: the server is always killed *and
# reaped* (trap), temp files never leak, and a hung server fails the
# step via `timeout` instead of hanging the runner.
set -euo pipefail

BIN=${BIN:-./target/release/rect-addr}
SOCK=/tmp/rect-addr-certify-ci.sock
PREFIX=/tmp/rect-addr-certify-ci
JOBS=/tmp/rect-addr-certify-ci-jobs.jsonl
OUT=/tmp/rect-addr-certify-ci-out.jsonl
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK" "$PREFIX".cnf "$PREFIX".drat "$PREFIX".drat.bad "$JOBS" "$OUT"
}
trap cleanup EXIT

# Fig. 1b: depth 5 over a rank floor of 4 — optimality rests on an UNSAT
# answer, so the certified solve must export its refutation.
FIG1B='101100
010011
101010
010101
111000
000111'

printf '%s\n' "$FIG1B" | timeout 120 "$BIN" solve - --certify "$PREFIX" \
  | grep -q 'because depth 4 is UNSAT' \
  || { echo "FAIL: certified solve did not report the refuted bound"; exit 1; }
[ -s "$PREFIX.cnf" ] && [ -s "$PREFIX.drat" ] \
  || { echo "FAIL: certificate files missing or empty"; exit 1; }

# The embedded checker accepts the genuine pair...
timeout 120 "$BIN" certcheck "$PREFIX.cnf" "$PREFIX.drat" | grep -q '^s VERIFIED' \
  || { echo "FAIL: certcheck rejected a genuine certificate"; exit 1; }

# ...and rejects a truncated trace with exit 1 and the NOT VERIFIED verdict.
sed '$d' "$PREFIX.drat" > "$PREFIX.drat.bad"
if OUTPUT=$(timeout 120 "$BIN" certcheck "$PREFIX.cnf" "$PREFIX.drat.bad"); then
  echo "FAIL: certcheck accepted a truncated proof"; exit 1
else
  CODE=$?
  [ "$CODE" -eq 1 ] || { echo "FAIL: truncated proof exited $CODE, want 1"; exit 1; }
fi
printf '%s\n' "$OUTPUT" | grep -q '^s NOT VERIFIED' \
  || { echo "FAIL: truncated proof lacked the NOT VERIFIED verdict: $OUTPUT"; exit 1; }

# Socket server: the certificate must ride v2 responses when (and only
# when) the handshake opted in, and the stats frame must count it.
rm -f "$SOCK"
"$BIN" serve --listen "$SOCK" &
SERVER_PID=$!
for _ in $(seq 40); do
  [ -S "$SOCK" ] && break
  sleep 0.25
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; exit 1; }

MATRIX='101100;010011;101010;010101;111000;000111'
{ echo '{"hello": 2, "certificate": true}'
  echo "{\"id\": \"c0\", \"matrix\": \"$MATRIX\", \"certify\": true}"
} > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"

grep -q '"certificate": true' "$OUT" \
  || { echo "FAIL: hello ack lacks the certificate capability"; exit 1; }
grep '"id": "c0"' "$OUT" | grep -q '"certificate": {"bound": 4' \
  || { echo "FAIL: opted-in certified response lacks the certificate object"; exit 1; }
grep '"id": "c0"' "$OUT" | grep -q '"drat"' \
  || { echo "FAIL: wire certificate lacks the DRAT trace"; exit 1; }

# A second session (after the first fully drained): the stats frame must
# now count the certified job.
printf '{"hello": 2}\n{"stats": true}\n' | timeout 120 "$BIN" client "$SOCK" > "$OUT"
grep -q '"certified_jobs": [1-9]' "$OUT" \
  || { echo "FAIL: stats frame did not count the certified job"; exit 1; }

# Without the handshake flag the proof stays off the wire entirely.
{ echo '{"hello": 2}'
  echo "{\"id\": \"plain\", \"matrix\": \"$MATRIX\", \"certify\": true}"
} > "$JOBS"
timeout 120 "$BIN" client "$SOCK" < "$JOBS" > "$OUT"
grep '"id": "plain"' "$OUT" | grep -q '"certificate"' \
  && { echo "FAIL: certificate leaked onto a non-opted connection"; exit 1; }
grep '"id": "plain"' "$OUT" | grep -q '"ok": true' \
  || { echo "FAIL: non-opted certify job must still solve"; exit 1; }

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "certify smoke OK"
