//! `rect-addr`: depth-optimal rectangular addressing of 2D qubit arrays.
//!
//! Umbrella crate re-exporting the workspace members. See the individual
//! crates for full documentation:
//!
//! * [`bitmatrix`] — bit-packed binary matrices;
//! * [`linalg`] — exact rank computations and fooling-set bounds;
//! * [`sat`] — the CDCL SAT solver used by the exact EBMF solver;
//! * [`certcheck`] — standalone DRAT/LRAT certificate validator (shares
//!   no code with the solver, so optimality claims are checked
//!   independently);
//! * [`exactcover`] — Algorithm X / dancing links;
//! * [`ebmf`] — the paper's core contribution: row packing and SAP;
//! * [`qaddress`] — AOD addressing schedules and the FTQC two-level layer;
//! * [`obs`] — zero-dependency telemetry: latency histograms, counters,
//!   per-job stage traces and the metrics dump;
//! * [`proto`] — the versioned JSON-lines wire protocol (v1 + v2);
//! * [`engine`] — concurrent portfolio solving with canonical-form caching;
//! * [`serve`] — the `Service` facade and its stdin/socket transports.

pub use bitmatrix;
pub use certcheck;
pub use ebmf;
pub use engine;
pub use exactcover;
pub use linalg;
pub use obs;
pub use proto;
pub use qaddress;
pub use sat;
pub use serve;
