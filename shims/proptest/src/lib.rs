//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the API surface used by this workspace's property tests:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `pattern in strategy` arguments;
//! * [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`];
//! * [`any`]`::<T>()`, [`Just`], integer-range strategies, tuple strategies,
//!   and [`collection::vec`] / [`collection::btree_set`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency named `proptest`. Unlike upstream
//! there is **no shrinking**: a failing case reports the case seed, and
//! re-running the test reproduces it deterministically (generation is seeded
//! from the test name, so runs are stable across invocations).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating one test case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for one case from a deterministic seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.0.gen_range(0..n)
    }
}

/// Why a generated test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skipped, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one generated case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims to 64 to keep the
        // workspace's SAT-heavy properties fast in CI.
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy behind `any::<uN/iN>()` — the full domain of the type.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(PhantomData)
            }
        }
    )*};
}

impl_any_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A collection size: fixed or sampled from a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + rng.below(self.hi - self.lo + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose size *targets* a draw from `size`; duplicate
    /// draws may leave the set smaller (upstream retries likewise give up).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(16) + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Drives one property: runs `config.cases` generated cases of `case`,
/// panicking on the first failure with its reproduction seed. Called by the
/// [`proptest!`] expansion; not part of the public upstream API.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(test_name.as_bytes());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{index} (seed {seed:#018x}) failed: {msg}")
            }
        }
        index += 1;
    }
}

/// Defines property tests (subset of upstream `proptest!`): an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(
                    let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);
                )+
                let __proptest_body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __proptest_body()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the current case when the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, TestRng};

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (1usize..5, 10i64..=12);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = TestRng::from_seed(2);
        let s =
            (2usize..6).prop_flat_map(|n| collection::vec(Just(n), n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == n));
        }
    }

    #[test]
    fn btree_set_respects_domain() {
        let mut rng = TestRng::from_seed(3);
        let s = collection::btree_set(0usize..4, 1..=4usize);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 4);
            assert!(set.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0usize..100, (a, b) in (0u8..10, 0u8..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
            prop_assert_ne!(a as i32 - 11, b as i32);
        }

        #[test]
        fn assume_skips_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_seed() {
        super::run_cases(&ProptestConfig::with_cases(8), "doomed", |_rng| {
            Err(super::TestCaseError::fail("always"))
        });
    }
}
