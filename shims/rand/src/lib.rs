//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly the API surface this workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`];
//! * [`Rng::gen_bool`] and [`Rng::gen_range`] over integer ranges;
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency named `rand`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! all the benchmark generators and tests require. Stream values differ from
//! upstream `rand`, so seeds are reproducible only within this workspace.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 random bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is negligible for the
/// small spans used in this workspace.
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (shim for
    /// `rand::rngs::StdRng`; the output stream differs from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
