//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API surface used by this workspace's
//! `crates/bench` targets: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency named `criterion`. Instead of
//! statistical sampling it times a fixed small number of iterations per
//! benchmark (`CRITERION_SHIM_ITERS` overrides the default of 3) and prints
//! one mean-time line per benchmark — enough to compare hot paths locally
//! and to smoke-test that every bench target still compiles and runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group (subset of upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean wall-clock time per iteration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed() / self.iters.max(1) as u32;
    }
}

/// The benchmark manager (subset of upstream `Criterion`).
pub struct Criterion {
    iters: u64,
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: shim_iters(),
        }
    }
}

fn run_one(iters: u64, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {id:<48} {:>12.3} ms/iter ({iters} iters)",
        b.elapsed.as_secs_f64() * 1e3
    );
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.iters, &id.into().id, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks (subset of upstream `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion.iters, &id, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion.iters, &id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary reports; the shim does not).
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export of
/// [`std::hint::black_box`]).
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner (subset of upstream).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the given groups (subset of upstream).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags (`--test`,
            // `--bench`); the shim runs the same fixed iterations either way.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion { iters: 2 }.bench_function("smoke", |b| {
            b.iter(|| ran += 1);
        });
        assert_eq!(ran, 2);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion { iters: 1 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let input = vec![1, 2, 3];
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, v| {
            b.iter(|| seen = v.iter().sum());
        });
        group.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
