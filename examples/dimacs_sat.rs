//! Using the built-in CDCL SAT solver as a standalone DIMACS solver — the
//! substrate that replaces Z3 in this reproduction.
//!
//! ```sh
//! cargo run --release --example dimacs_sat              # embedded demo
//! cargo run --release --example dimacs_sat -- file.cnf  # solve a file
//! ```

use std::process::ExitCode;

use sat::{parse_dimacs, SolveResult};

const DEMO: &str = "\
c 8-queens would be overkill; here is a 3-colouring of C5 (odd cycle, 3-colourable)
c vertex v in {0..4}, colour c in {0..2}: var = 3v + c + 1
p cnf 15 40
1 2 3 0
4 5 6 0
7 8 9 0
10 11 12 0
13 14 15 0
-1 -2 0
-1 -3 0
-2 -3 0
-4 -5 0
-4 -6 0
-5 -6 0
-7 -8 0
-7 -9 0
-8 -9 0
-10 -11 0
-10 -12 0
-11 -12 0
-13 -14 0
-13 -15 0
-14 -15 0
-1 -4 0
-2 -5 0
-3 -6 0
-4 -7 0
-5 -8 0
-6 -9 0
-7 -10 0
-8 -11 0
-9 -12 0
-10 -13 0
-11 -14 0
-12 -15 0
-13 -1 0
-14 -2 0
-15 -3 0
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            println!("(no file given; solving the embedded 3-colouring of C5)");
            DEMO.to_string()
        }
    };
    let cnf = match parse_dimacs(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "c {} variables, {} clauses",
        cnf.num_vars,
        cnf.clauses.len()
    );
    let mut solver = cnf.into_solver();
    match solver.solve() {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let line: Vec<String> = solver
                .model()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    if v {
                        format!("{}", i + 1)
                    } else {
                        format!("-{}", i + 1)
                    }
                })
                .collect();
            println!("v {} 0", line.join(" "));
        }
        SolveResult::Unsat => println!("s UNSATISFIABLE"),
        SolveResult::Unknown => println!("s UNKNOWN"),
    }
    let st = solver.stats();
    println!(
        "c {} conflicts, {} decisions, {} propagations, {} restarts",
        st.conflicts, st.decisions, st.propagations, st.restarts
    );
    ExitCode::SUCCESS
}
