//! Quickstart: depth-optimal addressing of the paper's Figure 1b pattern.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Parses the 6×6 pattern, runs SAP (row packing + descending SAT queries),
//! prints the provably optimal 5-rectangle partition, the fooling-set
//! certificate, and the executable AOD shot schedule.

use bitmatrix::BitMatrix;
use ebmf::{sap, SapConfig};
use linalg::max_fooling_set;
use qaddress::{AddressingSchedule, Pulse, QubitArray};

fn main() {
    // The addressing pattern of paper Fig. 1b (1 = qubit to address).
    let pattern: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .expect("valid matrix literal");
    println!(
        "Pattern ({}x{}, {} targets):",
        pattern.nrows(),
        pattern.ncols(),
        pattern.count_ones()
    );
    println!("{pattern}\n");

    // Solve the exact binary matrix factorization with SAP (Algorithm 1).
    let outcome = sap(&pattern, &SapConfig::default());
    println!(
        "SAP: depth {} ({}), real rank {}, {} SAT queries, {:.1} ms total",
        outcome.depth(),
        if outcome.proved_optimal {
            "proved optimal"
        } else {
            "best effort"
        },
        outcome.real_rank.rank,
        outcome.stats.queries.len(),
        outcome.stats.total_seconds() * 1e3,
    );
    println!(
        "Partition (one symbol per rectangle):\n{}\n",
        outcome.partition
    );

    // Independent optimality certificate: a fooling set of matching size.
    let fooling = max_fooling_set(&pattern, 1_000_000);
    println!(
        "Fooling set of size {} {}: {:?}",
        fooling.size(),
        if fooling.proved_maximum {
            "(maximum)"
        } else {
            "(heuristic)"
        },
        fooling.cells,
    );
    assert_eq!(
        fooling.size(),
        outcome.depth(),
        "Fig. 1b: certificate is tight"
    );

    // Compile to an executable AOD schedule.
    let array = QubitArray::new(pattern.nrows(), pattern.ncols());
    let schedule = AddressingSchedule::from_partition(&outcome.partition, Pulse::Rz(0.31));
    schedule
        .verify(&array, &pattern)
        .expect("schedule must verify");
    println!("\nAOD schedule ({} shots):", schedule.depth());
    for (k, shot) in schedule.shots().iter().enumerate() {
        println!(
            "  shot {k}: rows {:?} cols {:?} pulse {} ({} sites, {} active tones)",
            shot.aod.row_tones().to_indices(),
            shot.aod.col_tones().to_indices(),
            shot.pulse,
            shot.aod.num_addressed(),
            shot.aod.active_tones(),
        );
    }
    println!(
        "\nControl cost: {} bits total vs {} for per-site addressing",
        schedule.total_control_bits(),
        pattern.count_ones() * pattern.nrows() * pattern.ncols(),
    );
}
