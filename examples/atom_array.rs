//! Addressing a 100×100 neutral-atom array — the technology-limit scale the
//! paper's large benchmark models.
//!
//! ```sh
//! cargo run --release --example atom_array
//! ```
//!
//! Sweeps pattern occupancy, compares individual / trivial / row-packing
//! addressing depth against the real-rank lower bound, and demonstrates the
//! vacancy (don't-care) advantage on a sparse sub-array.

use bitmatrix::{random_matrix, BitMatrix};
use ebmf::{lower_bound, row_packing_with_dont_cares, PackingConfig};
use qaddress::{compile, Pulse, QubitArray, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let array = QubitArray::new(100, 100);
    println!("100x100 atom array; depth by strategy and occupancy");
    println!(
        "{:>5} {:>8} {:>9} {:>9} {:>10} {:>11}",
        "occ", "targets", "individ.", "trivial", "packing10", "rank bound"
    );
    for occ in [0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut rng = StdRng::seed_from_u64((occ * 1000.0) as u64);
        let pattern = random_matrix(100, 100, occ, &mut rng);
        let individual = compile(&array, &pattern, Strategy::Individual, Pulse::X).unwrap();
        let trivial = compile(&array, &pattern, Strategy::Trivial, Pulse::X).unwrap();
        let packed = compile(&array, &pattern, Strategy::Packing(10), Pulse::X).unwrap();
        let lb = lower_bound(&pattern, false);
        println!(
            "{:>4.0}% {:>8} {:>9} {:>9} {:>10} {:>11}{}",
            occ * 100.0,
            pattern.count_ones(),
            individual.depth(),
            trivial.depth(),
            packed.depth(),
            lb.value,
            if packed.depth() == lb.value {
                "  <- proved optimal"
            } else {
                ""
            },
        );
    }

    println!("\nVacancy advantage (paper §VI): 20x20 half-filled array");
    let mut rng = StdRng::seed_from_u64(7);
    // Random half-filled array: vacant sites are don't-cares.
    let vacancies = random_matrix(20, 20, 0.5, &mut rng);
    let pattern = BitMatrix::from_fn(20, 20, |i, j| !vacancies.get(i, j) && (i + j) % 2 == 0);
    let plain = row_packing(&pattern);
    let with_dc = row_packing_with_dont_cares(&pattern, &vacancies, 10, 0);
    println!(
        "targets {}, packing depth ignoring vacancies {}, exploiting vacancies {}",
        pattern.count_ones(),
        plain,
        with_dc.len()
    );
    let sparse_array = QubitArray::with_vacancies(vacancies);
    let s = compile(
        &sparse_array,
        &pattern,
        Strategy::Packing(10),
        Pulse::Rz(0.5),
    )
    .unwrap();
    s.verify(&sparse_array, &pattern).unwrap();
    println!(
        "compiled vacancy-aware schedule: {} shots, verified",
        s.depth()
    );
}

fn row_packing(pattern: &BitMatrix) -> usize {
    ebmf::row_packing(pattern, &PackingConfig::with_trials(10)).len()
}
