//! Compiling a multi-layer single-qubit circuit onto an atom array —
//! the end-to-end workflow the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example circuit_layers
//! ```
//!
//! A circuit is a sequence of *layers*; each layer is a pattern of qubits
//! receiving the same pulse. Every layer compiles to an AOD shot schedule;
//! the circuit depth is the sum over layers. Rectangular addressing wins
//! whenever patterns have product structure — which realistic layers
//! (global, sublattice, stripes, zones) almost always do.

use bitmatrix::BitMatrix;
use qaddress::patterns;
use qaddress::{compile, Pulse, QubitArray, Strategy};

fn main() {
    const N: usize = 16;
    let array = QubitArray::new(N, N);

    // A small showcase circuit on a 16×16 array.
    let layers: Vec<(&str, BitMatrix, Pulse)> = vec![
        ("global H", patterns::full(N, N), Pulse::H),
        (
            "sublattice A Rz",
            patterns::checkerboard(N, N, 0),
            Pulse::Rz(0.7),
        ),
        (
            "sublattice B Rz",
            patterns::checkerboard(N, N, 1),
            Pulse::Rz(-0.7),
        ),
        ("stripe echo", patterns::stripes(N, N, 2, 0), Pulse::X),
        (
            "zone window",
            patterns::window(N, N, 6, 10),
            Pulse::Rz(0.31),
        ),
        ("readout frame", patterns::border(N, N), Pulse::X),
    ];

    println!(
        "compiling a {}-layer circuit on a {N}x{N} array\n",
        layers.len()
    );
    println!(
        "{:<18} {:>8} {:>11} {:>11} {:>14}",
        "layer", "targets", "individual", "rect.depth", "control bits"
    );
    let mut total_individual = 0usize;
    let mut total_rect = 0usize;
    for (name, pattern, pulse) in &layers {
        let individual = compile(&array, pattern, Strategy::Individual, *pulse).unwrap();
        let rect = compile(&array, pattern, Strategy::Packing(20), *pulse).unwrap();
        rect.verify(&array, pattern).expect("schedule verifies");
        total_individual += individual.depth();
        total_rect += rect.depth();
        println!(
            "{:<18} {:>8} {:>11} {:>11} {:>14}",
            name,
            pattern.count_ones(),
            individual.depth(),
            rect.depth(),
            rect.total_control_bits(),
        );
    }
    println!(
        "\ncircuit depth: {total_rect} shots with rectangular addressing vs \
         {total_individual} with per-site addressing ({}x reduction)",
        total_individual / total_rect.max(1)
    );
}
