//! Regenerates the illustrative figures and in-text examples of the paper.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```
//!
//! * Figure 1b — the 6×6 pattern partitioned into 5 rectangles;
//! * Eq. (2)   — fooling number 2 yet binary rank 3;
//! * Figure 2  — biclique and factorization (`H·W`) views;
//! * Figure 3  — two row-packing trials needing 5 vs 4 rectangles.

use bitmatrix::BitMatrix;
use ebmf::{as_bicliques, binary_rank, row_packing_once, sap, PackingConfig, SapConfig};
use linalg::{max_fooling_set, real_rank};

fn main() {
    figure_1b();
    eq_2();
    figure_2();
    figure_3();
}

fn figure_1b() {
    println!("=== Figure 1b: rectangular partition with fooling-set certificate ===");
    let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .unwrap();
    let out = sap(&m, &SapConfig::default());
    assert!(out.proved_optimal);
    println!("{}", out.partition);
    let f = max_fooling_set(&m, 1_000_000);
    println!(
        "depth {} = fooling number {} (filled markers in the paper)\n",
        out.depth(),
        f.size()
    );
}

fn eq_2() {
    println!("=== Eq. (2): fooling sets are not always tight ===");
    let m: BitMatrix = "110\n011\n111".parse().unwrap();
    let rb = binary_rank(&m);
    let f = max_fooling_set(&m, 1_000_000);
    let rr = real_rank(&m);
    println!("{m}");
    println!(
        "binary rank {rb}, max fooling set {}, real rank {}\n",
        f.size(),
        rr.rank
    );
    assert_eq!((rb, f.size(), rr.rank), (3, 2, 3));
}

fn figure_2() {
    println!("=== Figure 2: biclique partition and H·W factorization ===");
    // Fig. 2 reuses the Fig. 1b matrix as a bipartite adjacency matrix.
    let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .unwrap();
    let out = sap(&m, &SapConfig::default());
    for (k, b) in as_bicliques(&out.partition).iter().enumerate() {
        println!(
            "biclique {k}: left {:?} — right {:?} (complete {}x{})",
            b.left,
            b.right,
            b.left.len(),
            b.right.len()
        );
    }
    let (h, w) = out.partition.to_factors();
    println!("\nH ({}x{}):\n{h}", h.nrows(), h.ncols());
    println!("W ({}x{}):\n{w}", w.nrows(), w.ncols());
    println!("H·W reassembles M: {}\n", out.partition.to_matrix() == m);
}

fn figure_3() {
    println!("=== Figure 3: two row-packing trials ===");
    let m: BitMatrix = "11000\n00110\n01100\n10011\n11111".parse().unwrap();
    let cfg = PackingConfig::default();
    let a = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg);
    println!("trial (a), natural order — {} rectangles:\n{a}\n", a.len());
    let b = row_packing_once(&m, &[4, 2, 3, 0, 1], &cfg);
    println!("trial (b), shuffled order — {} rectangles:\n{b}\n", b.len());
    assert_eq!((a.len(), b.len()), (5, 4));
    println!("shuffling trials lets the heuristic escape the suboptimal order");
}
