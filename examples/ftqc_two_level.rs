//! Fault-tolerant quantum computing with rectangular addressing
//! (paper §V, Figure 5).
//!
//! ```sh
//! cargo run --release --example ftqc_two_level
//! ```
//!
//! * Fig. 5a: a logical operation pattern over surface-code patches tensored
//!   with the in-patch physical pattern; the partition composes by tensor
//!   product and is optimal for transversal (all-ones) patches.
//! * Eq. (5): Watson's sandwich for the binary rank of a tensor product.
//! * Fig. 5b: 1D memory blocks — row-by-row addressing is usually optimal
//!   because wide random matrices are almost surely full rank.

use bitmatrix::BitMatrix;
use ebmf::tensor_bounds;
use qaddress::{
    parse_logical_pattern, row_optimality_frequency, two_level_schedule, BlockLayout, Pulse,
    QubitArray, SurfaceCodePatch,
};

fn main() {
    fig_5a();
    eq_5();
    fig_5b();
}

fn fig_5a() {
    println!("=== Figure 5a: logical (M-hat) x physical (M) two-level compilation ===");
    let logical = parse_logical_pattern("UIUUII\nIUIIUU\nUIUIUI\nIUIUIU\nUUUIII\nIIIUUU")
        .expect("valid logical grid");
    let patch = SurfaceCodePatch::new(3);
    let out = two_level_schedule(&logical, &patch.transversal_pattern(), Pulse::X, true);
    println!(
        "logical depth {}, patch depth {}, composed depth {} on an {}x{} physical grid",
        out.logical_partition.len(),
        out.physical_partition.len(),
        out.schedule.depth(),
        logical.nrows() * patch.distance,
        logical.ncols() * patch.distance,
    );
    let physical_pattern = logical.kron(&patch.transversal_pattern());
    let array = QubitArray::new(physical_pattern.nrows(), physical_pattern.ncols());
    out.schedule.verify(&array, &physical_pattern).unwrap();
    println!("composed schedule verified against the 18x18 physical pattern\n");
}

fn eq_5() {
    println!("=== Eq. (5): bounds on r_B of a tensor product ===");
    let cases: [(&str, &str, &str); 3] = [
        ("Eq. (2) x I2", "110\n011\n111", "10\n01"),
        ("I2 x I2", "10\n01", "10\n01"),
        ("Fig1b-row x all-ones", "101\n011", "11\n11"),
    ];
    for (name, a, b) in cases {
        let ma: BitMatrix = a.parse().unwrap();
        let mb: BitMatrix = b.parse().unwrap();
        let tb = tensor_bounds(&ma, &mb);
        println!(
            "{name}: r_B={}x{}, fooling={}/{}  =>  {} <= r_B(tensor) <= {}{}",
            tb.rb_logical,
            tb.rb_physical,
            tb.fooling_logical,
            tb.fooling_physical,
            tb.lower,
            tb.upper,
            if tb.lower == tb.upper {
                "  (sandwich closes: product partition optimal)"
            } else {
                ""
            },
        );
    }
    println!();
}

fn fig_5b() {
    println!("=== Figure 5b: 1D logical blocks - is row-by-row addressing enough? ===");
    println!(
        "{:>14} {:>6} {:>22}",
        "layout", "occ", "row-optimal frequency"
    );
    for (blocks, size) in [(10, 10), (10, 20), (10, 30)] {
        for occ in [0.2, 0.5, 0.8] {
            let freq = row_optimality_frequency(BlockLayout::new(blocks, size), occ, 50, 42);
            println!(
                "{:>9}x{:<4} {:>5.0}% {:>21.0}%",
                blocks,
                size,
                occ * 100.0,
                freq * 100.0
            );
        }
    }
    println!(
        "wider blocks -> full rank more often -> row-by-row provably optimal (paper conjecture)"
    );
}
