//! Property test: `JobResponse` serialization and parsing are inverse on
//! every coherent response — success and failure, both wire versions,
//! adversarial ids and error messages (quotes, backslashes, control
//! characters, astral-plane unicode).
//!
//! This harness is what shook out the v1 serializer's asymmetries (an
//! `ok: false` response without an error payload used to emit a success
//! body; error lines used to drop `millis`/`conflicts`; non-finite
//! `millis` emitted invalid JSON) — the cases below pin the fixes.

use proptest::collection::vec;
use proptest::prelude::*;

use rect_addr_proto::{
    Certificate, ErrorKind, JobError, JobRequest, JobResponse, Timing, WireVersion,
};

/// Characters the id/message strategies draw from — every JSON string
/// escape class is represented: plain ASCII, both quote-likes, newline /
/// tab / carriage return, a C0 control, multi-byte UTF-8 and an astral
/// emoji (exercising surrogate-pair handling in standard decoders).
const CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '-', '_', '"', '\\', '/', '\n', '\t', '\r', '\u{0007}', 'é', '→', '💠',
];

fn string_strategy(max_len: usize) -> impl Strategy<Value = String> {
    vec(0..CHARS.len(), 0..=max_len).prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
}

/// Wire-representable millis: non-negative, exactly 3 decimals.
fn millis_strategy() -> impl Strategy<Value = f64> {
    (0u64..100_000_000).prop_map(|thousandths| thousandths as f64 / 1000.0)
}

fn rect_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (vec(0usize..64, 0..=6), vec(0usize..64, 0..=6))
}

/// `None` or a full stage breakdown with every magnitude represented.
fn timing_strategy() -> impl Strategy<Value = Option<Timing>> {
    (any::<bool>(), vec(0u64..1 << 40, 5)).prop_map(|(present, us)| {
        present.then(|| Timing {
            queue_us: us[0],
            canon_us: us[1],
            cache_us: us[2],
            race_us: us[3],
            total_us: us[4],
        })
    })
}

/// `None` or a certificate whose CNF/DRAT texts draw from the adversarial
/// character pool (newlines are the common case: DIMACS is line-oriented).
fn certificate_strategy() -> impl Strategy<Value = Option<Certificate>> {
    (
        any::<bool>(),
        0usize..1000,
        string_strategy(24),
        string_strategy(24),
    )
        .prop_map(|(present, bound, cnf, drat)| present.then_some(Certificate { bound, cnf, drat }))
}

fn success_strategy() -> impl Strategy<Value = JobResponse> {
    (
        (string_strategy(12), 0usize..1000, any::<bool>(), 0usize..5),
        (
            any::<bool>(),
            millis_strategy(),
            0u64..1 << 40,
            vec(rect_strategy(), 0..=5),
        ),
        timing_strategy(),
        certificate_strategy(),
    )
        .prop_map(
            |(
                (id, depth, proved, prov),
                (cache_hit, millis, conflicts, partition),
                timing,
                certificate,
            )| {
                JobResponse {
                    id,
                    ok: true,
                    depth,
                    proved_optimal: proved,
                    provenance: ["", "cache", "trivial", "packing", "sap"][prov].to_string(),
                    cache_hit,
                    millis,
                    conflicts,
                    partition,
                    error: None,
                    timing,
                    certificate,
                }
            },
        )
}

fn failure_strategy() -> impl Strategy<Value = JobResponse> {
    (
        (string_strategy(12), 0usize..ErrorKind::COUNT),
        (string_strategy(24), millis_strategy()),
        (0u64..1 << 40, timing_strategy()),
    )
        .prop_map(|((id, kind), (message, millis), (conflicts, timing))| {
            let mut resp = JobResponse::failure(id, JobError::new(ErrorKind::ALL[kind], message));
            resp.millis = millis;
            resp.conflicts = conflicts;
            resp.timing = timing;
            resp
        })
}

/// What a v1 wire trip preserves: everything except the v2-only fields.
fn v1_view(resp: &JobResponse) -> JobResponse {
    let mut v1 = resp.clone();
    v1.timing = None;
    v1.certificate = None;
    v1
}

proptest! {
    #[test]
    fn success_roundtrips_on_both_wire_versions(resp in success_strategy()) {
        for version in [WireVersion::V1, WireVersion::V2] {
            let line = resp.to_json_line_v(version);
            let parsed = JobResponse::parse_line(&line)
                .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
            // v1 never carries the v2-only timing field.
            let expect = match version {
                WireVersion::V1 => v1_view(&resp),
                WireVersion::V2 => resp.clone(),
            };
            prop_assert_eq!(&parsed, &expect, "version {:?}: {}", version, line);
            if version == WireVersion::V1 {
                prop_assert!(!line.contains("\"timing\""), "v1 leaked timing: {}", line);
                prop_assert!(
                    !line.contains("\"certificate\""),
                    "v1 leaked certificate: {}",
                    line
                );
            }
        }
    }

    #[test]
    fn failure_roundtrips_exactly_on_v2(resp in failure_strategy()) {
        let line = resp.to_json_line_v(WireVersion::V2);
        let parsed = JobResponse::parse_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
        prop_assert_eq!(&parsed, &resp, "{}", line);
    }

    #[test]
    fn failure_roundtrips_on_v1_up_to_the_kind(resp in failure_strategy()) {
        // v1 has no kind on the wire: everything else must survive.
        let line = resp.to_json_line_v(WireVersion::V1);
        let parsed = JobResponse::parse_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
        let mut expect = v1_view(&resp);
        expect.error = resp
            .error
            .as_ref()
            .map(|e| JobError::new(ErrorKind::Unknown, e.message.clone()));
        prop_assert_eq!(&parsed, &expect, "{}", line);
    }

    #[test]
    fn serialization_is_a_fixed_point(resp in success_strategy()) {
        // One trip must normalize: serialize∘parse∘serialize == serialize.
        for version in [WireVersion::V1, WireVersion::V2] {
            let line = resp.to_json_line_v(version);
            let parsed = JobResponse::parse_line(&line)
                .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
            prop_assert_eq!(parsed.to_json_line_v(version), line);
        }
    }

    #[test]
    fn stats_latency_section_roundtrips(
        entries in vec(
            ((0usize..8, 0u64..1 << 40), (0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30)),
            0..=6,
        ),
    ) {
        use rect_addr_proto::{LatencySummary, StatsFrame};
        const NAMES: [&str; 8] = [
            "queue_wait_us", "canon_us", "cache_lookup_us", "flight_wait_us",
            "race_us", "job_us", "sat_conflicts", "snapshot_flush_us",
        ];
        let mut frame = StatsFrame::default();
        for ((name_ix, count), (p50, spread, tail)) in entries {
            frame.latency.insert(
                NAMES[name_ix].to_string(),
                LatencySummary {
                    count,
                    p50,
                    p90: p50.saturating_add(spread),
                    p99: p50.saturating_add(spread).saturating_add(tail),
                    max: p50.saturating_add(spread).saturating_add(tail),
                },
            );
        }
        let line = frame.to_json_line();
        let parsed = StatsFrame::parse_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e}: {line}")))?;
        prop_assert_eq!(&parsed, &frame, "{}", line);
        // And a second trip is a fixed point.
        prop_assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn request_roundtrips_with_v2_fields(
        id in string_strategy(12),
        budget in 0u64..1 << 32,
        conflicts in 0u64..1 << 32,
        priority in -1000i64..1000,
        deadline in 0u64..1 << 32,
        with_opts in any::<bool>(),
        certify in any::<bool>(),
    ) {
        let mut req = JobRequest::new(id, "10\n01".parse().unwrap());
        if with_opts {
            req = req
                .with_budget_ms(budget)
                .with_conflicts(conflicts)
                .with_priority(priority)
                .with_deadline_ms(deadline);
        }
        if certify {
            req = req.with_certify(true);
        }
        let line = req.to_json_line();
        let parsed = JobRequest::parse_line(&line, 1)
            .map_err(|(_, e)| TestCaseError::fail(format!("{e}: {line}")))?;
        prop_assert_eq!(parsed, req, "{}", line);
    }
}
