//! The versioned JSON-lines wire protocol of the `rect-addr` serving
//! stack, shared by the engine, the `Service` facade, the socket
//! front-end, the CLI and external clients.
//!
//! One frame per line. **Protocol v1** (the legacy shape, still the
//! default) is job lines in, response lines out, one summary trailer:
//!
//! ```json
//! {"id": "layer-17", "matrix": ["101100", "010011"], "budget_ms": 500}
//! {"id": "layer-17", "ok": true, "depth": 5, "proved_optimal": true, ...}
//! {"summary": true, "solved": 1, "failed": 0, ...}
//! ```
//!
//! **Protocol v2** is negotiated by a [`ClientFrame::Hello`] handshake as
//! the connection's first line, answered by a [`HelloAck`] carrying server
//! capabilities. It adds per-job `priority` and `deadline_ms` fields,
//! [`ClientFrame::Cancel`] control frames (acked by [`CancelAck`]),
//! `busy` backpressure responses, structured [`ErrorKind`] error codes,
//! an on-demand [`StatsFrame`], and a versioned [`SummaryFrame`]. A
//! connection that never sends a handshake is answered in v1 shape
//! forever — existing v1 clients keep working unchanged.
//!
//! Responses are emitted in **completion order**, not submission order —
//! the `id` field is the correlation key. Failed jobs answer
//! `{"id": ..., "ok": false, "error": ...}` where the error payload is a
//! bare message string in v1 and a `{"kind", "message"}` object in v2.
//!
//! The build environment has no serde, so the [`json`] module carries a
//! small hand-rolled JSON reader/writer covering the subset the protocol
//! needs. The full framing specification lives in `PROTOCOL.md` at the
//! repository root.

pub mod frame;
pub mod job;
pub mod json;
pub mod line;
pub mod schedule;

pub use frame::{
    CancelAck, Capabilities, ClientFrame, EngineSnapshot, HelloAck, HotKey, LatencySummary,
    StatsFrame, SummaryFrame, WireVersion, PROTOCOL_VERSION,
};
pub use job::{Certificate, ErrorKind, JobError, JobRequest, JobResponse, Timing};
pub use json::{parse_json, write_json_string, Json};
pub use line::{read_line_bounded, LineRead, MAX_LINE_BYTES, MAX_RESPONSE_LINE_BYTES};
pub use schedule::{ScheduleRequest, ScheduleSummary, MAX_SCHEDULE_LAYERS};
