//! The protocol-v2 `schedule` frame pair: a multi-layer circuit
//! submission and its aggregated summary.
//!
//! The paper's real consumers rarely submit one matrix at a time — they
//! submit ordered layer sequences over one atom array (circuit schedules,
//! FTQC two-level layers, nearest-neighbor gate rounds), where consecutive
//! layers share structure. A [`ScheduleRequest`] carries the whole
//! sequence in one line; the server decomposes it into per-layer solves
//! that share the warm-session chain and the canonical cache, streams each
//! layer's ordinary response (ids `<schedule>/L<k>`) as it completes, and
//! trails the batch with a [`ScheduleSummary`] frame. See `PROTOCOL.md`
//! for the full framing rules (cancel with partial results, per-layer
//! deadline semantics, opt-in certificate passthrough).

use std::fmt::Write as _;

use bitmatrix::BitMatrix;

use crate::job::{ErrorKind, JobError, JobRequest};
use crate::json::{parse_json, write_json_string, Json};

/// Upper bound on layers in one `schedule` frame: generous for real
/// circuits (thousands of gate rounds) while keeping one line from
/// enqueueing unbounded work.
pub const MAX_SCHEDULE_LAYERS: usize = 4096;

/// `{"schedule": "<id>", "layers": [...], ...}` — an ordered layer
/// sequence over one array shape, submitted as a single unit (v2 only; a
/// v1 connection has no control frames and would answer a parse error).
///
/// Every layer is a pattern matrix in the same encoding job lines use
/// (array of `0`/`1` row strings, or one `;`-separated string), and all
/// layers must share one shape — they address the same physical array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRequest {
    /// Correlation id; per-layer responses are named `<id>/L<k>`.
    pub id: String,
    /// The ordered layer patterns, all of one shape.
    pub layers: Vec<BitMatrix>,
    /// Schedule-level priority applied to every layer (v2 queue rules:
    /// higher first, FIFO ties).
    pub priority: i64,
    /// Per-layer deadlines in milliseconds, **measured from schedule
    /// acceptance** (not per-layer submission — layers run sequentially,
    /// so a layer's clock includes its predecessors). Always the same
    /// length as `layers`; `None` entries have no deadline.
    pub deadline_ms: Vec<Option<u64>>,
    /// Per-layer wall-clock budget (same meaning as a job's `budget_ms`).
    pub budget_ms: Option<u64>,
    /// Per-layer SAT conflict budget.
    pub conflicts: Option<u64>,
    /// Request optimality certificates for every layer (honored only when
    /// the hello opted into certificate passthrough, like jobs).
    pub certify: bool,
}

impl ScheduleRequest {
    /// A schedule with defaults for every optional field.
    pub fn new(id: impl Into<String>, layers: Vec<BitMatrix>) -> ScheduleRequest {
        let deadline_ms = vec![None; layers.len()];
        ScheduleRequest {
            id: id.into(),
            layers,
            priority: 0,
            deadline_ms,
            budget_ms: None,
            conflicts: None,
            certify: false,
        }
    }

    /// The wire id of layer `k`'s response: `<id>/L<k>`. One definition,
    /// shared by the server-side runner and clients correlating layers.
    pub fn layer_id(id: &str, k: usize) -> String {
        format!("{id}/L{k}")
    }

    /// Expands the schedule into its per-layer [`JobRequest`]s — the same
    /// jobs an independent client would have submitted one by one.
    /// Deadlines are copied as-is (callers accounting for elapsed schedule
    /// time, like the serve runner, adjust them per layer).
    pub fn to_jobs(&self) -> Vec<JobRequest> {
        self.layers
            .iter()
            .enumerate()
            .map(|(k, layer)| JobRequest {
                id: Self::layer_id(&self.id, k),
                matrix: layer.clone(),
                budget_ms: self.budget_ms,
                conflicts: self.conflicts,
                priority: self.priority,
                deadline_ms: self.deadline_ms.get(k).copied().flatten(),
                certify: self.certify,
            })
            .collect()
    }

    /// Serializes the request as one JSON line (client side). Optional
    /// fields at their defaults are omitted, mirroring job lines.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"schedule\": ");
        write_json_string(&mut out, &self.id);
        out.push_str(", \"layers\": [");
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (r, row) in layer.iter_rows().enumerate() {
                if r > 0 {
                    out.push_str(", ");
                }
                write_json_string(&mut out, &row.to_string());
            }
            out.push(']');
        }
        out.push(']');
        if self.priority != 0 {
            let _ = write!(out, ", \"priority\": {}", self.priority);
        }
        if self.deadline_ms.iter().any(Option::is_some) {
            out.push_str(", \"deadline_ms\": [");
            for (i, d) in self.deadline_ms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match d {
                    Some(ms) => {
                        let _ = write!(out, "{ms}");
                    }
                    None => out.push_str("null"),
                }
            }
            out.push(']');
        }
        if let Some(b) = self.budget_ms {
            let _ = write!(out, ", \"budget_ms\": {b}");
        }
        if let Some(c) = self.conflicts {
            let _ = write!(out, ", \"conflicts\": {c}");
        }
        if self.certify {
            out.push_str(", \"certify\": true");
        }
        out.push('}');
        out
    }

    /// Parses a schedule frame from its JSON value. Errors carry the
    /// schedule id when one was readable (so the failure response
    /// correlates), else `fallback_id`.
    pub fn from_json(
        json: &Json,
        fallback_id: &str,
    ) -> Result<ScheduleRequest, (String, JobError)> {
        let id = json
            .get("schedule")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                (
                    fallback_id.to_string(),
                    JobError::new(ErrorKind::Protocol, "schedule must carry a string id"),
                )
            })?;
        let err = |kind: ErrorKind, msg: String| (id.clone(), JobError::new(kind, msg));

        let layer_values = match json.get("layers") {
            Some(Json::Arr(layers)) => layers,
            Some(_) => {
                return Err(err(
                    ErrorKind::Protocol,
                    "layers must be an array of matrices".to_string(),
                ))
            }
            None => {
                return Err(err(
                    ErrorKind::Protocol,
                    "missing \"layers\" field".to_string(),
                ))
            }
        };
        if layer_values.is_empty() {
            return Err(err(
                ErrorKind::Protocol,
                "a schedule needs at least one layer".to_string(),
            ));
        }
        if layer_values.len() > MAX_SCHEDULE_LAYERS {
            return Err(err(
                ErrorKind::Protocol,
                format!(
                    "schedule has {} layers; the limit is {MAX_SCHEDULE_LAYERS}",
                    layer_values.len()
                ),
            ));
        }
        let mut layers = Vec::with_capacity(layer_values.len());
        for (k, value) in layer_values.iter().enumerate() {
            let text = match value {
                Json::Str(s) => s.replace(';', "\n"),
                Json::Arr(rows) => {
                    let mut lines = Vec::with_capacity(rows.len());
                    for r in rows {
                        lines.push(
                            r.as_str()
                                .ok_or_else(|| {
                                    err(
                                        ErrorKind::Parse,
                                        format!("layer {k}: matrix rows must be strings"),
                                    )
                                })?
                                .to_string(),
                        );
                    }
                    lines.join("\n")
                }
                _ => {
                    return Err(err(
                        ErrorKind::Parse,
                        format!("layer {k}: matrix must be a string or array of strings"),
                    ))
                }
            };
            let matrix: BitMatrix = text
                .parse()
                .map_err(|e| err(ErrorKind::Matrix, format!("layer {k}: invalid matrix: {e}")))?;
            if let Some(first) = layers.first() {
                let first: &BitMatrix = first;
                if matrix.shape() != first.shape() {
                    return Err(err(
                        ErrorKind::Matrix,
                        format!(
                            "layer {k} is {:?} but the schedule's array is {:?} — all layers \
                             address one array shape",
                            matrix.shape(),
                            first.shape()
                        ),
                    ));
                }
            }
            layers.push(matrix);
        }

        let uint = |field: &str, v: &Json| -> Result<u64, (String, JobError)> {
            v.as_f64()
                .filter(|n| *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| {
                    err(
                        ErrorKind::Parse,
                        format!("{field} must be a non-negative number"),
                    )
                })
        };
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => vec![None; layers.len()],
            // A scalar deadline applies to every layer.
            Some(v @ Json::Num(_)) => vec![Some(uint("deadline_ms", v)?); layers.len()],
            Some(Json::Arr(ds)) => {
                if ds.len() != layers.len() {
                    return Err(err(
                        ErrorKind::Parse,
                        format!(
                            "deadline_ms lists {} entries for {} layers",
                            ds.len(),
                            layers.len()
                        ),
                    ));
                }
                let mut out = Vec::with_capacity(ds.len());
                for d in ds {
                    out.push(match d {
                        Json::Null => None,
                        v => Some(uint("deadline_ms", v)?),
                    });
                }
                out
            }
            Some(_) => {
                return Err(err(
                    ErrorKind::Parse,
                    "deadline_ms must be a number or an array of numbers/nulls".to_string(),
                ))
            }
        };
        let opt_uint = |field: &str| -> Result<Option<u64>, (String, JobError)> {
            match json.get(field) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => uint(field, v).map(Some),
            }
        };
        let budget_ms = opt_uint("budget_ms")?;
        let conflicts = opt_uint("conflicts")?;
        let priority = match json.get("priority") {
            None | Some(Json::Null) => 0,
            Some(v) => v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && n.abs() <= i64::MAX as f64)
                .map(|n| n as i64)
                .ok_or_else(|| err(ErrorKind::Parse, "priority must be an integer".to_string()))?,
        };
        let certify = match json.get("certify") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => {
                return Err(err(
                    ErrorKind::Parse,
                    "certify must be a boolean".to_string(),
                ))
            }
        };
        Ok(ScheduleRequest {
            id,
            layers,
            priority,
            deadline_ms,
            budget_ms,
            conflicts,
            certify,
        })
    }
}

/// `{"schedule": "<id>", "done": true, ...}` — the aggregated trailer of
/// one schedule, emitted after every layer's own response (in layer
/// completion order) has been delivered.
///
/// `provenance` has one entry per layer, in layer order: the winning
/// strategy name for solved layers (`cache` for canonical-cache hits) or
/// the error kind (`canceled`, `deadline`, ...) for unsolved ones — the
/// per-layer provenance record the schedule's consumer audits.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// The schedule's correlation id.
    pub id: String,
    /// Layers the schedule carried.
    pub layers: u64,
    /// Layers answered successfully.
    pub solved: u64,
    /// Layers answered with a non-cancel error (deadline included).
    pub failed: u64,
    /// Layers canceled (cancel-with-partial-results: solved layers were
    /// already delivered, these answered `canceled`).
    pub canceled: u64,
    /// Sum of solved layers' depths — the circuit's total shot count.
    pub total_depth: u64,
    /// Solved layers whose depth was proved optimal.
    pub proved_optimal: u64,
    /// Solved layers answered by the shared canonical cache — the
    /// cross-layer (and cross-connection) reuse the schedule path exists
    /// to exploit.
    pub cache_hits: u64,
    /// Layers whose response carried an optimality certificate (0 unless
    /// the hello opted in and the schedule set `certify`).
    pub certified: u64,
    /// Total SAT conflicts spent across layers.
    pub conflicts: u64,
    /// Wall-clock milliseconds from schedule acceptance to the last
    /// layer's answer (3-decimal wire precision).
    pub millis: f64,
    /// Per-layer provenance, in layer order (see the type docs).
    pub provenance: Vec<String>,
}

impl ScheduleSummary {
    /// Serializes the summary as one JSON line (always v2 — v1 has no
    /// schedule frames).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"schedule\": ");
        write_json_string(&mut out, &self.id);
        // `{:.3}` of a non-finite float is not valid JSON; clamp to 0.
        let millis = if self.millis.is_finite() {
            self.millis
        } else {
            0.0
        };
        let _ = write!(
            out,
            ", \"done\": true, \"protocol\": 2, \"layers\": {}, \"solved\": {}, \
             \"failed\": {}, \"canceled\": {}, \"total_depth\": {}, \"proved_optimal\": {}, \
             \"cache_hits\": {}, \"certified\": {}, \"conflicts\": {}, \"millis\": {millis:.3}, \
             \"provenance\": [",
            self.layers,
            self.solved,
            self.failed,
            self.canceled,
            self.total_depth,
            self.proved_optimal,
            self.cache_hits,
            self.certified,
            self.conflicts,
        );
        for (i, p) in self.provenance.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, p);
        }
        out.push_str("]}");
        out
    }

    /// Parses a schedule summary line (client side). Counter fields absent
    /// in frames from future or older servers default to 0.
    pub fn parse_line(line: &str) -> Result<ScheduleSummary, String> {
        let json = parse_json(line)?;
        let id = json
            .get("schedule")
            .and_then(Json::as_str)
            .ok_or("not a schedule summary (no schedule id)")?
            .to_string();
        if json.get("done").and_then(Json::as_bool) != Some(true) {
            return Err("not a schedule summary (no done marker)".to_string());
        }
        let num = |field: &str| -> u64 {
            json.get(field)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .unwrap_or(0)
        };
        Ok(ScheduleSummary {
            id,
            layers: num("layers"),
            solved: num("solved"),
            failed: num("failed"),
            canceled: num("canceled"),
            total_depth: num("total_depth"),
            proved_optimal: num("proved_optimal"),
            cache_hits: num("cache_hits"),
            certified: num("certified"),
            conflicts: num("conflicts"),
            millis: json.get("millis").and_then(Json::as_f64).unwrap_or(0.0),
            provenance: json
                .get("provenance")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|p| p.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Whether a server line is a schedule summary (cheap classification
    /// for clients interleaving layer responses and trailers).
    pub fn is_summary_line(line: &str) -> bool {
        line.starts_with("{\"schedule\": ") && line.contains("\"done\": true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(text: &str) -> BitMatrix {
        text.parse().unwrap()
    }

    #[test]
    fn schedule_request_roundtrips() {
        let mut req = ScheduleRequest::new(
            "s1",
            vec![layer("10\n01"), layer("11\n00"), layer("01\n10")],
        );
        req.priority = 3;
        req.deadline_ms = vec![Some(500), None, Some(1000)];
        req.budget_ms = Some(50);
        req.conflicts = Some(2000);
        req.certify = true;
        let line = req.to_json_line();
        let parsed = ScheduleRequest::from_json(&parse_json(&line).unwrap(), "f").unwrap();
        assert_eq!(parsed, req);

        // Defaults are omitted from the wire and restored on parse.
        let bare = ScheduleRequest::new("s2", vec![layer("1")]);
        let line = bare.to_json_line();
        assert_eq!(line, "{\"schedule\": \"s2\", \"layers\": [[\"1\"]]}");
        let parsed = ScheduleRequest::from_json(&parse_json(&line).unwrap(), "f").unwrap();
        assert_eq!(parsed, bare);
    }

    #[test]
    fn scalar_deadline_applies_to_every_layer() {
        let line = "{\"schedule\": \"s\", \"layers\": [\"10;01\", \"11;00\"], \
                    \"deadline_ms\": 250}";
        let req = ScheduleRequest::from_json(&parse_json(line).unwrap(), "f").unwrap();
        assert_eq!(req.deadline_ms, vec![Some(250), Some(250)]);
    }

    #[test]
    fn layer_jobs_inherit_schedule_fields() {
        let mut req = ScheduleRequest::new("s", vec![layer("10\n01"), layer("11\n00")]);
        req.priority = -2;
        req.deadline_ms = vec![None, Some(9)];
        req.conflicts = Some(77);
        let jobs = req.to_jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "s/L0");
        assert_eq!(jobs[1].id, "s/L1");
        assert!(jobs.iter().all(|j| j.priority == -2));
        assert!(jobs.iter().all(|j| j.conflicts == Some(77)));
        assert_eq!(jobs[0].deadline_ms, None);
        assert_eq!(jobs[1].deadline_ms, Some(9));
    }

    #[test]
    fn malformed_schedules_report_structured_errors() {
        let cases = [
            (
                "{\"schedule\": 7, \"layers\": [\"1\"]}",
                ErrorKind::Protocol,
            ),
            ("{\"schedule\": \"s\"}", ErrorKind::Protocol),
            ("{\"schedule\": \"s\", \"layers\": []}", ErrorKind::Protocol),
            ("{\"schedule\": \"s\", \"layers\": 3}", ErrorKind::Protocol),
            (
                "{\"schedule\": \"s\", \"layers\": [\"12\"]}",
                ErrorKind::Matrix,
            ),
            (
                // Mismatched layer shapes address no single array.
                "{\"schedule\": \"s\", \"layers\": [\"10;01\", \"1\"]}",
                ErrorKind::Matrix,
            ),
            (
                "{\"schedule\": \"s\", \"layers\": [\"1\", \"0\"], \"deadline_ms\": [5]}",
                ErrorKind::Parse,
            ),
            (
                "{\"schedule\": \"s\", \"layers\": [\"1\"], \"certify\": \"yes\"}",
                ErrorKind::Parse,
            ),
        ];
        for (line, kind) in cases {
            let (_, err) = ScheduleRequest::from_json(&parse_json(line).unwrap(), "f").unwrap_err();
            assert_eq!(err.kind, kind, "{line}");
        }
        // The id is still used for correlation when readable.
        let (id, _) =
            ScheduleRequest::from_json(&parse_json("{\"schedule\": \"sx\"}").unwrap(), "f")
                .unwrap_err();
        assert_eq!(id, "sx");
    }

    #[test]
    fn oversized_schedules_are_rejected() {
        let layers: Vec<String> = (0..MAX_SCHEDULE_LAYERS + 1)
            .map(|_| "\"1\"".to_string())
            .collect();
        let line = format!(
            "{{\"schedule\": \"big\", \"layers\": [{}]}}",
            layers.join(", ")
        );
        let (_, err) = ScheduleRequest::from_json(&parse_json(&line).unwrap(), "f").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
    }

    #[test]
    fn schedule_summary_roundtrips() {
        let summary = ScheduleSummary {
            id: "s1".to_string(),
            layers: 3,
            solved: 2,
            failed: 0,
            canceled: 1,
            total_depth: 4,
            proved_optimal: 2,
            cache_hits: 1,
            certified: 0,
            conflicts: 831,
            millis: 12.345,
            provenance: vec!["sap".into(), "cache".into(), "canceled".into()],
        };
        let line = summary.to_json_line();
        assert!(ScheduleSummary::is_summary_line(&line), "{line}");
        assert_eq!(ScheduleSummary::parse_line(&line).unwrap(), summary);
        // A schedule *request* line is not a summary.
        assert!(!ScheduleSummary::is_summary_line(
            "{\"schedule\": \"s1\", \"layers\": [[\"1\"]]}"
        ));
        // Counters absent in older/newer servers default to 0.
        let sparse = "{\"schedule\": \"s\", \"done\": true}";
        let parsed = ScheduleSummary::parse_line(sparse).unwrap();
        assert_eq!(parsed.layers, 0);
        assert_eq!(parsed.certified, 0);
        assert!(parsed.provenance.is_empty());
    }
}
