//! Control and trailer frames of the versioned wire protocol.
//!
//! Protocol **v1** has exactly two server frame shapes: job responses and
//! the final summary trailer. Protocol **v2** (negotiated by a `hello`
//! handshake as the first client line) adds cancel acks and an on-demand
//! stats frame, and versions the summary. See `PROTOCOL.md` at the
//! repository root for the full framing specification.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::job::{ErrorKind, JobError, JobRequest};
use crate::json::{parse_json, write_json_string, Json};
use crate::schedule::ScheduleRequest;

/// The two wire protocol generations. A connection starts in
/// [`WireVersion::V1`]; a `hello` handshake as the first line upgrades it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// Legacy JSON-lines: job lines in, response lines + summary out.
    #[default]
    V1,
    /// Handshaked: capabilities, cancel, priority/deadline, busy
    /// backpressure, structured errors, stats.
    V2,
}

impl WireVersion {
    /// The numeric protocol version carried by handshake/summary frames.
    pub fn number(self) -> u32 {
        match self {
            WireVersion::V1 => 1,
            WireVersion::V2 => 2,
        }
    }
}

/// Highest protocol version this crate implements.
pub const PROTOCOL_VERSION: u32 = 2;

/// One parsed client line: either a job or a v2 control frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// `{"hello": <version>}` — handshake; only valid as the first line.
    Hello {
        /// The highest protocol version the client speaks.
        version: u32,
        /// Whether the client wants per-response `timing` breakdowns
        /// (v2; `{"hello": 2, "timing": true}`).
        timing: bool,
        /// Whether the client wants `certificate` objects on responses to
        /// jobs that set `certify` (v2; `{"hello": 2, "certificate":
        /// true}`). Certificates are large — without this opt-in the
        /// server strips them even from certified jobs.
        certificate: bool,
    },
    /// A job submission.
    Job(JobRequest),
    /// `{"cancel": "<id>"}` — cancel a still-queued job or an active
    /// schedule (v2).
    Cancel {
        /// The id the job or schedule was submitted under on this
        /// connection.
        id: String,
    },
    /// `{"stats": true}` — request a stats frame (v2).
    Stats,
    /// `{"schedule": "<id>", "layers": [...]}` — an ordered multi-layer
    /// submission solved as one unit (v2).
    Schedule(ScheduleRequest),
}

impl ClientFrame {
    /// Classifies and parses one client line. A line carrying a `matrix`
    /// key is always a **job** — legacy v1 job lines may carry stray
    /// fields named like control markers, and unknown fields were always
    /// ignored. Only matrix-less lines are classified by their marker key
    /// (`hello` / `cancel` / `stats`); anything else parses as a job
    /// request — exactly protocol v1's rule, so v1 job lines are never
    /// misread. On failure returns the job id (when one was readable)
    /// plus the categorized error.
    pub fn parse_line(line: &str, line_no: usize) -> Result<ClientFrame, (String, JobError)> {
        let fallback_id = format!("job-{line_no}");
        let json = parse_json(line)
            .map_err(|e| (fallback_id.clone(), JobError::new(ErrorKind::Parse, e)))?;
        if json.get("matrix").is_some() {
            return JobRequest::from_json(&json, &fallback_id).map(ClientFrame::Job);
        }
        if let Some(v) = json.get("hello") {
            let version = v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && *n >= 1.0 && *n <= u32::MAX as f64)
                .ok_or_else(|| {
                    (
                        fallback_id.clone(),
                        JobError::new(ErrorKind::Protocol, "hello must carry a version number"),
                    )
                })?;
            // The opt-in flags are lenient: anything but `true` means off,
            // so older clients and producers are never rejected over them.
            let timing = json.get("timing").and_then(Json::as_bool) == Some(true);
            let certificate = json.get("certificate").and_then(Json::as_bool) == Some(true);
            return Ok(ClientFrame::Hello {
                version: version as u32,
                timing,
                certificate,
            });
        }
        if let Some(v) = json.get("cancel") {
            let id = v.as_str().ok_or_else(|| {
                (
                    fallback_id.clone(),
                    JobError::new(ErrorKind::Protocol, "cancel must carry a job id string"),
                )
            })?;
            return Ok(ClientFrame::Cancel { id: id.to_string() });
        }
        if json.get("stats").is_some() {
            return Ok(ClientFrame::Stats);
        }
        if json.get("schedule").is_some() {
            return ScheduleRequest::from_json(&json, &fallback_id).map(ClientFrame::Schedule);
        }
        JobRequest::from_json(&json, &fallback_id).map(ClientFrame::Job)
    }

    /// Serializes the frame as one JSON line (client side).
    pub fn to_json_line(&self) -> String {
        match self {
            ClientFrame::Hello {
                version,
                timing,
                certificate,
            } => {
                let mut out = format!("{{\"hello\": {version}");
                if *timing {
                    out.push_str(", \"timing\": true");
                }
                if *certificate {
                    out.push_str(", \"certificate\": true");
                }
                out.push('}');
                out
            }
            ClientFrame::Job(req) => req.to_json_line(),
            ClientFrame::Cancel { id } => {
                let mut out = String::from("{\"cancel\": ");
                write_json_string(&mut out, id);
                out.push('}');
                out
            }
            ClientFrame::Stats => "{\"stats\": true}".to_string(),
            ClientFrame::Schedule(req) => req.to_json_line(),
        }
    }
}

/// Server capabilities advertised in the handshake ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Shards of the canonical-form cache.
    pub shards: u64,
    /// Strategy roster the portfolio races (stable protocol names).
    pub strategies: Vec<String>,
    /// Canonizer search budget (individualization branches).
    pub canon_budget: u64,
    /// Bound of the submission queue; a full queue answers `busy`.
    pub queue_depth: u64,
    /// Worker threads solving jobs.
    pub workers: u64,
    /// Whether the server honors the hello `timing` opt-in (per-response
    /// stage breakdowns). Absent in acks from older servers → `false`.
    pub timing: bool,
    /// Whether the server honors the `certify` job flag and the hello
    /// `certificate` opt-in (machine-checkable optimality proofs).
    /// Absent in acks from older servers → `false`.
    pub certificate: bool,
    /// Whether the server accepts multi-layer `schedule` frames. Absent
    /// in acks from older servers → `false`.
    pub schedule: bool,
}

/// `{"hello": true, "protocol": N, "server": ..., "capabilities": {...}}` —
/// the server's answer to a [`ClientFrame::Hello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The protocol version the server granted (min of both sides).
    pub protocol: u32,
    /// Server name/version, e.g. `rect-addr/0.2.0`.
    pub server: String,
    /// What the serving stack is configured with.
    pub capabilities: Capabilities,
}

impl HelloAck {
    /// Serializes the ack as one JSON line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"hello\": true, \"protocol\": {}, \"server\": ",
            self.protocol
        );
        write_json_string(&mut out, &self.server);
        let c = &self.capabilities;
        let _ = write!(
            out,
            ", \"capabilities\": {{\"shards\": {}, \"strategies\": [",
            c.shards
        );
        for (i, s) in c.strategies.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, s);
        }
        let _ = write!(
            out,
            "], \"canon_budget\": {}, \"queue_depth\": {}, \"workers\": {}, \"timing\": {}, \
             \"certificate\": {}, \"schedule\": {}}}}}",
            c.canon_budget, c.queue_depth, c.workers, c.timing, c.certificate, c.schedule
        );
        out
    }

    /// Parses a handshake ack line (client side).
    pub fn parse_line(line: &str) -> Result<HelloAck, String> {
        let json = parse_json(line)?;
        if json.get("hello").and_then(Json::as_bool) != Some(true) {
            return Err("not a hello ack".to_string());
        }
        let protocol = json
            .get("protocol")
            .and_then(Json::as_f64)
            .ok_or("missing protocol")? as u32;
        let caps = json.get("capabilities").ok_or("missing capabilities")?;
        let num = |field: &str| -> Result<u64, String> {
            caps.get(field)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or(format!("missing capability {field}"))
        };
        Ok(HelloAck {
            protocol,
            server: json
                .get("server")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            capabilities: Capabilities {
                shards: num("shards")?,
                strategies: caps
                    .get("strategies")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(|s| s.as_str().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default(),
                canon_budget: num("canon_budget")?,
                queue_depth: num("queue_depth")?,
                workers: num("workers")?,
                // Lenient: acks from servers predating the flags parse
                // with the feature unavailable rather than failing.
                timing: caps.get("timing").and_then(Json::as_bool) == Some(true),
                certificate: caps.get("certificate").and_then(Json::as_bool) == Some(true),
                schedule: caps.get("schedule").and_then(Json::as_bool) == Some(true),
            },
        })
    }
}

/// `{"cancel": "<id>", "done": bool}` — whether a cancel frame landed
/// while its job was still queued (v2). When `done` is true the canceled
/// job's own [`ErrorKind::Canceled`] response
/// is delivered immediately *before* this ack, so once the ack arrives
/// the job's response has already passed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CancelAck {
    /// The id the cancel frame named.
    pub id: String,
    /// `true` when the job was removed from the queue.
    pub done: bool,
}

impl CancelAck {
    /// Serializes the ack as one JSON line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{\"cancel\": ");
        write_json_string(&mut out, &self.id);
        let _ = write!(out, ", \"done\": {}}}", self.done);
        out
    }

    /// Parses a cancel ack line (client side).
    pub fn parse_line(line: &str) -> Result<CancelAck, String> {
        let json = parse_json(line)?;
        Ok(CancelAck {
            id: json
                .get("cancel")
                .and_then(Json::as_str)
                .ok_or("missing cancel id")?
                .to_string(),
            done: json
                .get("done")
                .and_then(Json::as_bool)
                .ok_or("missing done")?,
        })
    }
}

/// Point-in-time engine counters embedded in summary and stats frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// Cache lookups answered from the cache (flight waits included).
    pub cache_hits: u64,
    /// Cache lookups that had to solve.
    pub cache_misses: u64,
    /// Entries currently stored.
    pub cache_entries: u64,
    /// Entries dropped by LRU eviction.
    pub cache_evictions: u64,
    /// Hits served by waiting on a concurrent in-flight solve.
    pub flight_waits: u64,
    /// Warm SAP sessions currently parked.
    pub warm_sessions: u64,
    /// Lookups keyed by the complete canonizer.
    pub canon_complete: u64,
    /// Lookups keyed by the heuristic fallback labeling.
    pub canon_heuristic: u64,
}

/// The final trailer of a connection: per-connection job totals plus a
/// service-wide [`EngineSnapshot`] (the engine is shared across
/// connections, so the cache counters are global by design).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SummaryFrame {
    /// Jobs answered successfully on this connection.
    pub solved: u64,
    /// Jobs answered with a non-cancel error on this connection.
    pub failed: u64,
    /// Jobs canceled while queued (v2; always 0 on a v1 connection).
    pub canceled: u64,
    /// Submissions rejected with `busy` (v2; always 0 on v1).
    pub busy: u64,
    /// Multi-layer `schedule` frames accepted on this connection (v2;
    /// always 0 on v1).
    pub schedule_jobs: u64,
    /// Layers answered on behalf of those schedules, whatever the
    /// outcome (v2; always 0 on v1).
    pub schedule_layers: u64,
    /// Service-wide engine counters at drain time.
    pub snapshot: EngineSnapshot,
}

impl SummaryFrame {
    /// Serializes the trailer. The v1 shape is byte-identical to the
    /// pre-v2 summary line; v2 adds `protocol`, `canceled` and `busy`.
    pub fn to_json_line(&self, version: WireVersion) -> String {
        let s = &self.snapshot;
        let mut out = String::from("{\"summary\": true");
        if version == WireVersion::V2 {
            let _ = write!(out, ", \"protocol\": {}", version.number());
        }
        let _ = write!(
            out,
            ", \"solved\": {}, \"failed\": {}",
            self.solved, self.failed
        );
        if version == WireVersion::V2 {
            let _ = write!(
                out,
                ", \"canceled\": {}, \"busy\": {}, \"schedule_jobs\": {}, \
                 \"schedule_layers\": {}",
                self.canceled, self.busy, self.schedule_jobs, self.schedule_layers
            );
        }
        let _ = write!(out, ", \"cache_hits\": {}", s.cache_hits);
        if version == WireVersion::V2 {
            // v2 completes the hit/miss pair; the v1 trailer byte shape
            // (which never carried misses) stays frozen.
            let _ = write!(out, ", \"cache_misses\": {}", s.cache_misses);
        }
        let _ = write!(
            out,
            ", \"cache_entries\": {}, \"cache_evictions\": {}, \
             \"flight_waits\": {}, \"warm_sessions\": {}, \"canon_complete\": {}, \
             \"canon_heuristic\": {}}}",
            s.cache_entries,
            s.cache_evictions,
            s.flight_waits,
            s.warm_sessions,
            s.canon_complete,
            s.canon_heuristic,
        );
        out
    }

    /// Parses a summary line of either version.
    pub fn parse_line(line: &str) -> Result<SummaryFrame, String> {
        let json = parse_json(line)?;
        if json.get("summary").and_then(Json::as_bool) != Some(true) {
            return Err("not a summary frame".to_string());
        }
        let num = |field: &str| -> u64 {
            json.get(field)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .unwrap_or(0)
        };
        Ok(SummaryFrame {
            solved: num("solved"),
            failed: num("failed"),
            canceled: num("canceled"),
            busy: num("busy"),
            // Absent on v1 trailers and pre-schedule servers → 0.
            schedule_jobs: num("schedule_jobs"),
            schedule_layers: num("schedule_layers"),
            snapshot: EngineSnapshot {
                cache_hits: num("cache_hits"),
                cache_misses: num("cache_misses"),
                cache_entries: num("cache_entries"),
                cache_evictions: num("cache_evictions"),
                flight_waits: num("flight_waits"),
                warm_sessions: num("warm_sessions"),
                canon_complete: num("canon_complete"),
                canon_heuristic: num("canon_heuristic"),
            },
        })
    }

    /// Whether a server line is a summary trailer (cheap check used by
    /// clients to detect end-of-stream without a full parse).
    pub fn is_summary_line(line: &str) -> bool {
        line.starts_with("{\"summary\": true")
    }
}

/// One hot heuristic-labeled cache key: its bit-pattern key (possibly
/// truncated for the wire) and how many lookups used it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKey {
    /// The canonical key, truncated to [`StatsFrame::KEY_PREVIEW`] chars.
    pub key: String,
    /// Lookups that produced this heuristic key.
    pub count: u64,
}

/// Percentile digest of one named latency histogram in a stats frame.
///
/// Percentile values are lower bounds of the log-linear bucket holding
/// the rank (within 1/16 relative error); `max` is exact. Time-based
/// histograms are microseconds; `sat_conflicts` counts conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of recorded values.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// `{"stats": true, ...}` — the v2 on-demand observability frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsFrame {
    /// Service-wide engine counters.
    pub snapshot: EngineSnapshot,
    /// Configured bound of the submission queue.
    pub queue_depth: u64,
    /// Jobs currently queued (not yet running).
    pub queue_len: u64,
    /// Warm SAP sessions restored from the disk snapshot at startup
    /// (0 on a cold start or when persistence is off).
    pub persisted_sessions: u64,
    /// Races whose SAT phase the budget-aware scheduler skipped because
    /// the job's bucket always proves without it.
    pub budget_skips: u64,
    /// Jobs whose response carried an optimality certificate (absent in
    /// frames from servers predating certification → 0).
    pub certified_jobs: u64,
    /// Multi-layer `schedule` frames accepted service-wide (absent in
    /// frames from servers predating schedules → 0).
    pub schedule_jobs: u64,
    /// Layers answered on behalf of `schedule` frames, whatever the
    /// outcome (absent → 0).
    pub schedule_layers: u64,
    /// Hottest heuristic-labeled cache keys (canonizer-aware admission:
    /// these are the keys worth re-canonizing at a larger budget).
    pub canon_heuristic_hot: Vec<HotKey>,
    /// Startup snapshot loads that failed for any reason other than the
    /// file not existing (0 when persistence is off or the load worked).
    pub snapshot_load_failures: u64,
    /// Connections currently open on this server's socket front-end
    /// (absent in frames from servers predating the scaled serving tier,
    /// and 0 on the stdin/batch transport, which has no socket).
    pub open_connections: u64,
    /// Generation of the warm-state snapshot this process last wrote or
    /// adopted — the multi-process flush signal. 0 when persistence is
    /// off, before the first flush, or in frames from older servers.
    pub snapshot_generation: u64,
    /// Named latency histograms, keyed by metric name (`job_us`,
    /// `queue_wait_us`, …). Empty in frames from servers predating the
    /// telemetry section.
    pub latency: BTreeMap<String, LatencySummary>,
}

impl StatsFrame {
    /// Wire truncation bound for hot-key previews.
    pub const KEY_PREVIEW: usize = 48;

    /// Serializes the stats frame (always v2 — v1 has no stats request).
    pub fn to_json_line(&self) -> String {
        let s = &self.snapshot;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"stats\": true, \"protocol\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \
             \"entries\": {}, \"evictions\": {}, \"flight_waits\": {}, \"canon_complete\": {}, \
             \"canon_heuristic\": {}}}, \"queue\": {{\"depth\": {}, \"len\": {}}}, \
             \"warm_sessions\": {}, \"persisted_sessions\": {}, \"budget_skips\": {}, \
             \"certified_jobs\": {}, \"schedule_jobs\": {}, \"schedule_layers\": {}, \
             \"snapshot_load_failures\": {}, \"open_connections\": {}, \
             \"snapshot_generation\": {}, \"canon_heuristic_hot\": [",
            WireVersion::V2.number(),
            s.cache_hits,
            s.cache_misses,
            s.cache_entries,
            s.cache_evictions,
            s.flight_waits,
            s.canon_complete,
            s.canon_heuristic,
            self.queue_depth,
            self.queue_len,
            s.warm_sessions,
            self.persisted_sessions,
            self.budget_skips,
            self.certified_jobs,
            self.schedule_jobs,
            self.schedule_layers,
            self.snapshot_load_failures,
            self.open_connections,
            self.snapshot_generation,
        );
        for (i, hot) in self.canon_heuristic_hot.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"key\": ");
            let preview: String = hot.key.chars().take(Self::KEY_PREVIEW).collect();
            write_json_string(&mut out, &preview);
            let _ = write!(out, ", \"count\": {}}}", hot.count);
        }
        out.push_str("], \"latency\": {");
        for (i, (name, l)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                l.count, l.p50, l.p90, l.p99, l.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Parses a stats frame line (client side).
    pub fn parse_line(line: &str) -> Result<StatsFrame, String> {
        let json = parse_json(line)?;
        if json.get("stats").and_then(Json::as_bool) != Some(true) {
            return Err("not a stats frame".to_string());
        }
        let cache = json.get("cache").ok_or("missing cache")?;
        let num = |obj: &Json, field: &str| -> u64 {
            obj.get(field)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .unwrap_or(0)
        };
        let queue = json.get("queue").ok_or("missing queue")?;
        Ok(StatsFrame {
            snapshot: EngineSnapshot {
                cache_hits: num(cache, "hits"),
                cache_misses: num(cache, "misses"),
                cache_entries: num(cache, "entries"),
                cache_evictions: num(cache, "evictions"),
                flight_waits: num(cache, "flight_waits"),
                warm_sessions: num(&json, "warm_sessions"),
                canon_complete: num(cache, "canon_complete"),
                canon_heuristic: num(cache, "canon_heuristic"),
            },
            queue_depth: num(queue, "depth"),
            queue_len: num(queue, "len"),
            persisted_sessions: num(&json, "persisted_sessions"),
            budget_skips: num(&json, "budget_skips"),
            certified_jobs: num(&json, "certified_jobs"),
            schedule_jobs: num(&json, "schedule_jobs"),
            schedule_layers: num(&json, "schedule_layers"),
            snapshot_load_failures: num(&json, "snapshot_load_failures"),
            // Absent on lines from servers predating the scaled serving
            // tier → 0, like every other additive stats field.
            open_connections: num(&json, "open_connections"),
            snapshot_generation: num(&json, "snapshot_generation"),
            // Absent on lines from older servers → empty histograms.
            latency: match json.get("latency") {
                Some(Json::Obj(map)) => map
                    .iter()
                    .map(|(name, l)| {
                        (
                            name.clone(),
                            LatencySummary {
                                count: num(l, "count"),
                                p50: num(l, "p50"),
                                p90: num(l, "p90"),
                                p99: num(l, "p99"),
                                max: num(l, "max"),
                            },
                        )
                    })
                    .collect(),
                _ => BTreeMap::new(),
            },
            canon_heuristic_hot: json
                .get("canon_heuristic_hot")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|h| {
                            Some(HotKey {
                                key: h.get("key")?.as_str()?.to_string(),
                                count: h.get("count")?.as_f64()? as u64,
                            })
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_classify_and_roundtrip() {
        let hello = ClientFrame::parse_line("{\"hello\": 2}", 1).unwrap();
        assert_eq!(
            hello,
            ClientFrame::Hello {
                version: 2,
                timing: false,
                certificate: false
            }
        );
        assert_eq!(hello.to_json_line(), "{\"hello\": 2}");

        let timed = ClientFrame::parse_line("{\"hello\": 2, \"timing\": true}", 1).unwrap();
        assert_eq!(
            timed,
            ClientFrame::Hello {
                version: 2,
                timing: true,
                certificate: false
            }
        );
        assert_eq!(timed.to_json_line(), "{\"hello\": 2, \"timing\": true}");

        let certified =
            ClientFrame::parse_line("{\"hello\": 2, \"certificate\": true}", 1).unwrap();
        assert_eq!(
            certified,
            ClientFrame::Hello {
                version: 2,
                timing: false,
                certificate: true
            }
        );
        assert_eq!(
            certified.to_json_line(),
            "{\"hello\": 2, \"certificate\": true}"
        );
        // Anything but `true` (including malformed values) means off.
        for off in ["false", "1", "\"yes\"", "null"] {
            for flag in ["timing", "certificate"] {
                let line = format!("{{\"hello\": 2, \"{flag}\": {off}}}");
                match ClientFrame::parse_line(&line, 1).unwrap() {
                    ClientFrame::Hello {
                        timing,
                        certificate,
                        ..
                    } => assert!(!timing && !certificate, "{line}"),
                    other => panic!("expected hello for {line}, got {other:?}"),
                }
            }
        }

        let cancel = ClientFrame::parse_line("{\"cancel\": \"job-7\"}", 1).unwrap();
        assert_eq!(
            cancel,
            ClientFrame::Cancel {
                id: "job-7".to_string()
            }
        );
        assert_eq!(
            ClientFrame::parse_line(&cancel.to_json_line(), 1).unwrap(),
            cancel
        );

        assert_eq!(
            ClientFrame::parse_line("{\"stats\": true}", 1).unwrap(),
            ClientFrame::Stats
        );

        // A v1 job line is still a job line.
        match ClientFrame::parse_line("{\"id\": \"a\", \"matrix\": \"10;01\"}", 1).unwrap() {
            ClientFrame::Job(req) => assert_eq!(req.id, "a"),
            other => panic!("expected job, got {other:?}"),
        }

        let sched_line = "{\"schedule\": \"s1\", \"layers\": [\"10;01\", \"11;00\"]}";
        match ClientFrame::parse_line(sched_line, 1).unwrap() {
            ClientFrame::Schedule(req) => {
                assert_eq!(req.id, "s1");
                assert_eq!(req.layers.len(), 2);
                assert_eq!(
                    ClientFrame::parse_line(&ClientFrame::Schedule(req.clone()).to_json_line(), 1)
                        .unwrap(),
                    ClientFrame::Schedule(req)
                );
            }
            other => panic!("expected schedule, got {other:?}"),
        }
    }

    #[test]
    fn job_lines_with_stray_marker_keys_stay_jobs() {
        // Unknown extra fields were always ignored on job lines, so a
        // stray control-marker-named field must not consume the job.
        for stray in [
            "\"stats\": true",
            "\"cancel\": \"x\"",
            "\"hello\": 2",
            "\"schedule\": \"x\"",
        ] {
            let line = format!("{{\"id\": \"j\", \"matrix\": \"10;01\", {stray}}}");
            match ClientFrame::parse_line(&line, 1).unwrap() {
                ClientFrame::Job(req) => assert_eq!(req.id, "j"),
                other => panic!("expected job for {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_control_frames_report_protocol_errors() {
        let (_, err) = ClientFrame::parse_line("{\"hello\": \"two\"}", 1).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
        let (_, err) = ClientFrame::parse_line("{\"cancel\": 7}", 1).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
    }

    #[test]
    fn hello_ack_roundtrip() {
        let ack = HelloAck {
            protocol: 2,
            server: "rect-addr/0.2.0".to_string(),
            capabilities: Capabilities {
                shards: 16,
                strategies: vec!["trivial".into(), "packing".into(), "sap".into()],
                canon_budget: 4096,
                queue_depth: 1024,
                workers: 4,
                timing: true,
                certificate: true,
                schedule: true,
            },
        };
        let line = ack.to_json_line();
        assert!(line.contains("\"timing\": true"), "{line}");
        assert!(line.contains("\"certificate\": true"), "{line}");
        assert!(line.contains("\"schedule\": true"), "{line}");
        assert_eq!(HelloAck::parse_line(&line).unwrap(), ack);
        // An ack from a server predating the flags parses with all off.
        let legacy = line
            .replace(", \"timing\": true", "")
            .replace(", \"certificate\": true", "")
            .replace(", \"schedule\": true", "");
        let parsed = HelloAck::parse_line(&legacy).unwrap();
        assert!(!parsed.capabilities.timing, "{legacy}");
        assert!(!parsed.capabilities.certificate, "{legacy}");
        assert!(!parsed.capabilities.schedule, "{legacy}");
    }

    #[test]
    fn cancel_ack_roundtrip() {
        for done in [true, false] {
            let ack = CancelAck {
                id: "job \"quoted\"".to_string(),
                done,
            };
            assert_eq!(CancelAck::parse_line(&ack.to_json_line()).unwrap(), ack);
        }
    }

    #[test]
    fn summary_v1_shape_is_stable() {
        let frame = SummaryFrame {
            solved: 3,
            failed: 1,
            canceled: 0,
            busy: 0,
            schedule_jobs: 1,
            schedule_layers: 3,
            snapshot: EngineSnapshot {
                cache_hits: 2,
                cache_misses: 2,
                cache_entries: 2,
                cache_evictions: 0,
                flight_waits: 1,
                warm_sessions: 1,
                canon_complete: 4,
                canon_heuristic: 0,
            },
        };
        // The exact v1 trailer bytes existing consumers parse.
        assert_eq!(
            frame.to_json_line(WireVersion::V1),
            "{\"summary\": true, \"solved\": 3, \"failed\": 1, \"cache_hits\": 2, \
             \"cache_entries\": 2, \"cache_evictions\": 0, \"flight_waits\": 1, \
             \"warm_sessions\": 1, \"canon_complete\": 4, \"canon_heuristic\": 0}"
        );
        let v2 = frame.to_json_line(WireVersion::V2);
        assert!(v2.contains("\"protocol\": 2"), "{v2}");
        assert!(v2.contains("\"canceled\": 0"), "{v2}");
        assert!(v2.contains("\"schedule_jobs\": 1"), "{v2}");
        let parsed = SummaryFrame::parse_line(&v2).unwrap();
        assert_eq!(parsed, frame, "v2 trailer round-trips losslessly");
        assert_eq!(parsed.snapshot.cache_misses, 2);
        assert_eq!(parsed.snapshot.canon_complete, 4);
        assert!(SummaryFrame::is_summary_line(&v2));
        // A v2 trailer from a server predating schedules parses with the
        // schedule counters at 0.
        let legacy = v2.replace(", \"schedule_jobs\": 1, \"schedule_layers\": 3", "");
        let parsed = SummaryFrame::parse_line(&legacy).unwrap();
        assert_eq!(parsed.schedule_jobs, 0, "{legacy}");
        assert_eq!(parsed.schedule_layers, 0, "{legacy}");
        assert!(!SummaryFrame::is_summary_line(
            "{\"id\": \"x\", \"ok\": true"
        ));
    }

    #[test]
    fn stats_frame_roundtrip_truncates_keys() {
        let frame = StatsFrame {
            snapshot: EngineSnapshot {
                cache_hits: 10,
                cache_misses: 4,
                ..EngineSnapshot::default()
            },
            queue_depth: 64,
            queue_len: 3,
            persisted_sessions: 17,
            budget_skips: 5,
            certified_jobs: 7,
            schedule_jobs: 2,
            schedule_layers: 6,
            canon_heuristic_hot: vec![HotKey {
                key: "x".repeat(200),
                count: 9,
            }],
            snapshot_load_failures: 2,
            open_connections: 2049,
            snapshot_generation: 12,
            latency: BTreeMap::new(),
        };
        let parsed = StatsFrame::parse_line(&frame.to_json_line()).unwrap();
        assert_eq!(parsed.snapshot.cache_hits, 10);
        assert_eq!(parsed.queue_len, 3);
        assert_eq!(parsed.persisted_sessions, 17);
        assert_eq!(parsed.budget_skips, 5);
        assert_eq!(parsed.certified_jobs, 7);
        assert_eq!(parsed.schedule_jobs, 2);
        assert_eq!(parsed.schedule_layers, 6);
        assert_eq!(parsed.snapshot_load_failures, 2);
        assert_eq!(parsed.open_connections, 2049);
        assert_eq!(parsed.snapshot_generation, 12);
        // A pre-persistence stats line — the keys genuinely absent, as an
        // older server would emit — still parses, defaulting both to 0.
        let legacy_line = "{\"stats\": true, \"protocol\": 2, \
             \"cache\": {\"hits\": 1, \"misses\": 2, \"entries\": 1, \"evictions\": 0, \
             \"flight_waits\": 0, \"canon_complete\": 3, \"canon_heuristic\": 0}, \
             \"queue\": {\"depth\": 8, \"len\": 0}, \"warm_sessions\": 1, \
             \"canon_heuristic_hot\": []}";
        let legacy = StatsFrame::parse_line(legacy_line).unwrap();
        assert_eq!(legacy.persisted_sessions, 0);
        assert_eq!(legacy.budget_skips, 0);
        assert_eq!(legacy.snapshot.cache_hits, 1);
        assert_eq!(parsed.canon_heuristic_hot.len(), 1);
        assert_eq!(
            parsed.canon_heuristic_hot[0].key.len(),
            StatsFrame::KEY_PREVIEW
        );
        assert_eq!(parsed.canon_heuristic_hot[0].count, 9);
    }

    #[test]
    fn stats_latency_section_roundtrips() {
        let mut frame = StatsFrame {
            queue_depth: 8,
            ..StatsFrame::default()
        };
        frame.latency.insert(
            "job_us".to_string(),
            LatencySummary {
                count: 12,
                p50: 120,
                p90: 400,
                p99: 900,
                max: 912,
            },
        );
        frame.latency.insert(
            "queue_wait_us".to_string(),
            LatencySummary {
                count: 12,
                p50: 3,
                p90: 9,
                p99: 15,
                max: 15,
            },
        );
        let line = frame.to_json_line();
        assert!(
            line.contains("\"latency\": {\"job_us\": {\"count\": 12, \"p50\": 120"),
            "{line}"
        );
        assert_eq!(StatsFrame::parse_line(&line).unwrap(), frame);
    }

    #[test]
    fn stats_line_without_latency_parses_with_empty_histograms() {
        // Same back-compat contract as `persisted_sessions`: a v2 stats
        // line from a server predating the telemetry section parses with
        // the new fields at their defaults.
        let legacy_line = "{\"stats\": true, \"protocol\": 2, \
             \"cache\": {\"hits\": 1, \"misses\": 2, \"entries\": 1, \"evictions\": 0, \
             \"flight_waits\": 0, \"canon_complete\": 3, \"canon_heuristic\": 0}, \
             \"queue\": {\"depth\": 8, \"len\": 0}, \"warm_sessions\": 1, \
             \"persisted_sessions\": 4, \"budget_skips\": 1, \
             \"canon_heuristic_hot\": []}";
        let legacy = StatsFrame::parse_line(legacy_line).unwrap();
        assert!(legacy.latency.is_empty());
        assert_eq!(legacy.snapshot_load_failures, 0);
        assert_eq!(legacy.persisted_sessions, 4);
        assert_eq!(legacy.certified_jobs, 0);
        assert_eq!(legacy.schedule_jobs, 0);
        assert_eq!(legacy.schedule_layers, 0);
        // Fields the scaled serving tier added, absent the same way.
        assert_eq!(legacy.open_connections, 0);
        assert_eq!(legacy.snapshot_generation, 0);
        // A malformed latency value degrades to empty, not an error.
        let odd = legacy_line.replace(
            ", \"canon_heuristic_hot\"",
            ", \"latency\": 7, \"canon_heuristic_hot\"",
        );
        assert!(StatsFrame::parse_line(&odd).unwrap().latency.is_empty());
    }
}
