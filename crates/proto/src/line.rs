//! Bounded line reading for JSON-lines transports.
//!
//! `BufRead::lines` buffers an entire line in memory before returning it,
//! so a peer that streams bytes without ever sending a newline grows the
//! reader's memory without limit. [`read_line_bounded`] reads through the
//! stream's own buffer instead and gives up once a line exceeds the
//! caller's cap — the transport answers a protocol error and closes.

use std::io::{self, BufRead};

/// Upper bound on one client→server wire line, in bytes (the newline
/// excluded). Far above any real frame — a job line carries one matrix,
/// and a 3000×3000 one (≈9 MB) fits with room to spare — while keeping a
/// newline-less peer from ballooning server memory.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Upper bound clients apply to one server→client line. Response lines
/// carry partition index lists that can outgrow their job line by an
/// order of magnitude, so this is far looser than [`MAX_LINE_BYTES`]; it
/// exists only to bound client memory against a broken server.
pub const MAX_RESPONSE_LINE_BYTES: usize = 16 * MAX_LINE_BYTES;

/// Outcome of one [`read_line_bounded`] call.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line, newline and trailing carriage return stripped.
    Line(String),
    /// End of stream with no pending bytes.
    Eof,
    /// The line outgrew the cap. The stream is mid-line and no longer
    /// framed; the only safe continuation is to close it.
    TooLong,
}

/// Reads one `\n`-terminated line of at most `max` bytes, accumulating
/// through the reader's own buffer so memory use never exceeds the cap.
/// A final unterminated line is returned as a [`LineRead::Line`] (the
/// `BufRead::lines` convention); bytes that are not UTF-8 error with
/// [`io::ErrorKind::InvalidData`], matching `BufRead::lines`.
pub fn read_line_bounded<R: BufRead>(input: &mut R, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                finish_line(buf)
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if buf.len() + nl > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..nl]);
                input.consume(nl + 1);
                return finish_line(buf);
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                input.consume(take);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> io::Result<LineRead> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map(LineRead::Line).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "stream did not contain valid UTF-8",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8], max: usize) -> Vec<String> {
        let mut reader = input;
        let mut lines = Vec::new();
        loop {
            match read_line_bounded(&mut reader, max).unwrap() {
                LineRead::Line(line) => lines.push(line),
                LineRead::Eof => return lines,
                LineRead::TooLong => panic!("unexpected TooLong"),
            }
        }
    }

    #[test]
    fn reads_lines_like_buf_read_lines() {
        assert_eq!(
            read_all(b"a\nbb\r\n\nfinal-no-newline", 64),
            ["a", "bb", "", "final-no-newline"]
        );
        assert_eq!(read_all(b"", 64), Vec::<String>::new());
    }

    #[test]
    fn oversized_lines_stop_at_the_cap() {
        // Terminated but over the cap.
        let mut input: &[u8] = b"0123456789\n";
        assert!(matches!(
            read_line_bounded(&mut input, 4).unwrap(),
            LineRead::TooLong
        ));
        // A newline-less stream stops accumulating at the cap even with a
        // tiny underlying buffer (many fill_buf rounds).
        let endless = vec![b'x'; 1024];
        let mut reader = std::io::BufReader::with_capacity(16, &endless[..]);
        assert!(matches!(
            read_line_bounded(&mut reader, 100).unwrap(),
            LineRead::TooLong
        ));
        // Exactly at the cap is fine.
        let mut at_cap: &[u8] = b"abcd\n";
        assert!(matches!(
            read_line_bounded(&mut at_cap, 4).unwrap(),
            LineRead::Line(l) if l == "abcd"
        ));
    }

    #[test]
    fn invalid_utf8_errors_like_lines() {
        let mut input: &[u8] = b"\xff\xfe garbage\n";
        let err = read_line_bounded(&mut input, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
