//! A small hand-rolled JSON reader/writer covering the subset the wire
//! protocol needs (objects, arrays, strings with escapes, numbers,
//! booleans, null). The build environment has no serde, so the protocol
//! crate carries its own.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order is not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value of `key` when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Deepest container nesting `parse_json` accepts. The parser recurses
/// per nesting level, so without a bound one wire line of repeated `[`
/// overflows the stack and aborts the whole process; real protocol
/// frames nest three or four levels.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document (rejecting trailing garbage and containers
/// nested deeper than [`MAX_DEPTH`]).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

/// Reads four hex digits starting at `at`.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    b.get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| "invalid \\u escape".to_string())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: combine with the following
                            // `\uXXXX` low surrogate (standard encoders emit
                            // astral characters as surrogate pairs).
                            if b.get(*pos + 1..*pos + 3) == Some(br"\u") {
                                let low = parse_hex4(b, *pos + 3)?;
                                if (0xDC00..=0xDFFF).contains(&low) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    *pos += 6;
                                }
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar value.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Appends a JSON-escaped string literal (with quotes) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let j = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"\nA"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            j.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"\nA")
        );
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn json_parser_combines_surrogate_pairs() {
        // U+1F600 as a standard encoder (e.g. json.dumps) emits it: an
        // escaped UTF-16 surrogate pair.
        let j = parse_json("{\"id\": \"job-\\ud83d\\ude00\"}").unwrap();
        assert_eq!(j.get("id").unwrap().as_str(), Some("job-\u{1F600}"));
        // Raw (unescaped) UTF-8 passes through unchanged.
        let raw = parse_json("\"job-\u{1F600}\"").unwrap();
        assert_eq!(raw.as_str(), Some("job-\u{1F600}"));
        // Lone surrogates degrade to U+FFFD rather than erroring.
        let lone = parse_json(r#""\ud83d!""#).unwrap();
        assert_eq!(lone.as_str(), Some("\u{FFFD}!"));
    }

    #[test]
    fn json_parser_bounds_nesting_depth() {
        // At the bound: parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&ok).is_ok());
        // One past the bound: a parse error, not a stack overflow.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse_json(&over).unwrap_err().contains("nesting"));
        // Objects and mixed nesting hit the same bound.
        let objs = "{\"k\": ".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse_json(&objs).unwrap_err().contains("nesting"));
        // The adversarial shape from the wire: a line of repeated '['
        // (unclosed) must error out instead of aborting the process.
        assert!(parse_json(&"[".repeat(2_000_000)).is_err());
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("[1, 2,, 3]").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }
}
