//! Job requests and responses — the payload frames shared by protocol v1
//! and v2 (see the crate docs for the framing differences).

use std::fmt;
use std::fmt::Write as _;

use bitmatrix::{BitMatrix, BitVec};
use ebmf::{Partition, Rectangle};

use crate::json::{parse_json, write_json_string, Json};
use crate::WireVersion;

/// Structured error category of a failed job, stable on the v2 wire.
///
/// Protocol v1 carries only the free-form message; v2 serializes the error
/// as `{"kind": <name>, "message": <text>}` so clients can branch on the
/// category (retry on `busy`, drop on `canceled`, …) without string
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ErrorKind {
    /// The request line was not a well-formed job (bad JSON, bad fields).
    Parse,
    /// The `matrix` field did not parse as a 0/1 matrix.
    Matrix,
    /// The submission queue was full; resubmit later (v2 backpressure).
    Busy,
    /// The job was canceled by a `cancel` frame while still queued.
    Canceled,
    /// The job's `deadline_ms` expired before a worker could start it.
    Deadline,
    /// The input stream failed mid-read (e.g. invalid UTF-8).
    Io,
    /// A protocol-level violation (e.g. a handshake after the first line).
    Protocol,
    /// An unexpected server-side failure.
    Internal,
    /// An error parsed from a v1 line, which carries no kind.
    Unknown,
}

/// Single source of truth tying every [`ErrorKind`] variant to its stable
/// wire name; both conversion directions derive from it.
const ERROR_KIND_TABLE: [(ErrorKind, &str); ErrorKind::COUNT] = [
    (ErrorKind::Parse, "parse"),
    (ErrorKind::Matrix, "matrix"),
    (ErrorKind::Busy, "busy"),
    (ErrorKind::Canceled, "canceled"),
    (ErrorKind::Deadline, "deadline"),
    (ErrorKind::Io, "io"),
    (ErrorKind::Protocol, "protocol"),
    (ErrorKind::Internal, "internal"),
    (ErrorKind::Unknown, "unknown"),
];

impl ErrorKind {
    /// Number of variants (the length of [`ErrorKind::ALL`]).
    pub const COUNT: usize = 9;

    /// Every variant, in table order.
    pub const ALL: [ErrorKind; ErrorKind::COUNT] = [
        ErrorKind::Parse,
        ErrorKind::Matrix,
        ErrorKind::Busy,
        ErrorKind::Canceled,
        ErrorKind::Deadline,
        ErrorKind::Io,
        ErrorKind::Protocol,
        ErrorKind::Internal,
        ErrorKind::Unknown,
    ];

    /// Position of this variant in the name table / [`ErrorKind::ALL`].
    /// The exhaustive `match` forces the table to grow with the enum.
    pub const fn index(self) -> usize {
        match self {
            ErrorKind::Parse => 0,
            ErrorKind::Matrix => 1,
            ErrorKind::Busy => 2,
            ErrorKind::Canceled => 3,
            ErrorKind::Deadline => 4,
            ErrorKind::Io => 5,
            ErrorKind::Protocol => 6,
            ErrorKind::Internal => 7,
            ErrorKind::Unknown => 8,
        }
    }

    /// Stable lowercase wire name.
    pub fn as_str(&self) -> &'static str {
        ERROR_KIND_TABLE[self.index()].1
    }

    /// Parses [`ErrorKind::as_str`] output; unrecognized names (e.g. from a
    /// newer server) degrade to [`ErrorKind::Unknown`] instead of failing.
    pub fn from_str_lenient(s: &str) -> ErrorKind {
        ERROR_KIND_TABLE
            .iter()
            .find(|(_, name)| *name == s)
            .map_or(ErrorKind::Unknown, |(k, _)| *k)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A categorized job failure: [`ErrorKind`] plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The stable category (v2 wire; v1 drops it).
    pub kind: ErrorKind,
    /// Free-form detail — the whole v1 error payload.
    pub message: String,
}

impl JobError {
    /// Builds an error of the given category.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> JobError {
        JobError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// One job of a batch: a matrix to factorize plus optional budgets and
/// (protocol v2) scheduling hints.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Correlation id echoed in the response.
    pub id: String,
    /// The pattern matrix.
    pub matrix: BitMatrix,
    /// Per-job wall-clock budget in milliseconds (overrides engine default).
    pub budget_ms: Option<u64>,
    /// Per-SAT-query conflict budget (overrides engine default).
    pub conflicts: Option<u64>,
    /// Scheduling priority (v2): higher runs first; ties are FIFO. v1 lines
    /// default to 0.
    pub priority: i64,
    /// Queue deadline in milliseconds from submission (v2): a job still
    /// queued when it expires answers [`ErrorKind::Deadline`] instead of
    /// running, and a started job's wall-clock budget is clamped to the
    /// time remaining.
    pub deadline_ms: Option<u64>,
    /// Request a machine-checkable certificate for the optimality proof
    /// (v2): when the depth is proved optimal, the response carries a
    /// [`Certificate`] with the UNSAT refutation of `depth - 1`. Costs
    /// proof logging overhead; v1 lines ignore the field.
    pub certify: bool,
}

impl JobRequest {
    /// A request with defaults for every optional field.
    pub fn new(id: impl Into<String>, matrix: BitMatrix) -> JobRequest {
        JobRequest {
            id: id.into(),
            matrix,
            budget_ms: None,
            conflicts: None,
            priority: 0,
            deadline_ms: None,
            certify: false,
        }
    }

    /// Sets the per-job wall-clock budget.
    pub fn with_budget_ms(mut self, ms: u64) -> JobRequest {
        self.budget_ms = Some(ms);
        self
    }

    /// Sets the per-SAT-query conflict budget.
    pub fn with_conflicts(mut self, conflicts: u64) -> JobRequest {
        self.conflicts = Some(conflicts);
        self
    }

    /// Sets the scheduling priority (v2).
    pub fn with_priority(mut self, priority: i64) -> JobRequest {
        self.priority = priority;
        self
    }

    /// Sets the queue deadline (v2).
    pub fn with_deadline_ms(mut self, ms: u64) -> JobRequest {
        self.deadline_ms = Some(ms);
        self
    }

    /// Requests an optimality certificate (v2).
    pub fn with_certify(mut self, certify: bool) -> JobRequest {
        self.certify = certify;
        self
    }

    /// Parses one request line with every field (protocol v2 rules).
    /// `line_no` (1-based) names anonymous jobs `job-<line_no>` and
    /// contextualizes errors. On failure returns the id (when one was
    /// readable) plus the categorized error.
    pub fn parse_line(line: &str, line_no: usize) -> Result<JobRequest, (String, JobError)> {
        Self::parse_line_in(line, line_no, WireVersion::V2)
    }

    /// Parses one request line under the given wire version. In
    /// [`WireVersion::V1`] the v2-only `priority` / `deadline_ms` fields
    /// are **ignored** like any other unknown field — exactly the legacy
    /// parser's behaviour, so a v1 producer with stray extra fields is
    /// neither rejected nor silently given v2 scheduling semantics.
    pub fn parse_line_in(
        line: &str,
        line_no: usize,
        version: WireVersion,
    ) -> Result<JobRequest, (String, JobError)> {
        let fallback_id = format!("job-{line_no}");
        let json = parse_json(line)
            .map_err(|e| (fallback_id.clone(), JobError::new(ErrorKind::Parse, e)))?;
        Self::from_json_in(&json, &fallback_id, version)
    }

    /// Parses an already-decoded request object with every field
    /// (protocol v2 rules; used by the v2 frame dispatcher).
    pub fn from_json(json: &Json, fallback_id: &str) -> Result<JobRequest, (String, JobError)> {
        Self::from_json_in(json, fallback_id, WireVersion::V2)
    }

    /// Version-aware variant of [`JobRequest::from_json`]; see
    /// [`JobRequest::parse_line_in`].
    pub fn from_json_in(
        json: &Json,
        fallback_id: &str,
        version: WireVersion,
    ) -> Result<JobRequest, (String, JobError)> {
        let id = match json.get("id") {
            // A present but non-string id would break response correlation
            // if silently renamed — reject it instead.
            Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                (
                    fallback_id.to_string(),
                    JobError::new(ErrorKind::Parse, "id must be a string"),
                )
            })?,
            None => fallback_id.to_string(),
        };
        let err = |kind: ErrorKind, msg: String| (id.clone(), JobError::new(kind, msg));

        let matrix_text = match json.get("matrix") {
            Some(Json::Str(s)) => s.replace(';', "\n"),
            Some(Json::Arr(rows)) => {
                let mut lines = Vec::with_capacity(rows.len());
                for r in rows {
                    lines.push(
                        r.as_str()
                            .ok_or_else(|| {
                                err(ErrorKind::Parse, "matrix rows must be strings".to_string())
                            })?
                            .to_string(),
                    );
                }
                lines.join("\n")
            }
            Some(_) => {
                return Err(err(
                    ErrorKind::Parse,
                    "matrix must be a string or array of strings".to_string(),
                ))
            }
            None => {
                return Err(err(
                    ErrorKind::Parse,
                    "missing \"matrix\" field".to_string(),
                ))
            }
        };
        let matrix: BitMatrix = matrix_text
            .parse()
            .map_err(|e| err(ErrorKind::Matrix, format!("invalid matrix: {e}")))?;

        let uint = |field: &str| -> Result<Option<u64>, (String, JobError)> {
            match json.get(field) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .filter(|n| *n >= 0.0)
                    .map(|n| Some(n as u64))
                    .ok_or_else(|| {
                        err(
                            ErrorKind::Parse,
                            format!("{field} must be a non-negative number"),
                        )
                    }),
            }
        };
        let budget_ms = uint("budget_ms")?;
        let conflicts = uint("conflicts")?;
        // v2-only scheduling fields: on a v1 line they are unknown extras,
        // neither validated nor honored.
        let (deadline_ms, priority, certify) = match version {
            WireVersion::V1 => (None, 0, false),
            WireVersion::V2 => {
                let deadline_ms = uint("deadline_ms")?;
                let priority = match json.get("priority") {
                    None | Some(Json::Null) => 0,
                    Some(v) => v
                        .as_f64()
                        .filter(|n| n.fract() == 0.0 && n.abs() <= i64::MAX as f64)
                        .map(|n| n as i64)
                        .ok_or_else(|| {
                            err(ErrorKind::Parse, "priority must be an integer".to_string())
                        })?,
                };
                let certify = match json.get("certify") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => {
                        return Err(err(
                            ErrorKind::Parse,
                            "certify must be a boolean".to_string(),
                        ))
                    }
                };
                (deadline_ms, priority, certify)
            }
        };
        Ok(JobRequest {
            id,
            matrix,
            budget_ms,
            conflicts,
            priority,
            deadline_ms,
            certify,
        })
    }

    /// Serializes the request as one JSON line (no trailing newline).
    /// Optional fields at their defaults are omitted, so v1-shaped requests
    /// stay byte-identical to protocol v1.
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"id\": ");
        write_json_string(&mut out, &self.id);
        out.push_str(", \"matrix\": [");
        for (i, row) in self.matrix.iter_rows().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, &row.to_string());
        }
        out.push(']');
        if let Some(b) = self.budget_ms {
            let _ = write!(out, ", \"budget_ms\": {b}");
        }
        if let Some(c) = self.conflicts {
            let _ = write!(out, ", \"conflicts\": {c}");
        }
        if self.priority != 0 {
            let _ = write!(out, ", \"priority\": {}", self.priority);
        }
        if let Some(d) = self.deadline_ms {
            let _ = write!(out, ", \"deadline_ms\": {d}");
        }
        if self.certify {
            out.push_str(", \"certify\": true");
        }
        out.push('}');
        out
    }
}

/// A machine-checkable optimality certificate: the CNF encoding of
/// "a partition of depth `bound` exists" together with a DRAT refutation.
/// Any external DRAT checker — or the in-repo `certcheck` crate — can
/// replay the refutation with no knowledge of the solver, proving that the
/// reported depth `bound + 1` cannot be improved.
///
/// Protocol v2 only, and opt-in twice over: the *request* must set
/// `certify` and the client's `hello` must have requested certificate
/// passthrough (mirroring the `timing` flag), so certificates — often tens
/// of kilobytes — never surprise a legacy consumer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Certificate {
    /// The refuted depth: no partition with `bound` rectangles exists.
    pub bound: usize,
    /// DIMACS CNF text of the refuted encoding (the proof's axioms).
    pub cnf: String,
    /// DRAT refutation of `cnf`.
    pub drat: String,
}

impl Certificate {
    fn write_field(&self, out: &mut String) {
        let _ = write!(
            out,
            ", \"certificate\": {{\"bound\": {}, \"cnf\": ",
            self.bound
        );
        write_json_string(out, &self.cnf);
        out.push_str(", \"drat\": ");
        write_json_string(out, &self.drat);
        out.push('}');
    }

    fn from_json(json: &Json) -> Option<Certificate> {
        let c = json.get("certificate")?;
        Some(Certificate {
            bound: c
                .get("bound")
                .and_then(Json::as_f64)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .unwrap_or(0.0) as usize,
            cnf: c.get("cnf").and_then(Json::as_str)?.to_string(),
            drat: c.get("drat").and_then(Json::as_str)?.to_string(),
        })
    }
}

/// Per-job stage timing breakdown: where the job's wall time went.
///
/// Protocol v2 only, and opt-in — a client requests it with the
/// `timing` flag on its `hello` frame. Stage fields are microseconds;
/// `cache_us` includes any single-flight wait behind a duplicate
/// in-flight job, and the stages sum to at most `total_us` (the
/// remainder is scheduling overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// Time queued before a worker picked the job up (µs).
    pub queue_us: u64,
    /// Canonical-form computation time (µs).
    pub canon_us: u64,
    /// Cache admission time including single-flight wait (µs).
    pub cache_us: u64,
    /// Strategy-race wall time (µs).
    pub race_us: u64,
    /// End-to-end latency from submission to completion (µs).
    pub total_us: u64,
}

impl Timing {
    fn write_field(&self, out: &mut String) {
        let _ = write!(
            out,
            ", \"timing\": {{\"queue_us\": {}, \"canon_us\": {}, \"cache_us\": {}, \"race_us\": {}, \"total_us\": {}}}",
            self.queue_us, self.canon_us, self.cache_us, self.race_us, self.total_us
        );
    }

    fn from_json(json: &Json) -> Option<Timing> {
        let t = json.get("timing")?;
        if !matches!(t, Json::Obj(_)) {
            return None;
        }
        let field = |name: &str| {
            t.get(name)
                .and_then(Json::as_f64)
                .filter(|n| *n >= 0.0)
                .unwrap_or(0.0) as u64
        };
        Some(Timing {
            queue_us: field("queue_us"),
            canon_us: field("canon_us"),
            cache_us: field("cache_us"),
            race_us: field("race_us"),
            total_us: field("total_us"),
        })
    }
}

/// One result line of a batch.
///
/// A response is in exactly one of two canonical states: *success*
/// (`ok == true`, `error == None`, result fields populated) or *failure*
/// (`ok == false`, `error == Some`, result fields zeroed except
/// `millis`/`conflicts`, which report work spent before the failure).
/// [`JobResponse::to_json_line_v`] serializes whichever state the `error`
/// field implies, so an incoherent struct round-trips to its canonical
/// form rather than to silent field loss.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// Correlation id of the request.
    pub id: String,
    /// Whether the job solved (`false` → see [`JobResponse::error`]).
    pub ok: bool,
    /// Depth (number of rectangles / AOD shots) of the partition.
    pub depth: usize,
    /// Whether the depth was proved equal to the binary rank.
    pub proved_optimal: bool,
    /// Strategy that produced the result (`cache` for cache hits).
    pub provenance: String,
    /// Whether the canonical-form cache answered the job.
    pub cache_hit: bool,
    /// Wall-clock milliseconds spent on the job (wire precision: 3
    /// decimals; non-finite values serialize as 0).
    pub millis: f64,
    /// SAT conflicts spent on the job (0 for cache hits and heuristics).
    pub conflicts: u64,
    /// The rectangles as `(rows, cols)` index lists.
    pub partition: Vec<(Vec<usize>, Vec<usize>)>,
    /// Error payload when the job failed.
    pub error: Option<JobError>,
    /// Per-job stage breakdown (v2 wire only, and only when the client
    /// opted in; `None` otherwise).
    pub timing: Option<Timing>,
    /// Optimality certificate (v2 wire only, only when the request set
    /// `certify`, the hello opted in, and the depth was proved optimal;
    /// `None` otherwise — in particular on cache hits, which reuse a
    /// result whose proof was already delivered or never requested).
    pub certificate: Option<Certificate>,
}

impl JobResponse {
    /// An error response for a job that could not be parsed or solved.
    pub fn failure(id: String, error: JobError) -> JobResponse {
        JobResponse {
            id,
            ok: false,
            depth: 0,
            proved_optimal: false,
            provenance: String::new(),
            cache_hit: false,
            millis: 0.0,
            conflicts: 0,
            partition: Vec::new(),
            error: Some(error),
            timing: None,
            certificate: None,
        }
    }

    /// The error message, when the response is a failure.
    pub fn error_message(&self) -> Option<&str> {
        self.error.as_ref().map(|e| e.message.as_str())
    }

    /// The error kind, when the response is a failure.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        self.error.as_ref().map(|e| e.kind)
    }

    /// Rebuilds the partition for a matrix of the given shape (used by
    /// round-trip validation in tests and clients).
    pub fn to_partition(&self, nrows: usize, ncols: usize) -> Partition {
        let rects = self
            .partition
            .iter()
            .map(|(rows, cols)| {
                Rectangle::new(
                    BitVec::from_indices(nrows, rows.iter().copied()),
                    BitVec::from_indices(ncols, cols.iter().copied()),
                )
            })
            .collect();
        Partition::from_rectangles(nrows, ncols, rects)
    }

    /// Serializes the response as one protocol-v1 JSON line (no trailing
    /// newline). Shorthand for [`JobResponse::to_json_line_v`] with
    /// [`WireVersion::V1`].
    pub fn to_json_line(&self) -> String {
        self.to_json_line_v(WireVersion::V1)
    }

    /// Serializes the response as one JSON line in the given wire version.
    /// The versions differ only in the error payload: v1 writes the bare
    /// message string, v2 an object `{"kind": ..., "message": ...}`.
    pub fn to_json_line_v(&self, version: WireVersion) -> String {
        let mut out = String::new();
        out.push_str("{\"id\": ");
        write_json_string(&mut out, &self.id);
        // `{:.3}` of a non-finite float is not valid JSON; clamp to 0.
        let millis = if self.millis.is_finite() {
            self.millis
        } else {
            0.0
        };
        // Canonicalize: the error payload decides the state, so a struct
        // with `ok` out of sync round-trips to its coherent form.
        if self.error.is_some() || !self.ok {
            let fallback = JobError::new(ErrorKind::Unknown, "unknown error");
            let err = self.error.as_ref().unwrap_or(&fallback);
            out.push_str(", \"ok\": false, \"error\": ");
            match version {
                WireVersion::V1 => write_json_string(&mut out, &err.message),
                WireVersion::V2 => {
                    let _ = write!(out, "{{\"kind\": \"{}\", \"message\": ", err.kind);
                    write_json_string(&mut out, &err.message);
                    out.push('}');
                }
            }
            let _ = write!(
                out,
                ", \"millis\": {millis:.3}, \"conflicts\": {}",
                self.conflicts
            );
            // `timing` is v2-only: v1 output must stay byte-identical.
            if version == WireVersion::V2 {
                if let Some(t) = &self.timing {
                    t.write_field(&mut out);
                }
            }
            out.push('}');
            return out;
        }
        let _ = write!(
            out,
            ", \"ok\": true, \"depth\": {}, \"proved_optimal\": {}, \"provenance\": ",
            self.depth, self.proved_optimal
        );
        write_json_string(&mut out, &self.provenance);
        let _ = write!(
            out,
            ", \"cache_hit\": {}, \"millis\": {millis:.3}, \"conflicts\": {}, \"partition\": [",
            self.cache_hit, self.conflicts
        );
        for (i, (rows, cols)) in self.partition.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let list = |v: &[usize]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = write!(
                out,
                "{{\"rows\": [{}], \"cols\": [{}]}}",
                list(rows),
                list(cols)
            );
        }
        out.push(']');
        if version == WireVersion::V2 {
            if let Some(t) = &self.timing {
                t.write_field(&mut out);
            }
            if let Some(c) = &self.certificate {
                c.write_field(&mut out);
            }
        }
        out.push('}');
        out
    }

    /// Parses one response line — the inverse of
    /// [`JobResponse::to_json_line_v`] for either wire version (the error
    /// payload's shape identifies the version; a v1 string error parses
    /// with [`ErrorKind::Unknown`]).
    pub fn parse_line(line: &str) -> Result<JobResponse, String> {
        let json = parse_json(line)?;
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or("missing id")?
            .to_string();
        let ok = json.get("ok").and_then(Json::as_bool).ok_or("missing ok")?;
        let millis = json.get("millis").and_then(Json::as_f64).unwrap_or(0.0);
        let conflicts = json
            .get("conflicts")
            .and_then(Json::as_f64)
            .filter(|n| *n >= 0.0)
            .unwrap_or(0.0) as u64;
        if !ok {
            let error = match json.get("error") {
                Some(Json::Str(msg)) => JobError::new(ErrorKind::Unknown, msg.clone()),
                Some(obj @ Json::Obj(_)) => JobError::new(
                    obj.get("kind")
                        .and_then(Json::as_str)
                        .map_or(ErrorKind::Unknown, ErrorKind::from_str_lenient),
                    obj.get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error"),
                ),
                _ => JobError::new(ErrorKind::Unknown, "unknown error"),
            };
            let mut resp = JobResponse::failure(id, error);
            resp.millis = millis;
            resp.conflicts = conflicts;
            resp.timing = Timing::from_json(&json);
            return Ok(resp);
        }
        let index_list = |v: &Json, field: &str| -> Result<Vec<usize>, String> {
            v.get(field)
                .and_then(Json::as_arr)
                .ok_or(format!("missing {field}"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("non-index in {field}"))
                })
                .collect()
        };
        let partition = json
            .get("partition")
            .and_then(Json::as_arr)
            .ok_or("missing partition")?
            .iter()
            .map(|rect| Ok((index_list(rect, "rows")?, index_list(rect, "cols")?)))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(JobResponse {
            id,
            ok,
            depth: json
                .get("depth")
                .and_then(Json::as_f64)
                .ok_or("missing depth")? as usize,
            proved_optimal: json
                .get("proved_optimal")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            provenance: json
                .get("provenance")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            cache_hit: json
                .get("cache_hit")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            millis,
            conflicts,
            partition,
            error: None,
            timing: Timing::from_json(&json),
            certificate: Certificate::from_json(&json),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_array_and_string_matrix() {
        let req = JobRequest::new("layer-17", "101\n010".parse().unwrap()).with_budget_ms(500);
        let parsed = JobRequest::parse_line(&req.to_json_line(), 1).unwrap();
        assert_eq!(parsed, req);

        let semi = JobRequest::parse_line(r#"{"id": "s", "matrix": "101;010"}"#, 1).unwrap();
        assert_eq!(semi.matrix, req.matrix);
    }

    #[test]
    fn request_roundtrip_v2_fields() {
        let req = JobRequest::new("p", "1".parse().unwrap())
            .with_priority(-3)
            .with_deadline_ms(750)
            .with_conflicts(9);
        let line = req.to_json_line();
        assert!(line.contains("\"priority\": -3"), "{line}");
        assert!(line.contains("\"deadline_ms\": 750"), "{line}");
        assert_eq!(JobRequest::parse_line(&line, 1).unwrap(), req);
        // Default priority / deadline stay off the wire (v1 byte-compat).
        let plain = JobRequest::new("p", "1".parse().unwrap()).to_json_line();
        assert!(!plain.contains("priority"), "{plain}");
        assert!(!plain.contains("deadline"), "{plain}");
    }

    #[test]
    fn v1_parsing_ignores_v2_only_fields() {
        // A v1 line with stray (even malformed) v2 fields parses like the
        // legacy parser: unknown extras are ignored, never validated.
        let line = r#"{"id": "x", "matrix": "1", "priority": true, "deadline_ms": 5}"#;
        let req = JobRequest::parse_line_in(line, 1, WireVersion::V1).unwrap();
        assert_eq!(req.priority, 0);
        assert_eq!(req.deadline_ms, None);
        // The same line under v2 rules validates priority and rejects.
        let (_, err) = JobRequest::parse_line_in(line, 1, WireVersion::V2).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn request_rejects_bad_priority() {
        let (_, e) = JobRequest::parse_line(r#"{"id": "p", "matrix": "1", "priority": 1.5}"#, 1)
            .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Parse);
        assert!(e.message.contains("priority"), "{}", e.message);
    }

    #[test]
    fn request_defaults_id_from_line_number() {
        let req = JobRequest::parse_line(r#"{"matrix": ["1"]}"#, 42).unwrap();
        assert_eq!(req.id, "job-42");
    }

    #[test]
    fn request_rejects_non_string_id() {
        // Silently renaming a numeric id would break response correlation.
        let (id, err) = JobRequest::parse_line(r#"{"id": 17, "matrix": ["1"]}"#, 3).unwrap_err();
        assert_eq!(id, "job-3");
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.message.contains("id must be a string"), "{err}");
    }

    #[test]
    fn request_errors_carry_the_id_and_kind() {
        let (id, err) =
            JobRequest::parse_line(r#"{"id": "bad", "matrix": ["102"]}"#, 7).unwrap_err();
        assert_eq!(id, "bad");
        assert_eq!(err.kind, ErrorKind::Matrix);
        assert!(err.message.contains("invalid matrix"), "{err}");
        let (id2, err2) = JobRequest::parse_line("not json", 9).unwrap_err();
        assert_eq!(id2, "job-9");
        assert_eq!(err2.kind, ErrorKind::Parse);
    }

    #[test]
    fn response_roundtrip_both_versions() {
        let resp = JobResponse {
            id: "a".to_string(),
            ok: true,
            depth: 2,
            proved_optimal: true,
            provenance: "sap".to_string(),
            cache_hit: false,
            millis: 1.5,
            conflicts: 42,
            partition: vec![(vec![0], vec![0, 2]), (vec![1], vec![1])],
            error: None,
            timing: None,
            certificate: None,
        };
        for v in [WireVersion::V1, WireVersion::V2] {
            let parsed = JobResponse::parse_line(&resp.to_json_line_v(v)).unwrap();
            assert_eq!(parsed, resp);
        }

        let p = resp.to_partition(2, 3);
        assert_eq!(p.len(), 2);
        assert!(p.validate(&"101\n010".parse().unwrap()).is_ok());
    }

    #[test]
    fn error_response_roundtrip_v1_drops_kind() {
        let resp = JobResponse::failure(
            "x".to_string(),
            JobError::new(ErrorKind::Matrix, "invalid matrix: bad"),
        );
        let parsed = JobResponse::parse_line(&resp.to_json_line()).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.error_message(), Some("invalid matrix: bad"));
        // v1 has no kind on the wire.
        assert_eq!(parsed.error_kind(), Some(ErrorKind::Unknown));
    }

    #[test]
    fn error_response_roundtrip_v2_keeps_kind() {
        let mut resp = JobResponse::failure(
            "x\"with\nescapes".to_string(),
            JobError::new(ErrorKind::Busy, "queue full (depth 4)"),
        );
        resp.millis = 0.25;
        resp.conflicts = 3;
        let line = resp.to_json_line_v(WireVersion::V2);
        assert!(line.contains("\"kind\": \"busy\""), "{line}");
        let parsed = JobResponse::parse_line(&line).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn incoherent_response_serializes_to_canonical_failure() {
        // `ok: false` without an error payload must still serialize as an
        // error line (previously it emitted a full success body).
        let mut resp = JobResponse::failure("x".to_string(), JobError::new(ErrorKind::Io, "boom"));
        resp.error = None;
        let parsed = JobResponse::parse_line(&resp.to_json_line()).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.error_message(), Some("unknown error"));

        // `ok: true` with an error payload canonicalizes to a failure too
        // (previously it wrote the error but kept no ok/error coherence).
        let mut odd = JobResponse::failure("y".to_string(), JobError::new(ErrorKind::Io, "boom"));
        odd.ok = true;
        let parsed = JobResponse::parse_line(&odd.to_json_line()).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.error_message(), Some("boom"));
    }

    #[test]
    fn non_finite_millis_serialize_as_zero() {
        let mut resp = JobResponse::failure("n".to_string(), JobError::new(ErrorKind::Io, "x"));
        resp.millis = f64::NAN;
        let line = resp.to_json_line();
        let parsed = JobResponse::parse_line(&line).unwrap();
        assert_eq!(parsed.millis, 0.0, "{line}");
        resp.millis = f64::INFINITY;
        assert_eq!(
            JobResponse::parse_line(&resp.to_json_line())
                .unwrap()
                .millis,
            0.0
        );
    }

    #[test]
    fn timing_is_v2_only_and_roundtrips() {
        let mut resp = JobResponse {
            id: "t".to_string(),
            ok: true,
            depth: 1,
            proved_optimal: true,
            provenance: "trivial".to_string(),
            cache_hit: false,
            millis: 0.5,
            conflicts: 0,
            partition: vec![(vec![0], vec![0])],
            error: None,
            timing: Some(Timing {
                queue_us: 10,
                canon_us: 20,
                cache_us: 30,
                race_us: 400,
                total_us: 470,
            }),
            certificate: None,
        };
        // v1 output never carries timing: byte-compat with the legacy wire.
        let v1 = resp.to_json_line_v(WireVersion::V1);
        assert!(!v1.contains("timing"), "{v1}");
        let mut stripped = resp.clone();
        stripped.timing = None;
        assert_eq!(v1, stripped.to_json_line_v(WireVersion::V1));
        // v2 round-trips the full breakdown.
        let v2 = resp.to_json_line_v(WireVersion::V2);
        assert!(v2.contains("\"timing\": {\"queue_us\": 10"), "{v2}");
        assert_eq!(JobResponse::parse_line(&v2).unwrap(), resp);
        // Failure responses carry timing on v2 too (a deadline expiry
        // still has a queue-wait story to tell).
        resp.error = Some(JobError::new(ErrorKind::Deadline, "expired"));
        resp.ok = false;
        resp.depth = 0;
        resp.proved_optimal = false;
        resp.provenance = String::new();
        resp.partition = Vec::new();
        let line = resp.to_json_line_v(WireVersion::V2);
        assert!(line.contains("\"timing\""), "{line}");
        assert_eq!(JobResponse::parse_line(&line).unwrap(), resp);
        assert!(!resp.to_json_line_v(WireVersion::V1).contains("timing"));
    }

    #[test]
    fn certify_flag_is_v2_only_and_roundtrips() {
        let req = JobRequest::new("c", "1".parse().unwrap()).with_certify(true);
        let line = req.to_json_line();
        assert!(line.contains("\"certify\": true"), "{line}");
        assert_eq!(JobRequest::parse_line(&line, 1).unwrap(), req);
        // Default stays off the wire (v1 byte-compat).
        let plain = JobRequest::new("c", "1".parse().unwrap()).to_json_line();
        assert!(!plain.contains("certify"), "{plain}");
        // A v1 line ignores the flag like any unknown field; v2 validates.
        let req = JobRequest::parse_line_in(&line, 1, WireVersion::V1).unwrap();
        assert!(!req.certify);
        let bad = r#"{"id": "c", "matrix": "1", "certify": "yes"}"#;
        assert!(JobRequest::parse_line_in(bad, 1, WireVersion::V1).is_ok());
        let (_, err) = JobRequest::parse_line_in(bad, 1, WireVersion::V2).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        assert!(err.message.contains("certify"), "{}", err.message);
    }

    #[test]
    fn certificate_is_v2_only_and_roundtrips() {
        let mut resp = JobResponse {
            id: "c".to_string(),
            ok: true,
            depth: 3,
            proved_optimal: true,
            provenance: "sap".to_string(),
            cache_hit: false,
            millis: 2.0,
            conflicts: 17,
            partition: vec![(vec![0], vec![0])],
            error: None,
            timing: None,
            certificate: Some(Certificate {
                bound: 2,
                cnf: "p cnf 1 2\n1 0\n-1 0\n".to_string(),
                drat: "0\n".to_string(),
            }),
        };
        // v1 output never carries the certificate: byte-compat with the
        // legacy wire.
        let v1 = resp.to_json_line_v(WireVersion::V1);
        assert!(!v1.contains("certificate"), "{v1}");
        let mut stripped = resp.clone();
        stripped.certificate = None;
        assert_eq!(v1, stripped.to_json_line_v(WireVersion::V1));
        // v2 round-trips the full payload, newlines and all.
        let v2 = resp.to_json_line_v(WireVersion::V2);
        assert!(v2.contains("\"certificate\": {\"bound\": 2"), "{v2}");
        assert_eq!(JobResponse::parse_line(&v2).unwrap(), resp);
        // Certificate and timing compose on the same line.
        resp.timing = Some(Timing {
            total_us: 9,
            ..Timing::default()
        });
        let both = resp.to_json_line_v(WireVersion::V2);
        assert!(both.contains("\"timing\""), "{both}");
        assert_eq!(JobResponse::parse_line(&both).unwrap(), resp);
    }

    #[test]
    fn absent_certificate_parses_as_none() {
        let line = r#"{"id": "a", "ok": true, "depth": 0, "provenance": "", "cache_hit": false, "millis": 0.0, "conflicts": 0, "partition": []}"#;
        assert_eq!(JobResponse::parse_line(line).unwrap().certificate, None);
        // A malformed certificate object degrades to None, not an error.
        let odd = r#"{"id": "a", "ok": true, "depth": 0, "provenance": "", "cache_hit": false, "millis": 0.0, "conflicts": 0, "partition": [], "certificate": 7}"#;
        assert_eq!(JobResponse::parse_line(odd).unwrap().certificate, None);
    }

    #[test]
    fn absent_timing_parses_as_none() {
        let line = r#"{"id": "a", "ok": true, "depth": 0, "provenance": "", "cache_hit": false, "millis": 0.0, "conflicts": 0, "partition": []}"#;
        assert_eq!(JobResponse::parse_line(line).unwrap().timing, None);
    }

    #[test]
    fn error_kind_names_roundtrip() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_str_lenient(kind.as_str()), kind);
        }
        assert_eq!(
            ErrorKind::from_str_lenient("from-the-future"),
            ErrorKind::Unknown
        );
    }
}
