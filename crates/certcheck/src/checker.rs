//! The validation engine: forward RUP/RAT checking over a watched-literal
//! propagation core, followed by a backward core-marking pass that emits
//! LRAT-style hints.
//!
//! Everything here is built from the certificate's own text — the clause
//! database, the assignment trail, the watch lists. Nothing is imported
//! from the solver crate, by design.

use std::collections::HashMap;

use crate::{Cnf, DratStep, ProofError};

const TRUE: i8 = 1;
const FALSE: i8 = -1;
const UNSET: i8 = 0;

/// Result of a successful [`check`]: what was verified, and the trimmed
/// hinted proof the backward pass produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Addition steps verified by the forward pass (the trace may be
    /// longer: steps after the first verified empty clause are not needed
    /// and not checked).
    pub steps_checked: usize,
    /// How many of those needed the RAT fallback (zero for traces from the
    /// in-repo solver, which emits RUP-only lemmas).
    pub rat_steps: usize,
    /// Axioms the refutation actually uses (backward-marked core).
    pub core_axioms: usize,
    /// Lemmas the refutation actually uses.
    pub core_lemmas: usize,
    /// LRAT-style hinted proof of the marked core: one `id lits 0 hints 0`
    /// line per core lemma (negative hint ids prefix RAT resolution
    /// partners), ending with the empty clause. A hint-consuming checker
    /// can re-verify this without propagation search.
    pub lrat: String,
}

/// How one addition step was justified by the forward pass.
#[derive(Debug, Clone)]
enum Justification {
    /// Antecedents in propagation order; the final id is the clause that
    /// became falsified. Empty when the lemma's negation is inconsistent
    /// by itself (a tautology) — nothing to replay.
    Rup(Vec<usize>),
    /// RAT on the clause's first literal: for every active clause
    /// containing the negated pivot, the antecedents refuting the
    /// resolvent.
    Rat(Vec<(usize, Vec<usize>)>),
}

impl Justification {
    fn referenced(&self) -> Vec<usize> {
        match self {
            Justification::Rup(h) => h.clone(),
            Justification::Rat(groups) => groups
                .iter()
                .flat_map(|(cid, h)| std::iter::once(*cid).chain(h.iter().copied()))
                .collect(),
        }
    }
}

struct Clause {
    lits: Vec<i64>,
    active: bool,
}

/// The propagation engine: clause arena + two-watched-literal scheme with
/// a persistent root trail (root assignments only ever grow — DRAT
/// checking never backtracks below the root).
struct Checker {
    clauses: Vec<Clause>,
    /// Literal code → ids of clauses watching that literal (stale ids are
    /// dropped lazily).
    watches: Vec<Vec<usize>>,
    /// Variable index → assignment.
    value: Vec<i8>,
    /// Variable index → antecedent clause id (None for assumed literals).
    reason: Vec<Option<usize>>,
    trail: Vec<i64>,
    qhead: usize,
    /// Generation-stamped marks for conflict analysis (avoids reallocating
    /// a visited set per query).
    mark: Vec<u32>,
    generation: u32,
    /// Once the *root* formula is conflicting, this holds the antecedents
    /// deriving that conflict; every later lemma is trivially justified.
    root_conflict: Option<Vec<usize>>,
}

fn vidx(l: i64) -> usize {
    l.unsigned_abs() as usize - 1
}

fn lcode(l: i64) -> usize {
    vidx(l) * 2 + usize::from(l < 0)
}

impl Checker {
    fn new(num_vars: usize) -> Checker {
        Checker {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            value: vec![UNSET; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            qhead: 0,
            mark: vec![0; num_vars],
            generation: 0,
            root_conflict: None,
        }
    }

    /// Grows the variable-indexed arrays to cover `l` (a DRAT lemma may
    /// legally introduce variables the CNF header never declared).
    fn ensure_var(&mut self, l: i64) {
        let need = vidx(l) + 1;
        if need > self.value.len() {
            self.value.resize(need, UNSET);
            self.reason.resize(need, None);
            self.mark.resize(need, 0);
            self.watches.resize(need * 2, Vec::new());
        }
    }

    fn val(&self, l: i64) -> i8 {
        let v = self.value[vidx(l)];
        if l < 0 {
            -v
        } else {
            v
        }
    }

    fn assign(&mut self, l: i64, reason: Option<usize>) {
        debug_assert_eq!(self.val(l), UNSET);
        self.value[vidx(l)] = if l < 0 { FALSE } else { TRUE };
        self.reason[vidx(l)] = reason;
        self.trail.push(l);
    }

    /// Unit propagation to fixpoint; returns the id of a falsified clause
    /// on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fl = -p; // this literal just became false
            let wl = lcode(fl);
            let mut i = 0;
            while i < self.watches[wl].len() {
                let cid = self.watches[wl][i];
                if !self.clauses[cid].active {
                    self.watches[wl].swap_remove(i);
                    continue;
                }
                if self.clauses[cid].lits[0] == fl {
                    self.clauses[cid].lits.swap(0, 1);
                }
                let first = self.clauses[cid].lits[0];
                if self.val(first) == TRUE {
                    i += 1;
                    continue;
                }
                let replacement = (2..self.clauses[cid].lits.len())
                    .find(|&k| self.val(self.clauses[cid].lits[k]) != FALSE);
                match replacement {
                    Some(k) => {
                        self.clauses[cid].lits.swap(1, k);
                        let new_watch = self.clauses[cid].lits[1];
                        self.watches[lcode(new_watch)].push(cid);
                        self.watches[wl].swap_remove(i);
                    }
                    None if self.val(first) == FALSE => return Some(cid),
                    None => {
                        self.assign(first, Some(cid));
                        i += 1;
                    }
                }
            }
        }
        None
    }

    /// Collects the antecedents of a conflict in propagation order: walk
    /// the trail top-down, following reasons of marked variables, then
    /// append the falsified clause itself. Replaying the result clause by
    /// clause re-derives the conflict by unit steps alone — exactly the
    /// hint contract of LRAT.
    fn analyze(&mut self, conflict: usize) -> Vec<usize> {
        self.generation += 1;
        let generation = self.generation;
        for &l in &self.clauses[conflict].lits {
            self.mark[vidx(l)] = generation;
        }
        let mut rev = Vec::new();
        for pos in (0..self.trail.len()).rev() {
            let v = vidx(self.trail[pos]);
            if self.mark[v] != generation {
                continue;
            }
            if let Some(r) = self.reason[v] {
                rev.push(r);
                for &l in &self.clauses[r].lits {
                    self.mark[vidx(l)] = generation;
                }
            }
        }
        rev.reverse();
        rev.push(conflict);
        rev
    }

    /// Antecedents proving the current root/queried assignment of `v` —
    /// used when a lemma's negation contradicts an already-true literal,
    /// so there is no falsified clause to start from. The returned chain
    /// ends with the unit antecedent of `v`, which the hint consumer sees
    /// falsified under the lemma's negated literals.
    fn analyze_var(&mut self, v: usize) -> Vec<usize> {
        self.generation += 1;
        let generation = self.generation;
        self.mark[v] = generation;
        let mut rev = Vec::new();
        for pos in (0..self.trail.len()).rev() {
            let u = vidx(self.trail[pos]);
            if self.mark[u] != generation {
                continue;
            }
            if let Some(r) = self.reason[u] {
                rev.push(r);
                for &l in &self.clauses[r].lits {
                    self.mark[vidx(l)] = generation;
                }
            }
        }
        rev.reverse();
        rev
    }

    /// Pops the trail back to `len`, erasing assignments made above it.
    fn unwind(&mut self, len: usize) {
        while self.trail.len() > len {
            let l = self.trail.pop().expect("trail longer than target");
            self.value[vidx(l)] = UNSET;
            self.reason[vidx(l)] = None;
        }
        self.qhead = len;
    }

    /// RUP test: assume every literal of `lits` false on top of the root
    /// trail and propagate. `Ok(hints)` iff a conflict arises; the trail is
    /// restored either way.
    fn is_rup(&mut self, lits: &[i64]) -> Result<Vec<usize>, ()> {
        let saved = self.trail.len();
        let mut result = Err(());
        'assume: {
            for &l in lits {
                self.ensure_var(l);
                match self.val(l) {
                    // Already true (a root unit, or the lemma is a
                    // tautology and an earlier negation set it): the
                    // negated lemma is inconsistent outright.
                    TRUE => {
                        result = Ok(self.analyze_var(vidx(l)));
                        break 'assume;
                    }
                    FALSE => {} // duplicate literal; nothing to assume
                    _ => self.assign(-l, None),
                }
            }
            if let Some(conflict) = self.propagate() {
                result = Ok(self.analyze(conflict));
            }
        }
        self.unwind(saved);
        result
    }

    /// RAT fallback on the first literal: every active clause containing
    /// the negated pivot must yield a RUP (or tautological) resolvent.
    fn check_rat(&mut self, lits: &[i64]) -> Result<Vec<(usize, Vec<usize>)>, ()> {
        let Some(&pivot) = lits.first() else {
            return Err(()); // the empty clause has no pivot; RUP only
        };
        let mut groups = Vec::new();
        for cid in 0..self.clauses.len() {
            if !self.clauses[cid].active || !self.clauses[cid].lits.contains(&-pivot) {
                continue;
            }
            let mut resolvent = lits.to_vec();
            resolvent.extend(
                self.clauses[cid]
                    .lits
                    .iter()
                    .copied()
                    .filter(|&l| l != -pivot),
            );
            match self.is_rup(&resolvent) {
                Ok(hints) => groups.push((cid, hints)),
                Err(()) => return Err(()),
            }
        }
        Ok(groups)
    }

    /// Installs a clause: picks watches, propagates root units, and records
    /// a root conflict when the clause (or its propagation) closes the
    /// formula. Returns the new clause id.
    fn add_clause(&mut self, lits: Vec<i64>) -> usize {
        // DIMACS and DRAT clauses may legally repeat a literal (`x ∨ x`);
        // store each literal once so watch selection and unit detection
        // treat the clause as the set it denotes.
        let mut lits = dedup_lits(&lits);
        for &l in &lits {
            self.ensure_var(l);
        }
        let cid = self.clauses.len();
        // Bring up to two non-false literals to the watch positions. (A
        // clause satisfied at root may end up watching false literals —
        // harmless: propagation visits re-select watches lazily.)
        let mut front = 0;
        for i in 0..lits.len() {
            if front >= 2 {
                break;
            }
            if self.val(lits[i]) != FALSE {
                lits.swap(front, i);
                front += 1;
            }
        }
        let unit = (front == 1).then(|| lits[0]);
        let falsified = front == 0;
        if lits.len() >= 2 {
            self.watches[lcode(lits[0])].push(cid);
            self.watches[lcode(lits[1])].push(cid);
        }
        self.clauses.push(Clause { lits, active: true });
        if self.root_conflict.is_some() {
            return cid; // the formula is already closed; nothing to track
        }
        if falsified {
            self.root_conflict = Some(self.analyze(cid));
        } else if let Some(l) = unit {
            if self.val(l) == UNSET {
                self.assign(l, Some(cid));
                if let Some(conflict) = self.propagate() {
                    self.root_conflict = Some(self.analyze(conflict));
                }
            }
        }
        cid
    }
}

/// Removes duplicate literals, preserving first-occurrence order (the
/// first literal is the RAT pivot, so order is significant).
fn dedup_lits(lits: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(lits.len());
    for &l in lits {
        if !out.contains(&l) {
            out.push(l);
        }
    }
    out
}

/// Deletion-index key: the clause as a sorted literal *set* — matching is
/// order-insensitive and, like storage, ignores repeated literals.
fn sorted_key(lits: &[i64]) -> Vec<i64> {
    let mut key = lits.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

/// Runs the full forward + backward check of `steps` against `cnf`.
///
/// Forward: each deletion must match a present clause (literal multiset,
/// order-insensitive); each addition must be RUP or RAT at its position.
/// Checking stops at the first verified empty clause — the refutation is
/// complete there, later steps are irrelevant. Backward: the antecedent
/// graph is walked from that empty clause to produce the core counts and
/// the trimmed LRAT output in [`Outcome`].
///
/// # Errors
///
/// The first [`ProofError`] in trace order; a trace with no empty-clause
/// addition fails with [`ProofError::NoEmptyClause`] even when the formula
/// it builds is conflicting (a certificate must *show* the refutation).
pub fn check(cnf: &Cnf, steps: &[DratStep]) -> Result<Outcome, ProofError> {
    let mut ck = Checker::new(cnf.num_vars);
    // Literal-multiset index for strict deletion matching.
    let mut index: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
    for clause in &cnf.clauses {
        let cid = ck.add_clause(clause.clone());
        index.entry(sorted_key(clause)).or_default().push(cid);
    }
    let num_axioms = cnf.clauses.len();
    let mut justifications: Vec<Option<Justification>> = vec![None; num_axioms];
    let mut steps_checked = 0usize;
    let mut rat_steps = 0usize;
    let mut empty_id = None;
    for (idx, step) in steps.iter().enumerate() {
        if step.delete {
            match index.get_mut(&sorted_key(&step.lits)).and_then(Vec::pop) {
                // Deactivation only: a deleted *unit*'s root assignment is
                // kept, as in drat-trim — refutation checking stays sound
                // (stronger formula ⇒ conflicts remain conflicts) and the
                // in-repo solver never deletes units anyway.
                Some(cid) => ck.clauses[cid].active = false,
                None => return Err(ProofError::DeleteMissing { step: idx }),
            }
            continue;
        }
        let justification = if let Some(hints) = ck.root_conflict.clone() {
            // The root formula is already conflicting: anything follows,
            // and the stored antecedents prove it.
            Justification::Rup(hints)
        } else if let Ok(hints) = ck.is_rup(&step.lits) {
            Justification::Rup(hints)
        } else if let Ok(groups) = ck.check_rat(&step.lits) {
            rat_steps += 1;
            Justification::Rat(groups)
        } else {
            return Err(ProofError::NotRedundant { step: idx });
        };
        steps_checked += 1;
        let cid = ck.add_clause(step.lits.clone());
        index.entry(sorted_key(&step.lits)).or_default().push(cid);
        justifications.push(Some(justification));
        debug_assert_eq!(justifications.len(), cid + 1);
        if step.lits.is_empty() {
            empty_id = Some(cid);
            break; // refutation complete; later steps are unreachable
        }
    }
    let Some(empty_id) = empty_id else {
        return Err(ProofError::NoEmptyClause);
    };

    // Backward pass: transitive antecedent closure from the empty clause.
    let mut marked = vec![false; ck.clauses.len()];
    let mut stack = vec![empty_id];
    marked[empty_id] = true;
    while let Some(cid) = stack.pop() {
        if let Some(j) = &justifications[cid] {
            for r in j.referenced() {
                if !marked[r] {
                    marked[r] = true;
                    stack.push(r);
                }
            }
        }
    }
    let core_axioms = marked[..num_axioms].iter().filter(|&&m| m).count();
    let core_lemmas = marked[num_axioms..].iter().filter(|&&m| m).count();

    // Trimmed LRAT: core lemmas only, in derivation order. Note lemma
    // literal order may have been permuted by watch selection; LRAT
    // consumers treat clauses as literal sets, so that is immaterial.
    use std::fmt::Write as _;
    let mut lrat = String::new();
    for (cid, j) in justifications.iter().enumerate().skip(num_axioms) {
        if !marked[cid] {
            continue;
        }
        let j = j.as_ref().expect("every lemma has a justification");
        let _ = write!(lrat, "{}", cid + 1);
        for &l in &ck.clauses[cid].lits {
            let _ = write!(lrat, " {l}");
        }
        let _ = write!(lrat, " 0");
        match j {
            Justification::Rup(hints) => {
                for &h in hints {
                    let _ = write!(lrat, " {}", h + 1);
                }
            }
            Justification::Rat(groups) => {
                for (cid, hints) in groups {
                    let _ = write!(lrat, " -{}", cid + 1);
                    for &h in hints {
                        let _ = write!(lrat, " {}", h + 1);
                    }
                }
            }
        }
        let _ = writeln!(lrat, " 0");
    }

    Ok(Outcome {
        steps_checked,
        rat_steps,
        core_axioms,
        core_lemmas,
        lrat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_certificate, parse_dimacs, parse_drat};

    fn cnf(clauses: &[&[i64]]) -> Cnf {
        let num_vars = clauses
            .iter()
            .flat_map(|c| c.iter())
            .map(|l| l.unsigned_abs() as usize)
            .max()
            .unwrap_or(0);
        Cnf {
            num_vars,
            clauses: clauses.iter().map(|c| c.to_vec()).collect(),
        }
    }

    fn adds(steps: &[&[i64]]) -> Vec<DratStep> {
        steps
            .iter()
            .map(|c| DratStep {
                delete: false,
                lits: c.to_vec(),
            })
            .collect()
    }

    #[test]
    fn direct_contradiction() {
        let out = check(&cnf(&[&[1], &[-1]]), &adds(&[&[]])).unwrap();
        assert_eq!(out.steps_checked, 1);
        assert_eq!(out.core_axioms, 2);
        assert_eq!(out.core_lemmas, 1);
    }

    #[test]
    fn chained_lemmas_and_lrat_hints() {
        let f = cnf(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        let out = check(&f, &adds(&[&[1], &[]])).unwrap();
        assert_eq!(out.steps_checked, 2);
        assert_eq!(out.rat_steps, 0);
        assert_eq!(out.core_lemmas, 2);
        // Hints use 1-based ids; lemma 5 is `1`, lemma 6 the empty clause.
        for line in out.lrat.lines() {
            let ids: Vec<i64> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            assert!(ids[0] >= 5, "only lemmas appear: {line}");
            assert_eq!(ids.iter().filter(|&&x| x == 0).count(), 2);
        }
    }

    #[test]
    fn bogus_lemma_is_not_redundant() {
        let f = cnf(&[&[1, 2]]);
        assert_eq!(
            check(&f, &adds(&[&[-1], &[]])),
            Err(ProofError::NotRedundant { step: 0 })
        );
    }

    #[test]
    fn missing_empty_clause_rejected_even_when_formula_conflicts() {
        // x and ¬x as *axioms*: the formula is closed, but a certificate
        // that never exhibits the empty clause is still not a refutation.
        let f = cnf(&[&[1], &[-1]]);
        assert_eq!(check(&f, &[]), Err(ProofError::NoEmptyClause));
        // With the step present it passes, and trivially so.
        assert!(check(&f, &adds(&[&[]])).is_ok());
    }

    #[test]
    fn deletion_is_strict_and_order_insensitive() {
        let f = cnf(&[&[1], &[-1], &[1, 2]]);
        let steps = vec![
            DratStep {
                delete: true,
                lits: vec![2, 1], // permuted literal order still matches
            },
            DratStep {
                delete: false,
                lits: vec![],
            },
        ];
        assert!(check(&f, &steps).is_ok());

        let missing = vec![DratStep {
            delete: true,
            lits: vec![3],
        }];
        assert_eq!(
            check(&f, &missing),
            Err(ProofError::DeleteMissing { step: 0 })
        );
        // Deleting the same clause twice: second must fail.
        let twice = vec![
            DratStep {
                delete: true,
                lits: vec![1, 2],
            },
            DratStep {
                delete: true,
                lits: vec![1, 2],
            },
        ];
        assert_eq!(
            check(&f, &twice),
            Err(ProofError::DeleteMissing { step: 1 })
        );
    }

    #[test]
    fn deleted_clause_no_longer_supports_lemmas() {
        // Lemma (1,2) is RUP only through (1,-4): assuming ¬1,¬2 makes
        // (1,4) propagate 4 and (1,-4) falsified. Once (1,-4) is deleted
        // the propagation stalls, and the RAT fallback on pivot 1 fails
        // too (resolvent (1,2,3) with (-1,3) is not RUP either).
        let f = cnf(&[&[1, 4], &[-1, 3], &[1, -4]]);
        let lemma = DratStep {
            delete: false,
            lits: vec![1, 2],
        };
        assert_eq!(
            check(&f, std::slice::from_ref(&lemma)),
            Err(ProofError::NoEmptyClause), // lemma accepted, trace incomplete
        );
        let broken = vec![
            DratStep {
                delete: true,
                lits: vec![-4, 1], // permuted: still matches (1,-4)
            },
            lemma,
        ];
        assert_eq!(
            check(&f, &broken),
            Err(ProofError::NotRedundant { step: 1 })
        );
    }

    #[test]
    fn rat_only_lemma_accepted_and_counted() {
        // F forces 2 (from (1,2),(-1,2)) and then contradicts on 3,4 —
        // UNSAT, but UP-inert from ¬1: lemma (1) is *not* RUP (assuming ¬1
        // only derives 2, then every (-2,±3,±4) clause still has two free
        // literals), while RAT on pivot 1 holds: the only clause with -1
        // is (-1,2), and the resolvent (1,2,2) is falsified outright under
        // ¬1,¬2. A checker without the RAT fallback would reject this.
        let f = cnf(&[
            &[1, 2],
            &[-1, 2],
            &[-2, 3, 4],
            &[-2, -3, 4],
            &[-2, 3, -4],
            &[-2, -3, -4],
        ]);
        let out = check(&f, &adds(&[&[1], &[3], &[]])).unwrap();
        assert_eq!(out.rat_steps, 1, "lemma (1) needs the RAT fallback");
        assert_eq!(out.steps_checked, 3);
    }

    #[test]
    fn repeated_literals_count_as_one() {
        // (x∨x) is the unit x; (¬x∨y∨y) then forces y; ¬y closes the
        // formula. Per-occurrence counting would miss both propagations.
        let f = cnf(&[&[1, 1], &[-1, 2, 2], &[-2]]);
        let out = check(&f, &adds(&[&[]])).unwrap();
        assert_eq!(out.steps_checked, 1);
        // Deletion matching is also set-based: `d 1` matches (x∨x).
        let f = cnf(&[&[1, 1], &[2]]);
        let steps = vec![DratStep {
            delete: true,
            lits: vec![1],
        }];
        assert_eq!(check(&f, &steps), Err(ProofError::NoEmptyClause));
    }

    #[test]
    fn tautology_lemma_is_harmless() {
        let f = cnf(&[&[1], &[-1]]);
        let steps = adds(&[&[2, -2], &[]]);
        assert!(check(&f, &steps).is_ok());
    }

    #[test]
    fn lemma_may_introduce_new_variables() {
        // Variable 9 appears nowhere in the CNF; a RAT extension may
        // introduce it (definition-style lemma), and arrays must grow.
        let f = cnf(&[&[1], &[-1]]);
        let steps = adds(&[&[9, 1], &[]]);
        assert!(check(&f, &steps).is_ok());
    }

    #[test]
    fn steps_after_empty_clause_are_ignored() {
        let f = cnf(&[&[1], &[-1]]);
        // Garbage after the empty clause must not matter.
        let steps = adds(&[&[], &[-5]]);
        let out = check(&f, &steps).unwrap();
        assert_eq!(out.steps_checked, 1);
    }

    #[test]
    fn php_3_2_hand_built_refutation_checks() {
        // PHP(3,2), vars: pigeon p in hole h = 2p+h+1 (odd = hole 0).
        // Pigeons: (1,2) (3,4) (5,6); hole exclusivity pairs below.
        let cnf_text = "p cnf 6 9\n\
            1 2 0\n3 4 0\n5 6 0\n\
            -1 -3 0\n-1 -5 0\n-3 -5 0\n\
            -2 -4 0\n-2 -6 0\n-4 -6 0\n";
        // Hand-derived RUP chain: (-1,-4), (-1,-6), then (-1) — whose root
        // propagation already closes the formula — then the empty clause.
        let drat = "-1 -4 0\n-1 -6 0\n-1 0\n0\n";
        let out = check_certificate(cnf_text, drat).unwrap();
        assert_eq!(out.steps_checked, 4);
        assert_eq!(out.rat_steps, 0);
        assert!(out.core_axioms > 0);
        assert!(!out.lrat.is_empty());
    }

    #[test]
    fn text_entry_point_parses_and_checks() {
        let cnf_text = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
        let out = check_certificate(cnf_text, "1 0\n0\n").unwrap();
        assert_eq!(out.core_lemmas, 2);
        assert!(check_certificate(cnf_text, "0\n").is_err());
        // LRAT output is parseable as whitespace-separated integers.
        let parsed = parse_drat("1 0\n").unwrap();
        assert_eq!(parsed.len(), 1);
        let reparsed = parse_dimacs(cnf_text).unwrap();
        assert_eq!(reparsed.clauses.len(), 4);
    }

    #[test]
    fn watched_literal_stress_long_chains() {
        // A long implication chain 1→2→…→n with ¬n: lemma ¬1 is RUP and
        // exercises watch relocation across many clauses.
        let n = 200i64;
        let mut clauses: Vec<Vec<i64>> = (1..n).map(|i| vec![-i, i + 1]).collect();
        clauses.push(vec![-n]);
        let f = Cnf {
            num_vars: n as usize,
            clauses,
        };
        let steps = adds(&[&[-1]]);
        let err = check(&f, &steps).unwrap_err();
        // The lemma itself is accepted; only the missing empty clause fails.
        assert_eq!(err, ProofError::NoEmptyClause);
        // Now close it: with unit 1 as well, the chain refutes.
        let mut clauses: Vec<Vec<i64>> = (1..n).map(|i| vec![-i, i + 1]).collect();
        clauses.push(vec![-n]);
        clauses.push(vec![1]);
        let f = Cnf {
            num_vars: n as usize,
            clauses,
        };
        let out = check(&f, &adds(&[&[]])).unwrap();
        assert_eq!(out.core_axioms, f.clauses.len());
    }
}
