//! Parsers for the two halves of a certificate: DIMACS CNF and DRAT text.
//!
//! Deliberately hand-rolled (no parser framework, no regex): the formats
//! are whitespace-separated integers with `0` terminators, and the checker
//! must not inherit any dependency the solver could share a bug with.

use crate::ProofError;

/// A parsed CNF formula: the axioms of the refutation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Highest variable index referenced (DIMACS `p cnf` header value,
    /// raised if a clause mentions a larger variable).
    pub num_vars: usize,
    /// The clauses, literals in DIMACS coding (nonzero, negative = negated).
    pub clauses: Vec<Vec<i64>>,
}

/// One step of a parsed DRAT trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DratStep {
    /// `true` for a `d`-prefixed deletion line.
    pub delete: bool,
    /// The clause literals (empty for the final empty-clause addition).
    pub lits: Vec<i64>,
}

fn parse_err(line: usize, msg: impl Into<String>) -> ProofError {
    ProofError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Parses a DIMACS CNF document.
///
/// Accepts `c` comment lines, requires a `p cnf <vars> <clauses>` header,
/// and reads `0`-terminated clauses that may span lines. The header's
/// clause count is advisory (mismatches are tolerated, as most tools do),
/// but literals must be nonzero integers and a clause left unterminated at
/// end of input is an error.
///
/// # Errors
///
/// [`ProofError::Parse`] with the offending 1-based line number.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ProofError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(parse_err(lineno, "duplicate problem header"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(parse_err(lineno, "expected `p cnf <vars> <clauses>`"));
            }
            let vars: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad variable count in header"))?;
            let _clause_count: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad clause count in header"))?;
            if it.next().is_some() {
                return Err(parse_err(lineno, "trailing tokens after header"));
            }
            num_vars = Some(vars);
            continue;
        }
        if num_vars.is_none() {
            return Err(parse_err(lineno, "clause before `p cnf` header"));
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad literal `{tok}`")))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(v);
            }
        }
    }
    let mut num_vars =
        num_vars.ok_or_else(|| parse_err(last_line.max(1), "missing `p cnf` header"))?;
    if !current.is_empty() {
        return Err(parse_err(last_line, "unterminated clause at end of input"));
    }
    // A clause may legally mention a variable above the header count
    // (some emitters under-declare); track the true maximum.
    for c in &clauses {
        for &l in c {
            num_vars = num_vars.max(l.unsigned_abs() as usize);
        }
    }
    Ok(Cnf { num_vars, clauses })
}

/// Parses a DRAT trace in text format: one step per `0`-terminated clause,
/// `d`-prefixed for deletions, `c` comments tolerated.
///
/// # Errors
///
/// [`ProofError::Parse`] on malformed literals, an empty deletion (`d 0`
/// deletes nothing and signals a corrupt trace), or an unterminated step.
pub fn parse_drat(text: &str) -> Result<Vec<DratStep>, ProofError> {
    let mut steps = Vec::new();
    let mut current: Option<DratStep> = None;
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut rest = line;
        if current.is_none() {
            let delete = if let Some(r) = line
                .strip_prefix("d ")
                .or_else(|| (line == "d").then_some(""))
            {
                rest = r;
                true
            } else {
                false
            };
            current = Some(DratStep {
                delete,
                lits: Vec::new(),
            });
        }
        for tok in rest.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad literal `{tok}`")))?;
            let step = current.as_mut().expect("step in progress");
            if v == 0 {
                let step = current.take().expect("step in progress");
                if step.delete && step.lits.is_empty() {
                    return Err(parse_err(lineno, "deletion of the empty clause"));
                }
                steps.push(step);
            } else {
                step.lits.push(v);
            }
        }
    }
    if current.is_some() {
        return Err(parse_err(
            last_line.max(1),
            "unterminated step at end of input",
        ));
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n3\n0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses, vec![vec![1, -2], vec![3]]);
    }

    #[test]
    fn dimacs_raises_undeclared_vars() {
        let cnf = parse_dimacs("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(cnf.num_vars, 5);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ProofError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf 1 1\nx 0\n"),
            Err(ProofError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n1\n"),
            Err(ProofError::Parse { .. })
        ));
        assert!(matches!(parse_dimacs(""), Err(ProofError::Parse { .. })));
    }

    #[test]
    fn drat_steps_and_deletions() {
        let steps = parse_drat("1 -2 0\nd 1 -2 0\n0\n").unwrap();
        assert_eq!(steps.len(), 3);
        assert!(!steps[0].delete);
        assert!(steps[1].delete);
        assert_eq!(steps[1].lits, vec![1, -2]);
        assert!(steps[2].lits.is_empty());
    }

    #[test]
    fn drat_multiline_clause() {
        let steps = parse_drat("1\n-2\n0\n").unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].lits, vec![1, -2]);
    }

    #[test]
    fn drat_rejects_corruption() {
        assert!(matches!(
            parse_drat("1 0\n2"),
            Err(ProofError::Parse { .. })
        ));
        assert!(matches!(parse_drat("d 0\n"), Err(ProofError::Parse { .. })));
        assert!(matches!(
            parse_drat("1 x 0\n"),
            Err(ProofError::Parse { .. })
        ));
    }
}
