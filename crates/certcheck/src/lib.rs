//! Standalone DRAT certificate validator.
//!
//! This crate answers one question: *does this refutation actually refute
//! this formula?* It consumes the textual certificate pair emitted by the
//! solver pipeline — a DIMACS CNF and a DRAT trace — and replays the trace
//! with its own parser, its own clause database and its own watched-literal
//! propagation engine. **No code or data structure is shared with
//! `rect-addr-sat`**: a bug would have to appear independently in both the
//! solver and this checker to let a bogus optimality claim through.
//!
//! The checker is a forward + backward design in the drat-trim lineage
//! (Wetzler et al., *DRAT-trim: Efficient Checking and Trimming Using
//! Expressive Clausal Proofs*):
//!
//! * the **forward pass** verifies every addition step — RUP first (assume
//!   the negation, unit-propagate, demand a conflict), RAT on the first
//!   literal as a fallback — recording the antecedent clauses of each
//!   derivation, and applies deletions strictly (deleting a clause that is
//!   not present is an error, not a no-op);
//! * the **backward pass** walks the antecedent graph from the empty clause
//!   to mark the *core* — the axioms and lemmas the refutation actually
//!   needs — and emits LRAT-style hinted lines for exactly that core, so a
//!   hint-consuming checker (e.g. `lrat-check`) can re-verify the trimmed
//!   proof without redoing propagation search.
//!
//! Literal convention is DIMACS throughout: nonzero `i64`, negative =
//! negated. See [`check_certificate`] for the one-call entry point.

mod checker;
mod parse;

pub use checker::{check, Outcome};
pub use parse::{parse_dimacs, parse_drat, Cnf, DratStep};

use std::fmt;

/// Why certificate validation failed. Every rejection pinpoints the
/// offending input: mutation-testing the pipeline relies on these being
/// precise, so a corrupted proof is never waved through with a generic
/// error (and never silently accepted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The CNF or DRAT text failed to parse.
    Parse {
        /// 1-based line number of the offending text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// An addition step is neither RUP nor RAT on its first literal —
    /// the lemma does not follow from the formula at that point.
    NotRedundant {
        /// 0-based index of the offending step in the DRAT trace.
        step: usize,
    },
    /// A deletion step references a clause that is not in the formula.
    DeleteMissing {
        /// 0-based index of the offending step in the DRAT trace.
        step: usize,
    },
    /// The trace never derives the empty clause: whatever it proves, it is
    /// not a refutation.
    NoEmptyClause,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            ProofError::NotRedundant { step } => {
                write!(f, "step {step} is neither RUP nor RAT")
            }
            ProofError::DeleteMissing { step } => {
                write!(f, "step {step} deletes a clause that is not present")
            }
            ProofError::NoEmptyClause => {
                write!(f, "trace does not derive the empty clause")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// Validates a textual certificate: parses `cnf_text` as DIMACS and
/// `drat_text` as a DRAT trace, then runs the full forward + backward
/// check. This is the entry point used by the serving pipeline, the CLI
/// `certcheck` subcommand and the CI smoke test.
///
/// # Errors
///
/// Returns the first [`ProofError`] encountered — a parse failure, a
/// non-redundant or ill-formed step, or a trace that never reaches the
/// empty clause.
///
/// # Examples
///
/// ```
/// use rect_addr_certcheck::check_certificate;
///
/// let cnf = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n";
/// let drat = "1 0\n0\n";
/// let outcome = check_certificate(cnf, drat)?;
/// assert_eq!(outcome.steps_checked, 2);
/// # Ok::<(), rect_addr_certcheck::ProofError>(())
/// ```
pub fn check_certificate(cnf_text: &str, drat_text: &str) -> Result<Outcome, ProofError> {
    let cnf = parse_dimacs(cnf_text)?;
    let steps = parse_drat(drat_text)?;
    check(&cnf, &steps)
}
