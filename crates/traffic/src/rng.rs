//! The crate's own deterministic PRNG.
//!
//! Workload streams must replay bit-for-bit from a seed across platforms
//! and releases, so the generator is pinned here rather than borrowed
//! from a shim: SplitMix64 (Steele, Lea & Flood 2014), the standard
//! 64-bit mixer — one add and three xor-shift-multiply rounds per draw,
//! full period, and good enough statistical quality for traffic shaping
//! (this is not cryptography).

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed` (every seed is valid, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` of 0 returns 0). Multiply-
    /// shift reduction; the modulo bias is far below traffic-shaping
    /// relevance.
    pub fn next_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.next_below(i + 1));
        }
    }

    /// A uniform random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = SplitMix64::new(43);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(1);
        for bound in [1usize, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
        for _ in 0..200 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn permutations_are_permutations() {
        let mut r = SplitMix64::new(9);
        let p = r.permutation(10);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
