//! Seeded, reproducible workload generation for the serving stack.
//!
//! The bench and CI smokes historically hammered the engine with i.i.d.
//! random matrices — traffic that looks nothing like what a production
//! addressing endpoint sees. Real consumers submit **correlated**
//! streams: a handful of hot patterns dominating the mix (calibration
//! sweeps re-running the same masks), on/off bursts (a circuit dispatch
//! followed by silence), layer sequences of one circuit (consecutive
//! layers sharing structure), and the occasional pathological matrix that
//! exhausts the canonizer's budget.
//!
//! This crate generates those shapes as infinite, deterministic
//! iterators: the same seed always produces the same stream, so a bench
//! number or a CI assertion is reproducible down to the job. Everything
//! is self-contained — the only dependencies are the workspace's own
//! `bitmatrix` and `qaddress` crates.
//!
//! # Examples
//!
//! ```
//! use rect_addr_traffic::Workload;
//!
//! let jobs: Vec<_> = Workload::zipf(7, (6, 6), 8, 1.1).take(100).collect();
//! assert_eq!(jobs.len(), 100);
//! // Same seed, same stream.
//! let again: Vec<_> = Workload::zipf(7, (6, 6), 8, 1.1).take(100).collect();
//! assert_eq!(jobs, again);
//! ```

mod adversarial;
mod layers;
mod rng;
mod workload;

pub use adversarial::{paley_matrix, PALEY_PRIMES};
pub use layers::{circuit_layers, nearest_neighbor_round, rotate_layer, ROUND_LAYERS};
pub use rng::SplitMix64;
pub use workload::{JobSpec, Workload};
