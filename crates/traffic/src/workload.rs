//! The workload mixes, exposed as one infinite iterator type.

use bitmatrix::BitMatrix;

use crate::adversarial::{paley_matrix, PALEY_PRIMES};
use crate::layers::{nearest_neighbor_round, rotate_layer, ROUND_LAYERS};
use crate::rng::SplitMix64;

/// One generated job: the pattern to solve plus its traffic shaping.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The addressing pattern.
    pub matrix: BitMatrix,
    /// Gap to wait before submitting this job (µs); 0 = back-to-back.
    /// Open-loop consumers sleep it, closed-loop ones may ignore it.
    pub arrival_gap_us: u64,
    /// Duplicate-class label: two jobs with equal `class` are the same
    /// pattern up to a row/column relabeling, i.e. the same canonical
    /// cache entry.
    pub class: usize,
}

/// An infinite, seeded stream of [`JobSpec`]s — see the crate docs for
/// the mixes. Same constructor arguments, same stream, always.
pub struct Workload {
    name: &'static str,
    rng: SplitMix64,
    kind: Kind,
}

enum Kind {
    /// Hot-class traffic: class `k` drawn with probability ∝ 1/(k+1)^s.
    Zipf {
        pool: Vec<BitMatrix>,
        cumulative: Vec<f64>,
    },
    /// The Zipf mix shaped into on/off bursts.
    Bursty {
        pool: Vec<BitMatrix>,
        cumulative: Vec<f64>,
        burst_len: usize,
        left_in_burst: usize,
        on_gap_us: u64,
        off_gap_us: u64,
    },
    /// Nearest-neighbor circuit layers, round after round.
    Layered {
        rows: usize,
        cols: usize,
        next: usize,
    },
    /// Strongly-regular (Paley) matrices cycling the prime list.
    Adversarial { next: usize },
}

impl Workload {
    /// Zipf-distributed duplicate classes over `classes` random base
    /// patterns of `shape`: class `k` is drawn with probability
    /// proportional to `1/(k+1)^exponent`, and every draw is a fresh
    /// row/column relabeling of its class representative — byte-distinct
    /// jobs that one canonical cache entry answers.
    pub fn zipf(seed: u64, shape: (usize, usize), classes: usize, exponent: f64) -> Workload {
        let mut rng = SplitMix64::new(seed);
        let (pool, cumulative) = class_pool(&mut rng, shape, classes, exponent);
        Workload {
            name: "zipf",
            rng,
            kind: Kind::Zipf { pool, cumulative },
        }
    }

    /// The [`Workload::zipf`] mix shaped into on/off arrivals: bursts of
    /// `burst_len` jobs spaced `on_gap_us` apart, separated by
    /// `off_gap_us` of silence — the dispatch-then-idle cadence of a real
    /// circuit pipeline.
    pub fn bursty(
        seed: u64,
        shape: (usize, usize),
        classes: usize,
        exponent: f64,
        burst_len: usize,
        on_gap_us: u64,
        off_gap_us: u64,
    ) -> Workload {
        let mut rng = SplitMix64::new(seed);
        let (pool, cumulative) = class_pool(&mut rng, shape, classes, exponent);
        let burst_len = burst_len.max(1);
        Workload {
            name: "bursty",
            rng,
            kind: Kind::Bursty {
                pool,
                cumulative,
                burst_len,
                left_in_burst: burst_len,
                on_gap_us,
                off_gap_us,
            },
        }
    }

    /// Circuit-layer traffic: the four nearest-neighbor round masks of a
    /// `shape` grid, round after round. After the first round every layer
    /// repeats an earlier mask — half the time verbatim, half the time
    /// under a random grid relabeling — so a canonical cache should
    /// converge to a 100% hit rate while an exact-bytes one would not.
    pub fn layered(seed: u64, shape: (usize, usize)) -> Workload {
        Workload {
            name: "layered",
            rng: SplitMix64::new(seed),
            kind: Kind::Layered {
                rows: shape.0,
                cols: shape.1,
                next: 0,
            },
        }
    }

    /// Adversarial traffic: Paley strongly-regular matrices (see
    /// [`paley_matrix`]) cycling [`PALEY_PRIMES`], relabeled on every
    /// revisit — each job stalls the canonizer's individualization search
    /// into its budget-exhaustion fallback.
    pub fn adversarial(seed: u64) -> Workload {
        Workload {
            name: "adversarial",
            rng: SplitMix64::new(seed),
            kind: Kind::Adversarial { next: 0 },
        }
    }

    /// The mix's stable name (bench/report key).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Builds the class representatives (random patterns at ~40% density —
/// dense enough for structure, sparse enough to vary) and the cumulative
/// Zipf weights over them.
fn class_pool(
    rng: &mut SplitMix64,
    (rows, cols): (usize, usize),
    classes: usize,
    exponent: f64,
) -> (Vec<BitMatrix>, Vec<f64>) {
    let classes = classes.max(1);
    let pool = (0..classes)
        .map(|_| BitMatrix::from_fn(rows, cols, |_, _| rng.next_f64() < 0.4))
        .collect();
    let mut cumulative = Vec::with_capacity(classes);
    let mut total = 0.0;
    for k in 0..classes {
        total += ((k + 1) as f64).powf(-exponent);
        cumulative.push(total);
    }
    (pool, cumulative)
}

/// Draws a class index from the cumulative weight table.
fn draw_class(rng: &mut SplitMix64, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("pool is never empty");
    let r = rng.next_f64() * total;
    cumulative
        .iter()
        .position(|&c| r < c)
        .unwrap_or(cumulative.len() - 1)
}

impl Iterator for Workload {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        let spec = match &mut self.kind {
            Kind::Zipf { pool, cumulative } => {
                let class = draw_class(&mut self.rng, cumulative);
                JobSpec {
                    matrix: rotate_layer(&pool[class], &mut self.rng),
                    arrival_gap_us: 0,
                    class,
                }
            }
            Kind::Bursty {
                pool,
                cumulative,
                burst_len,
                left_in_burst,
                on_gap_us,
                off_gap_us,
            } => {
                // The first job of each burst pays the off gap; the rest
                // of the burst arrives back-to-back at the on gap.
                let gap = if *left_in_burst == *burst_len {
                    *off_gap_us
                } else {
                    *on_gap_us
                };
                *left_in_burst -= 1;
                if *left_in_burst == 0 {
                    *left_in_burst = *burst_len;
                }
                let class = draw_class(&mut self.rng, cumulative);
                JobSpec {
                    matrix: rotate_layer(&pool[class], &mut self.rng),
                    arrival_gap_us: gap,
                    class,
                }
            }
            Kind::Layered { rows, cols, next } => {
                let k = *next;
                *next += 1;
                let class = k % ROUND_LAYERS;
                let base = nearest_neighbor_round(*rows, *cols, class);
                let matrix = if k >= ROUND_LAYERS && self.rng.next_f64() < 0.5 {
                    rotate_layer(&base, &mut self.rng)
                } else {
                    base
                };
                JobSpec {
                    matrix,
                    arrival_gap_us: 0,
                    class,
                }
            }
            Kind::Adversarial { next } => {
                let k = *next;
                *next += 1;
                let class = k % PALEY_PRIMES.len();
                let base = paley_matrix(PALEY_PRIMES[class]);
                let matrix = if k < PALEY_PRIMES.len() {
                    base
                } else {
                    rotate_layer(&base, &mut self.rng)
                };
                JobSpec {
                    matrix,
                    arrival_gap_us: 0,
                    class,
                }
            }
        };
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut w: Workload, n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|_| w.next().expect("stream is infinite"))
            .collect()
    }

    #[test]
    fn every_mix_replays_from_its_seed() {
        let builders: [fn() -> Workload; 4] = [
            || Workload::zipf(11, (6, 6), 8, 1.1),
            || Workload::bursty(11, (6, 6), 8, 1.1, 4, 50, 5000),
            || Workload::layered(11, (6, 6)),
            || Workload::adversarial(11),
        ];
        for build in builders {
            let a = collect(build(), 64);
            let b = collect(build(), 64);
            assert_eq!(a, b, "{} must replay", build().name());
        }
    }

    #[test]
    fn zipf_front_classes_dominate() {
        let jobs = collect(Workload::zipf(5, (6, 6), 8, 1.2), 600);
        let count = |c: usize| jobs.iter().filter(|j| j.class == c).count();
        assert!(
            count(0) > count(7) * 2,
            "class 0 hit {} times, class 7 {} times",
            count(0),
            count(7)
        );
        // Every draw of a class is the same pattern up to relabeling.
        let ones: Vec<usize> = jobs
            .iter()
            .filter(|j| j.class == 0)
            .map(|j| j.matrix.count_ones())
            .collect();
        assert!(ones.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn bursts_alternate_silence_and_back_to_back() {
        let jobs = collect(Workload::bursty(9, (5, 5), 4, 1.0, 3, 10, 9000), 12);
        let gaps: Vec<u64> = jobs.iter().map(|j| j.arrival_gap_us).collect();
        assert_eq!(
            gaps,
            vec![9000, 10, 10, 9000, 10, 10, 9000, 10, 10, 9000, 10, 10]
        );
    }

    #[test]
    fn layered_rounds_repeat_their_masks() {
        let jobs = collect(Workload::layered(3, (6, 6)), ROUND_LAYERS * 4);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(job.class, k % ROUND_LAYERS);
            assert_eq!(job.matrix.shape(), (6, 6));
            // Relabeled or not, a layer keeps its class's one-count.
            assert_eq!(
                job.matrix.count_ones(),
                jobs[k % ROUND_LAYERS].matrix.count_ones()
            );
        }
    }

    #[test]
    fn adversarial_jobs_are_paley_sized() {
        let jobs = collect(Workload::adversarial(2), 6);
        for (k, job) in jobs.iter().enumerate() {
            let p = PALEY_PRIMES[k % PALEY_PRIMES.len()];
            assert_eq!(job.matrix.shape(), (p, p));
            assert_eq!(job.matrix.count_ones(), p * (p - 1) / 2);
        }
    }
}
