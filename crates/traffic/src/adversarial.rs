//! Adversarial inputs: strongly regular graph adjacency matrices.
//!
//! The canonizer's individualization search degenerates on matrices whose
//! row/column signatures refuse to split — exactly the structure of a
//! strongly regular graph, where every vertex has the same degree and
//! every pair the same number of common neighbors. Paley graphs (vertices
//! `0..p`, edge `i ~ j` iff `i − j` is a nonzero quadratic residue mod a
//! prime `p ≡ 1 (mod 4)`) are the classic worst case: vertex-transitive,
//! self-complementary, and signature-uniform, so the search burns its
//! whole branch budget before falling back to the heuristic labeling.
//! A traffic mix salted with these exercises the budget-exhaustion path
//! that benign workloads never reach.

use bitmatrix::BitMatrix;

/// Primes (`≡ 1 mod 4`) whose Paley graphs the adversarial mix cycles.
/// Small enough to solve, large enough to exhaust a canon budget.
pub const PALEY_PRIMES: [usize; 2] = [13, 17];

/// The `p × p` Paley graph adjacency matrix: `M[i][j] = 1` iff `i − j`
/// is a nonzero quadratic residue mod `p`. Symmetric with zero diagonal
/// for `p ≡ 1 (mod 4)` (where `−1` is a quadratic residue).
pub fn paley_matrix(p: usize) -> BitMatrix {
    let mut residue = vec![false; p];
    for x in 1..p {
        residue[(x * x) % p] = true;
    }
    BitMatrix::from_fn(p, p, |i, j| i != j && residue[(p + i - j) % p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paley_graphs_are_strongly_regular() {
        for p in PALEY_PRIMES {
            let m = paley_matrix(p);
            assert_eq!(m.shape(), (p, p));
            // Symmetric, zero diagonal, uniform degree (p-1)/2.
            for i in 0..p {
                assert!(!m.get(i, i));
                let degree = (0..p).filter(|&j| m.get(i, j)).count();
                assert_eq!(degree, (p - 1) / 2, "p={p} row {i}");
                for j in 0..p {
                    assert_eq!(m.get(i, j), m.get(j, i), "p={p} ({i},{j})");
                }
            }
            // Strong regularity: λ common neighbors for adjacent pairs,
            // μ for non-adjacent ones — the signature uniformity that
            // stalls the canonizer. For Paley: λ=(p-5)/4, μ=(p-1)/4.
            for i in 0..p {
                for j in 0..p {
                    if i == j {
                        continue;
                    }
                    let common = (0..p).filter(|&k| m.get(i, k) && m.get(j, k)).count();
                    let expected = if m.get(i, j) {
                        (p - 5) / 4
                    } else {
                        (p - 1) / 4
                    };
                    assert_eq!(common, expected, "p={p} pair ({i},{j})");
                }
            }
        }
    }
}
