//! Circuit-layer building blocks: the per-round addressing masks of a 2D
//! nearest-neighbor gate schedule.
//!
//! Rosenbaum's 2D-CCNTC construction (and the nearest-neighbor mappings
//! it inspired) executes two-qubit layers by pairing each site with one
//! of its four grid neighbors; each direction's round addresses the same
//! half-grid mask every time it comes up. A full round therefore cycles
//! through four fixed masks — row stripes in both phases (vertical
//! pairings) and checkerboard parities (the 2-coloring the horizontal
//! pairings address) — and a deep circuit repeats them round after round.
//! That repetition is precisely what the serving stack's canonical cache
//! exists to exploit, so these layer sequences are the honest model for
//! cross-layer reuse measurements.

use bitmatrix::BitMatrix;
use qaddress::patterns;

use crate::rng::SplitMix64;

/// Layers per nearest-neighbor round (see [`nearest_neighbor_round`]).
pub const ROUND_LAYERS: usize = 4;

/// The `k`-th layer of a nearest-neighbor gate round on a `rows × cols`
/// grid (`k` taken modulo [`ROUND_LAYERS`]): row stripes phase 0/1, then
/// checkerboard parity 0/1. Consecutive rounds repeat the same masks.
pub fn nearest_neighbor_round(rows: usize, cols: usize, k: usize) -> BitMatrix {
    match k % ROUND_LAYERS {
        0 => patterns::stripes(rows, cols, 2, 0),
        1 => patterns::stripes(rows, cols, 2, 1),
        2 => patterns::checkerboard(rows, cols, 0),
        _ => patterns::checkerboard(rows, cols, 1),
    }
}

/// An `n`-layer vertical-pairing circuit for a protocol-v2 `schedule`
/// frame: rounds alternate the two stripe phases, so layer `k` repeats
/// layer `k − 2` exactly. Even the minimal 3-layer schedule already
/// contains one repeat — the cross-layer duplicate structure the server's
/// schedule path exists to exploit (and what the CI smoke asserts on).
pub fn circuit_layers(rows: usize, cols: usize, n: usize) -> Vec<BitMatrix> {
    (0..n)
        .map(|k| patterns::stripes(rows, cols, 2, k % 2))
        .collect()
}

/// A random row/column relabeling of `layer` — byte-distinct from the
/// original but in the same canonical class, so a canonizer-keyed cache
/// answers it without solving. This is how the generators mint duplicate
/// classes that an exact-bytes cache would miss.
pub fn rotate_layer(layer: &BitMatrix, rng: &mut SplitMix64) -> BitMatrix {
    let (rows, cols) = layer.shape();
    let row_perm = rng.permutation(rows);
    let col_perm = rng.permutation(cols);
    BitMatrix::from_fn(rows, cols, |i, j| layer.get(row_perm[i], col_perm[j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_cycle_four_fixed_masks() {
        for k in 0..ROUND_LAYERS {
            let a = nearest_neighbor_round(6, 6, k);
            assert_eq!(a.shape(), (6, 6));
            assert!(!a.is_zero());
            // Round r and round r+1 address identical masks.
            assert_eq!(a, nearest_neighbor_round(6, 6, k + ROUND_LAYERS));
        }
        // The four masks are pairwise distinct.
        for k in 0..ROUND_LAYERS {
            for l in (k + 1)..ROUND_LAYERS {
                assert_ne!(
                    nearest_neighbor_round(5, 7, k),
                    nearest_neighbor_round(5, 7, l)
                );
            }
        }
    }

    #[test]
    fn circuits_repeat_layers_two_apart() {
        let layers = circuit_layers(6, 6, 5);
        assert_eq!(layers.len(), 5);
        for k in 2..layers.len() {
            assert_eq!(layers[k], layers[k - 2]);
        }
        assert_ne!(layers[0], layers[1]);
    }

    #[test]
    fn rotations_preserve_the_one_count() {
        let mut rng = SplitMix64::new(3);
        let layer = nearest_neighbor_round(6, 6, 2);
        let rotated = rotate_layer(&layer, &mut rng);
        assert_eq!(rotated.shape(), layer.shape());
        assert_eq!(rotated.count_ones(), layer.count_ones());
    }
}
