//! The 2D qubit array model.

use bitmatrix::BitMatrix;

/// A 2D array of qubit sites with optional vacancies (paper Fig. 1a: a
/// neutral-atom tweezer array; §VI: sites without atoms are don't-cares).
///
/// # Examples
///
/// ```
/// use rect_addr_qaddress::QubitArray;
///
/// let array = QubitArray::new(4, 5);
/// assert_eq!(array.num_sites(), 20);
/// assert!(array.site_occupied(0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitArray {
    nrows: usize,
    ncols: usize,
    /// 1 where the site is vacant (no atom).
    vacancies: BitMatrix,
}

impl QubitArray {
    /// A fully occupied `rows × cols` array.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        QubitArray {
            nrows,
            ncols,
            vacancies: BitMatrix::zeros(nrows, ncols),
        }
    }

    /// An array with the given vacancy mask (1 = no atom at the site).
    pub fn with_vacancies(vacancies: BitMatrix) -> Self {
        QubitArray {
            nrows: vacancies.nrows(),
            ncols: vacancies.ncols(),
            vacancies,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Total number of sites (occupied or vacant).
    pub fn num_sites(&self) -> usize {
        self.nrows * self.ncols
    }

    /// Number of occupied sites (atoms).
    pub fn num_qubits(&self) -> usize {
        self.num_sites() - self.vacancies.count_ones()
    }

    /// Whether site `(i, j)` holds an atom.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn site_occupied(&self, i: usize, j: usize) -> bool {
        !self.vacancies.get(i, j)
    }

    /// The vacancy mask (1 = vacant).
    pub fn vacancies(&self) -> &BitMatrix {
        &self.vacancies
    }

    /// Checks that `pattern` only targets occupied sites.
    ///
    /// # Errors
    ///
    /// Returns the first offending site `(i, j)` that is vacant (or an
    /// out-of-shape error as `None` shape marker is impossible — shape
    /// mismatches panic).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` shape differs from the array shape.
    pub fn check_pattern(&self, pattern: &BitMatrix) -> Result<(), (usize, usize)> {
        assert_eq!(
            pattern.shape(),
            self.shape(),
            "pattern shape {:?} does not match array shape {:?}",
            pattern.shape(),
            self.shape()
        );
        match pattern.and(&self.vacancies).ones_positions().first() {
            Some(&cell) => Err(cell),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_counts() {
        let a = QubitArray::new(3, 4);
        assert_eq!(a.shape(), (3, 4));
        assert_eq!(a.num_sites(), 12);
        assert_eq!(a.num_qubits(), 12);
        assert!(a.site_occupied(2, 3));
    }

    #[test]
    fn vacancies_reduce_qubits() {
        let mask: BitMatrix = "010\n000".parse().unwrap();
        let a = QubitArray::with_vacancies(mask);
        assert_eq!(a.num_qubits(), 5);
        assert!(!a.site_occupied(0, 1));
        assert!(a.site_occupied(0, 0));
    }

    #[test]
    fn check_pattern_accepts_occupied_targets() {
        let a = QubitArray::new(2, 2);
        let p: BitMatrix = "10\n01".parse().unwrap();
        assert_eq!(a.check_pattern(&p), Ok(()));
    }

    #[test]
    fn check_pattern_rejects_vacant_target() {
        let mask: BitMatrix = "01\n00".parse().unwrap();
        let a = QubitArray::with_vacancies(mask);
        let p: BitMatrix = "01\n00".parse().unwrap();
        assert_eq!(a.check_pattern(&p), Err((0, 1)));
    }

    #[test]
    #[should_panic(expected = "does not match array shape")]
    fn check_pattern_shape_mismatch_panics() {
        let _ = QubitArray::new(2, 2).check_pattern(&BitMatrix::zeros(3, 3));
    }
}
