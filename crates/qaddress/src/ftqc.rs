//! Fault-tolerant quantum computing: the two-level tensor structure
//! (paper §V, Fig. 5a).
//!
//! A logical circuit layer asks for an operation `U` on a 2D pattern `M̂` of
//! surface-code patches; inside each patch, `U` corresponds to a 2D pattern
//! `M` of physical gates on the patch's data qubits. The full physical
//! pattern is `M̂ ⊗ M`, and a rectangle partition can be obtained as the
//! tensor product of per-level partitions — optimal whenever the patch
//! pattern is all-ones (transversal gates), since then
//! `φ(M) = r_B(M) = 1` closes the Eq. 5 sandwich.

use bitmatrix::BitMatrix;
use ebmf::{row_packing, sap, tensor_partition, PackingConfig, Partition, SapConfig};

use crate::{AddressingSchedule, Pulse};

/// A surface-code patch: a `d × d` grid of data qubits (check qubits are
/// not modelled — the paper's Fig. 5a likewise shows data qubits only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurfaceCodePatch {
    /// Code distance (grid side).
    pub distance: usize,
}

impl SurfaceCodePatch {
    /// Creates a patch of the given code distance.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0`.
    pub fn new(distance: usize) -> Self {
        assert!(distance > 0, "code distance must be positive");
        SurfaceCodePatch { distance }
    }

    /// The physical pattern of a transversal single-qubit operation: every
    /// data qubit in the patch is addressed (all-ones `d × d`).
    pub fn transversal_pattern(&self) -> BitMatrix {
        BitMatrix::ones(self.distance, self.distance)
    }

    /// A partial-patch pattern (e.g. a gauge-fixing or boundary operation):
    /// the first `rows` rows of the patch.
    ///
    /// # Panics
    ///
    /// Panics if `rows > distance`.
    pub fn boundary_pattern(&self, rows: usize) -> BitMatrix {
        assert!(rows <= self.distance, "boundary exceeds patch");
        BitMatrix::from_fn(self.distance, self.distance, |i, _| i < rows)
    }
}

/// Parses a logical-level operation grid like the paper's Fig. 5a
/// (`U` = apply the operation, `I`/`.` = identity).
///
/// # Errors
///
/// Returns the offending character if it is not `U`, `I`, `.` or
/// whitespace, or a row-length mismatch message.
pub fn parse_logical_pattern(text: &str) -> Result<BitMatrix, String> {
    let mut rows: Vec<Vec<bool>> = Vec::new();
    for line in text.lines() {
        let mut row = Vec::new();
        for c in line.chars() {
            match c {
                'U' | 'u' | '1' => row.push(true),
                'I' | 'i' | '.' | '0' => row.push(false),
                c if c.is_whitespace() => {}
                c => return Err(format!("unexpected character {c:?} in logical pattern")),
            }
        }
        if !row.is_empty() {
            rows.push(row);
        }
    }
    let ncols = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != ncols) {
        return Err("uneven rows in logical pattern".to_string());
    }
    Ok(BitMatrix::from_fn(rows.len(), ncols, |i, j| rows[i][j]))
}

/// Result of the two-level compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelSchedule {
    /// Partition of the logical pattern `M̂`.
    pub logical_partition: Partition,
    /// Partition of the physical patch pattern `M`.
    pub physical_partition: Partition,
    /// The composed partition of `M̂ ⊗ M`.
    pub composed: Partition,
    /// The executable schedule (one shot per composed rectangle).
    pub schedule: AddressingSchedule,
}

/// Compiles a logical pattern over patches into a physical schedule via the
/// tensor product of per-level partitions (paper §V): solve the small
/// levels, multiply the solutions.
///
/// `exact` solves both levels to optimality with SAP (use for paper-sized
/// patterns); otherwise row packing with 100 trials is used per level.
pub fn two_level_schedule(
    logical: &BitMatrix,
    patch: &BitMatrix,
    pulse: Pulse,
    exact: bool,
) -> TwoLevelSchedule {
    let solve = |m: &BitMatrix| -> Partition {
        if exact {
            sap(m, &SapConfig::default()).partition
        } else {
            row_packing(m, &PackingConfig::with_trials(100))
        }
    };
    let logical_partition = solve(logical);
    let physical_partition = solve(patch);
    let composed = tensor_partition(&logical_partition, &physical_partition);
    let schedule = AddressingSchedule::from_partition(&composed, pulse);
    TwoLevelSchedule {
        logical_partition,
        physical_partition,
        composed,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QubitArray;

    /// The logical grid of paper Fig. 5a.
    const FIG5A: &str = "UIUUII\nIUIIUU\nUIUIUI\nIUIUIU\nUUUIII\nIIIUUU";

    #[test]
    fn parse_fig5a() {
        let m = parse_logical_pattern(FIG5A).unwrap();
        assert_eq!(m.shape(), (6, 6));
        // Fig. 5a's logical pattern is exactly the Fig. 1b matrix.
        let fig1b: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        assert_eq!(m, fig1b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_logical_pattern("UX").is_err());
        assert!(parse_logical_pattern("UU\nU").is_err());
    }

    #[test]
    fn transversal_patch_keeps_logical_depth() {
        // All-ones patch: r_B(patch) = 1, so the composed depth equals the
        // logical depth — and is optimal (paper §V).
        let logical = parse_logical_pattern(FIG5A).unwrap();
        let patch = SurfaceCodePatch::new(3).transversal_pattern();
        let out = two_level_schedule(&logical, &patch, Pulse::X, true);
        assert_eq!(out.physical_partition.len(), 1);
        assert_eq!(out.composed.len(), out.logical_partition.len());
        assert_eq!(out.schedule.depth(), 5);

        // The composed partition is a valid EBMF of the tensor pattern.
        let full = logical.kron(&patch);
        assert!(out.composed.validate(&full).is_ok());
        let array = QubitArray::new(full.nrows(), full.ncols());
        assert_eq!(out.schedule.verify(&array, &full), Ok(()));
    }

    #[test]
    fn boundary_patch_multiplies_depths() {
        let logical: BitMatrix = "10\n01".parse().unwrap();
        let patch = SurfaceCodePatch::new(3).boundary_pattern(2);
        let out = two_level_schedule(&logical, &patch, Pulse::Rz(0.25), true);
        assert_eq!(out.logical_partition.len(), 2);
        assert_eq!(
            out.physical_partition.len(),
            1,
            "a row band is one rectangle"
        );
        assert_eq!(out.composed.len(), 2);
        assert!(out.composed.validate(&logical.kron(&patch)).is_ok());
    }

    #[test]
    fn heuristic_mode_also_valid() {
        let logical = parse_logical_pattern(FIG5A).unwrap();
        let patch = SurfaceCodePatch::new(2).transversal_pattern();
        let out = two_level_schedule(&logical, &patch, Pulse::H, false);
        assert!(out.composed.validate(&logical.kron(&patch)).is_ok());
        assert!(out.schedule.depth() <= 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_rejected() {
        SurfaceCodePatch::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds patch")]
    fn oversized_boundary_rejected() {
        SurfaceCodePatch::new(3).boundary_pattern(4);
    }
}
