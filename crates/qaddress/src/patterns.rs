//! A library of realistic addressing patterns.
//!
//! The paper's introduction motivates rectangular addressing with the
//! workloads of current atom-array experiments (Bluvstein et al.): global
//! single-qubit layers, sublattice (checkerboard) operations, stripe
//! patterns for staggered readout, and block-structured logical layouts.
//! These generators provide named instances of those workloads for
//! examples, tests and benchmarks.

use bitmatrix::BitMatrix;

/// All qubits — one shot, the best case for rectangular addressing.
pub fn full(rows: usize, cols: usize) -> BitMatrix {
    BitMatrix::ones(rows, cols)
}

/// The checkerboard sublattice (`(i+j) % 2 == parity`) used for
/// alternating-sublattice gates. Despite looking scattered, its binary
/// rank is only 2: (even rows × even cols) ⊔ (odd rows × odd cols).
pub fn checkerboard(rows: usize, cols: usize, parity: usize) -> BitMatrix {
    BitMatrix::from_fn(rows, cols, |i, j| (i + j) % 2 == parity % 2)
}

/// Horizontal stripes of the given period: rows `i` with
/// `i % period == phase` are fully addressed. One rectangle no matter the
/// size — rectangular addressing's ideal workload.
///
/// # Panics
///
/// Panics if `period == 0`.
pub fn stripes(rows: usize, cols: usize, period: usize, phase: usize) -> BitMatrix {
    assert!(period > 0, "period must be positive");
    BitMatrix::from_fn(rows, cols, |i, _| i % period == phase % period)
}

/// The boundary frame of the array (readout / edge-qubit operations).
pub fn border(rows: usize, cols: usize) -> BitMatrix {
    BitMatrix::from_fn(rows, cols, |i, j| {
        i == 0 || j == 0 || i + 1 == rows || j + 1 == cols
    })
}

/// Block-diagonal pattern: `blocks` square blocks of side `side` along the
/// diagonal (independent logical patches receiving the same operation).
pub fn block_diagonal(blocks: usize, side: usize) -> BitMatrix {
    let n = blocks * side;
    BitMatrix::from_fn(n, n, |i, j| i / side == j / side)
}

/// A centred rectangular window (zone-addressing a storage region).
///
/// # Panics
///
/// Panics if the window exceeds the grid.
pub fn window(rows: usize, cols: usize, win_rows: usize, win_cols: usize) -> BitMatrix {
    assert!(win_rows <= rows && win_cols <= cols, "window exceeds grid");
    let r0 = (rows - win_rows) / 2;
    let c0 = (cols - win_cols) / 2;
    BitMatrix::from_fn(rows, cols, |i, j| {
        (r0..r0 + win_rows).contains(&i) && (c0..c0 + win_cols).contains(&j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebmf::{binary_rank, row_packing, trivial_partition, PackingConfig};

    #[test]
    fn full_is_one_rectangle() {
        assert_eq!(binary_rank(&full(6, 8)), 1);
    }

    #[test]
    fn stripes_are_one_rectangle() {
        let m = stripes(9, 7, 3, 1);
        assert_eq!(
            binary_rank(&m),
            1,
            "identical rows merge into one rectangle"
        );
        assert_eq!(m.row(1).count_ones(), 7);
        assert_eq!(m.row(0).count_ones(), 0);
    }

    #[test]
    fn checkerboard_is_two_rectangles() {
        // (even rows × even cols) ⊔ (odd rows × odd cols): rectangular
        // addressing handles sublattices in two shots regardless of size.
        let m = checkerboard(5, 5, 0);
        assert_eq!(binary_rank(&m), 2);
        let wide = checkerboard(3, 7, 1);
        assert_eq!(binary_rank(&wide), 2);
    }

    #[test]
    fn border_is_two_rectangles() {
        // {top, bottom} × all columns ⊔ middle rows × {left, right}.
        let m = border(8, 8);
        assert_eq!(binary_rank(&m), 2, "a frame needs only two shots");
    }

    #[test]
    fn block_diagonal_is_blocks_rectangles() {
        let m = block_diagonal(3, 2);
        assert_eq!(m.shape(), (6, 6));
        assert_eq!(binary_rank(&m), 3);
        // Even the trivial heuristic gets this (distinct rows = 3).
        assert_eq!(trivial_partition(&m).len(), 3);
    }

    #[test]
    fn window_is_one_rectangle() {
        let m = window(10, 10, 4, 6);
        assert_eq!(m.count_ones(), 24);
        assert_eq!(row_packing(&m, &PackingConfig::with_trials(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "window exceeds grid")]
    fn oversized_window_rejected() {
        window(4, 4, 5, 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        stripes(4, 4, 0, 0);
    }
}
