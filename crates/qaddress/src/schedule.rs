//! Compiling addressing patterns into AOD shot schedules.

use std::fmt;
use std::time::Duration;

use bitmatrix::BitMatrix;
use ebmf::{
    complete_ebmf, row_packing, sap, trivial_partition, PackingConfig, Partition, SapConfig,
};

use crate::{AodConfig, QubitArray};

/// The pulse applied during one shot (the paper's experiments modulate Rz
/// pulses through the AOD; other single-qubit gates fit the same model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pulse {
    /// A Z-rotation by the given angle (radians).
    Rz(f64),
    /// A global X (π around X).
    X,
    /// A Hadamard.
    H,
}

impl fmt::Display for Pulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pulse::Rz(theta) => write!(f, "Rz({theta:.4})"),
            Pulse::X => write!(f, "X"),
            Pulse::H => write!(f, "H"),
        }
    }
}

/// One shot: an AOD configuration plus the pulse it delivers.
#[derive(Debug, Clone, PartialEq)]
pub struct Shot {
    /// The AOD row/column tones.
    pub aod: AodConfig,
    /// The pulse delivered at the crossings.
    pub pulse: Pulse,
}

/// How to turn a pattern into rectangles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// One site per shot (full individual addressing — the depth
    /// worst-case baseline).
    Individual,
    /// One shot per distinct nonzero row (or column, whichever is fewer) —
    /// the trivial heuristic.
    Trivial,
    /// Row packing with the given number of trials (paper Algorithm 2).
    Packing(usize),
    /// Exact minimum depth via SAP (paper Algorithm 1). Exponential in the
    /// worst case; intended for small patterns.
    Exact,
}

/// A sequence of shots addressing a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressingSchedule {
    shots: Vec<Shot>,
    shape: (usize, usize),
}

/// Errors from schedule compilation or verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The pattern targets a vacant site.
    TargetsVacancy {
        /// The vacant site targeted.
        site: (usize, usize),
    },
    /// A shot illuminates a qubit outside the pattern.
    AddressesNonTarget {
        /// Index of the offending shot.
        shot: usize,
        /// The wrongly illuminated site.
        site: (usize, usize),
    },
    /// A target qubit is hit by two shots (would double-apply the pulse).
    DoubleAddressed {
        /// The doubly addressed site.
        site: (usize, usize),
    },
    /// A target qubit is never addressed.
    Missed {
        /// The missed site.
        site: (usize, usize),
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TargetsVacancy { site } => {
                write!(f, "pattern targets vacant site {site:?}")
            }
            ScheduleError::AddressesNonTarget { shot, site } => {
                write!(f, "shot {shot} addresses non-target qubit at {site:?}")
            }
            ScheduleError::DoubleAddressed { site } => {
                write!(f, "target {site:?} addressed more than once")
            }
            ScheduleError::Missed { site } => write!(f, "target {site:?} never addressed"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl AddressingSchedule {
    /// Builds a schedule from a partition, applying `pulse` in every shot.
    pub fn from_partition(p: &Partition, pulse: Pulse) -> Self {
        AddressingSchedule {
            shape: p.shape(),
            shots: p
                .iter()
                .map(|r| Shot {
                    aod: AodConfig::from_rectangle(r),
                    pulse,
                })
                .collect(),
        }
    }

    /// The shots in execution order.
    pub fn shots(&self) -> &[Shot] {
        &self.shots
    }

    /// The number of shots — the schedule *depth* (the quantity the paper
    /// minimizes).
    pub fn depth(&self) -> usize {
        self.shots.len()
    }

    /// Grid shape the schedule addresses.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Total control bits across all shots (`depth · (m + n)`, paper §I).
    pub fn total_control_bits(&self) -> usize {
        self.shots.iter().map(|s| s.aod.control_bits()).sum()
    }

    /// Estimated duration given a fixed per-shot time (reconfiguration +
    /// pulse). A simple linear model: real systems are dominated by the
    /// per-shot AOD reconfiguration latency.
    pub fn estimated_duration(&self, per_shot: Duration) -> Duration {
        per_shot * self.depth() as u32
    }

    /// Checks the schedule against an array and a target pattern: every
    /// target qubit addressed exactly once, no other **qubit** ever
    /// addressed (vacant sites may be illuminated freely — there is no atom
    /// to disturb).
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] found.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn verify(&self, array: &QubitArray, pattern: &BitMatrix) -> Result<(), ScheduleError> {
        assert_eq!(
            pattern.shape(),
            array.shape(),
            "pattern/array shape mismatch"
        );
        assert_eq!(self.shape, array.shape(), "schedule/array shape mismatch");
        if let Err(site) = array.check_pattern(pattern) {
            return Err(ScheduleError::TargetsVacancy { site });
        }
        let mut hit = BitMatrix::zeros(pattern.nrows(), pattern.ncols());
        for (idx, shot) in self.shots.iter().enumerate() {
            for (i, j) in shot.aod.rectangle().cells() {
                if !array.site_occupied(i, j) {
                    continue; // illuminating a vacancy is harmless
                }
                if !pattern.get(i, j) {
                    return Err(ScheduleError::AddressesNonTarget {
                        shot: idx,
                        site: (i, j),
                    });
                }
                if hit.get(i, j) {
                    return Err(ScheduleError::DoubleAddressed { site: (i, j) });
                }
                hit.set(i, j, true);
            }
        }
        for (i, j) in pattern.ones_positions() {
            if !hit.get(i, j) {
                return Err(ScheduleError::Missed { site: (i, j) });
            }
        }
        Ok(())
    }
}

/// The bridge from a compiled [`AddressingSchedule`] to the serving
/// stack's wire layers: each shot's illuminated-site mask, in execution
/// order. Every mask is a rank-≤1 rectangle over the schedule's array
/// shape, so the list is exactly the ordered layer sequence a protocol-v2
/// `schedule` frame carries — submit it and the per-layer responses come
/// back one per shot (each trivially depth 1, but sharing the server's
/// canonical cache and warm sessions with every other layer). Their union
/// reconstructs the addressed pattern.
pub fn schedule_to_jobs(schedule: &AddressingSchedule) -> Vec<BitMatrix> {
    schedule
        .shots()
        .iter()
        .map(|shot| shot.aod.site_mask())
        .collect()
}

/// Compiles a pattern on an array into an addressing schedule.
///
/// Vacant sites of the array become don't-cares: rectangles may sweep over
/// them (paper §VI), which the `Packing`/`Exact` strategies exploit.
///
/// # Errors
///
/// Returns [`ScheduleError::TargetsVacancy`] if the pattern asks to address
/// a site with no atom.
///
/// # Panics
///
/// Panics if `pattern` shape differs from the array shape.
pub fn compile(
    array: &QubitArray,
    pattern: &BitMatrix,
    strategy: Strategy,
    pulse: Pulse,
) -> Result<AddressingSchedule, ScheduleError> {
    if let Err(site) = array.check_pattern(pattern) {
        return Err(ScheduleError::TargetsVacancy { site });
    }
    let has_vacancies = !array.vacancies().is_zero();
    let partition = match strategy {
        Strategy::Individual => {
            let mut p = Partition::empty(pattern.nrows(), pattern.ncols());
            for (i, j) in pattern.ones_positions() {
                p.push(ebmf::Rectangle::singleton(
                    pattern.nrows(),
                    pattern.ncols(),
                    i,
                    j,
                ));
            }
            p
        }
        Strategy::Trivial => trivial_partition(pattern),
        Strategy::Packing(trials) => {
            if has_vacancies {
                ebmf::row_packing_with_dont_cares(pattern, array.vacancies(), trials, 0)
            } else {
                row_packing(pattern, &PackingConfig::with_trials(trials))
            }
        }
        Strategy::Exact => {
            if has_vacancies {
                complete_ebmf(pattern, array.vacancies()).partition
            } else {
                sap(pattern, &SapConfig::default()).partition
            }
        }
    };
    let schedule = AddressingSchedule::from_partition(&partition, pulse);
    debug_assert_eq!(schedule.verify(array, pattern), Ok(()));
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    #[test]
    fn individual_depth_equals_ones() {
        let m = fig1b();
        let array = QubitArray::new(6, 6);
        let s = compile(&array, &m, Strategy::Individual, Pulse::Rz(0.5)).unwrap();
        assert_eq!(s.depth(), m.count_ones());
        assert_eq!(s.verify(&array, &m), Ok(()));
    }

    #[test]
    fn packing_beats_individual() {
        let m = fig1b();
        let array = QubitArray::new(6, 6);
        let ind = compile(&array, &m, Strategy::Individual, Pulse::X).unwrap();
        let packed = compile(&array, &m, Strategy::Packing(50), Pulse::X).unwrap();
        assert!(packed.depth() < ind.depth());
        assert_eq!(packed.verify(&array, &m), Ok(()));
    }

    #[test]
    fn exact_reaches_five_on_fig1b() {
        let m = fig1b();
        let array = QubitArray::new(6, 6);
        let s = compile(&array, &m, Strategy::Exact, Pulse::Rz(1.0)).unwrap();
        assert_eq!(s.depth(), 5);
        assert_eq!(s.verify(&array, &m), Ok(()));
    }

    #[test]
    fn vacancies_allow_shallower_schedules() {
        // I_3 pattern with all off-diagonal sites vacant: one shot suffices.
        let pattern = BitMatrix::identity(3);
        let vac = BitMatrix::from_fn(3, 3, |i, j| i != j);
        let array = QubitArray::with_vacancies(vac);
        let s = compile(&array, &pattern, Strategy::Exact, Pulse::H).unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.verify(&array, &pattern), Ok(()));

        // Without vacancies, the same pattern needs 3 shots.
        let full = QubitArray::new(3, 3);
        let s3 = compile(&full, &pattern, Strategy::Exact, Pulse::H).unwrap();
        assert_eq!(s3.depth(), 3);
    }

    #[test]
    fn targeting_vacancy_is_an_error() {
        let vac: BitMatrix = "10\n00".parse().unwrap();
        let array = QubitArray::with_vacancies(vac);
        let pattern: BitMatrix = "11\n00".parse().unwrap();
        assert_eq!(
            compile(&array, &pattern, Strategy::Trivial, Pulse::X),
            Err(ScheduleError::TargetsVacancy { site: (0, 0) })
        );
    }

    #[test]
    fn verify_catches_overlapping_shots() {
        let m: BitMatrix = "11\n00".parse().unwrap();
        let array = QubitArray::new(2, 2);
        let p = Partition::from_rectangles(
            2,
            2,
            vec![
                ebmf::Rectangle::from_cells(2, 2, [(0, 0), (0, 1)]),
                ebmf::Rectangle::singleton(2, 2, 0, 1),
            ],
        );
        let s = AddressingSchedule::from_partition(&p, Pulse::X);
        assert_eq!(
            s.verify(&array, &m),
            Err(ScheduleError::DoubleAddressed { site: (0, 1) })
        );
    }

    #[test]
    fn verify_catches_missed_and_stray_targets() {
        let m: BitMatrix = "11".parse().unwrap();
        let array = QubitArray::new(1, 2);
        let missing = AddressingSchedule::from_partition(
            &Partition::from_rectangles(1, 2, vec![ebmf::Rectangle::singleton(1, 2, 0, 0)]),
            Pulse::X,
        );
        assert_eq!(
            missing.verify(&array, &m),
            Err(ScheduleError::Missed { site: (0, 1) })
        );

        let zero: BitMatrix = "10".parse().unwrap();
        let stray = AddressingSchedule::from_partition(
            &Partition::from_rectangles(
                1,
                2,
                vec![ebmf::Rectangle::from_cells(1, 2, [(0, 0), (0, 1)])],
            ),
            Pulse::X,
        );
        assert_eq!(
            stray.verify(&array, &zero),
            Err(ScheduleError::AddressesNonTarget {
                shot: 0,
                site: (0, 1)
            })
        );
    }

    #[test]
    fn control_bits_scale_with_depth() {
        let m = fig1b();
        let array = QubitArray::new(6, 6);
        let s = compile(&array, &m, Strategy::Exact, Pulse::X).unwrap();
        assert_eq!(s.total_control_bits(), s.depth() * 12);
        assert_eq!(
            s.estimated_duration(Duration::from_micros(10)),
            Duration::from_micros(10 * s.depth() as u64)
        );
    }

    #[test]
    fn schedule_to_jobs_masks_partition_the_pattern() {
        let m = fig1b();
        let array = QubitArray::new(6, 6);
        let s = compile(&array, &m, Strategy::Exact, Pulse::X).unwrap();
        let layers = schedule_to_jobs(&s);
        assert_eq!(layers.len(), s.depth());
        let mut union = BitMatrix::zeros(6, 6);
        for layer in &layers {
            assert_eq!(layer.shape(), s.shape());
            // Shots never overlap on a vacancy-free array, so the masks
            // partition the pattern: disjoint, union = pattern.
            for (i, j) in layer.ones_positions() {
                assert!(!union.get(i, j), "site ({i},{j}) doubly covered");
                union.set(i, j, true);
            }
        }
        assert_eq!(union, m);
    }

    #[test]
    fn zero_pattern_gives_empty_schedule() {
        let array = QubitArray::new(3, 3);
        let m = BitMatrix::zeros(3, 3);
        for strat in [
            Strategy::Individual,
            Strategy::Trivial,
            Strategy::Packing(2),
            Strategy::Exact,
        ] {
            let s = compile(&array, &m, strat, Pulse::X).unwrap();
            assert_eq!(s.depth(), 0, "{strat:?}");
            assert_eq!(s.verify(&array, &m), Ok(()));
        }
    }
}
