//! Qubit-array addressing: the hardware-facing layer of the `rect-addr`
//! workspace.
//!
//! Where `rect-addr-ebmf` solves the combinatorial problem (how few
//! rectangles partition a pattern), this crate speaks the language of the
//! experiment the paper models (Bluvstein et al.'s reconfigurable atom
//! arrays): qubit sites and vacancies ([`QubitArray`]), AOD row/column
//! tones ([`AodConfig`]), executable shot sequences
//! ([`AddressingSchedule`], [`compile`]), the fault-tolerant two-level
//! structure of §V ([`two_level_schedule`]), and the 1D memory-block layout
//! conjecture of Fig. 5b ([`row_optimality_frequency`]).
//!
//! # Examples
//!
//! ```
//! use bitmatrix::BitMatrix;
//! use rect_addr_qaddress::{compile, Pulse, QubitArray, Strategy};
//!
//! let array = QubitArray::new(6, 6);
//! let pattern: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111".parse()?;
//! let schedule = compile(&array, &pattern, Strategy::Exact, Pulse::Rz(0.31)).unwrap();
//! assert_eq!(schedule.depth(), 5); // paper Fig. 1b: five shots, provably minimal
//! # Ok::<(), bitmatrix::ParseMatrixError>(())
//! ```

mod aod;
mod array;
mod blocks;
mod ftqc;
pub mod patterns;
mod schedule;

pub use aod::AodConfig;
pub use array::QubitArray;
pub use blocks::{depth_comparison, row_addressing_optimal, row_optimality_frequency, BlockLayout};
pub use ftqc::{parse_logical_pattern, two_level_schedule, SurfaceCodePatch, TwoLevelSchedule};
pub use schedule::{
    compile, schedule_to_jobs, AddressingSchedule, Pulse, ScheduleError, Shot, Strategy,
};

#[cfg(test)]
mod proptests {
    use super::{compile, Pulse, QubitArray, Strategy as Strat};
    use bitmatrix::BitMatrix;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = BitMatrix> {
        (1usize..8, 1usize..8).prop_flat_map(|(m, n)| {
            proptest::collection::vec(any::<bool>(), m * n)
                .prop_map(move |bits| BitMatrix::from_fn(m, n, |i, j| bits[i * n + j]))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn compiled_schedules_always_verify(m in arb_pattern()) {
            let array = QubitArray::new(m.nrows(), m.ncols());
            for strat in [Strat::Individual, Strat::Trivial, Strat::Packing(3)] {
                let s = compile(&array, &m, strat, Pulse::X).unwrap();
                prop_assert_eq!(s.verify(&array, &m), Ok(()));
            }
        }

        #[test]
        fn packing_depth_between_bounds(m in arb_pattern()) {
            let array = QubitArray::new(m.nrows(), m.ncols());
            let packed = compile(&array, &m, Strat::Packing(3), Pulse::X).unwrap();
            let trivial = compile(&array, &m, Strat::Trivial, Pulse::X).unwrap();
            let individual = compile(&array, &m, Strat::Individual, Pulse::X).unwrap();
            // The real bound chain for vacancy-free arrays: packing only
            // merges trivial's row shots, trivial covers each distinct
            // nonzero row once (never more shots than addressed sites),
            // and individual addresses one site per shot.
            prop_assert!(packed.depth() <= trivial.depth());
            prop_assert!(trivial.depth() <= individual.depth());
            prop_assert_eq!(individual.depth(), m.count_ones());
        }

        #[test]
        fn vacancy_compilation_verifies(m in arb_pattern()) {
            // Make every 0-cell on odd diagonals a vacancy; pattern stays legal.
            let vac = BitMatrix::from_fn(m.nrows(), m.ncols(),
                |i, j| !m.get(i, j) && (i + j) % 2 == 1);
            let array = QubitArray::with_vacancies(vac);
            let s = compile(&array, &m, Strat::Packing(3), Pulse::Rz(0.1)).unwrap();
            prop_assert_eq!(s.verify(&array, &m), Ok(()));
        }
    }
}
