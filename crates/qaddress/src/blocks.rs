//! 1D memory-block layouts for qLDPC-style codes (paper §V, Fig. 5b).
//!
//! Quantum LDPC codes store many logical qubits per block; blocks sit in a
//! 1D line and serve as memory. A round of single-qubit logical operations
//! becomes a binary matrix: one row per block, one column per in-block
//! offset. The paper conjectures that *row-by-row addressing is usually
//! optimal* here, because wide random matrices are almost surely full
//! rank — this module provides the layout model and the experiment that
//! checks the conjecture (regenerating the Fig. 5b discussion and feeding
//! the `fig5b_conjecture` benchmark binary).

use bitmatrix::{random_matrix, BitMatrix};
use ebmf::trivial_partition;
use linalg::real_rank;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 1D arrangement of logical memory blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Number of blocks in the line.
    pub num_blocks: usize,
    /// Logical qubits per block.
    pub block_size: usize,
}

impl BlockLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_blocks: usize, block_size: usize) -> Self {
        assert!(num_blocks > 0 && block_size > 0, "layout must be nonempty");
        BlockLayout {
            num_blocks,
            block_size,
        }
    }

    /// The pattern matrix of a round of operations: entry `(b, q)` is 1 when
    /// logical qubit `q` of block `b` receives the operation.
    ///
    /// # Panics
    ///
    /// Panics if `ops` shape differs from `(num_blocks, block_size)`.
    pub fn pattern(&self, ops: &BitMatrix) -> BitMatrix {
        assert_eq!(
            ops.shape(),
            (self.num_blocks, self.block_size),
            "ops shape mismatch"
        );
        ops.clone()
    }

    /// Depth of plain row-by-row addressing: one shot per distinct nonzero
    /// block pattern.
    pub fn row_by_row_depth(&self, ops: &BitMatrix) -> usize {
        let (dedup, _) = self.pattern(ops).dedup_rows();
        dedup.nrows()
    }
}

/// Whether row-by-row addressing is *provably optimal* for the pattern:
/// true when the distinct-nonzero-row count already matches the real-rank
/// lower bound (Eq. 3), so no rectangle partition can do better.
pub fn row_addressing_optimal(ops: &BitMatrix) -> bool {
    let (dedup, _) = ops.dedup_rows();
    let depth = dedup.nrows();
    real_rank(ops).rank == depth
}

/// Empirical frequency (over `samples` random patterns at `occupancy`) of
/// row-by-row addressing being provably optimal — the paper's §V evidence
/// that wide matrices (10×20, 10×30) are easier than square ones.
pub fn row_optimality_frequency(
    layout: BlockLayout,
    occupancy: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        let ops = random_matrix(layout.num_blocks, layout.block_size, occupancy, &mut rng);
        if row_addressing_optimal(&ops) {
            hits += 1;
        }
    }
    hits as f64 / samples.max(1) as f64
}

/// Depth saved by rectangular addressing relative to row-by-row on a
/// specific pattern: `(row_by_row_depth, trivial_partition_depth)`.
pub fn depth_comparison(layout: BlockLayout, ops: &BitMatrix) -> (usize, usize) {
    (layout.row_by_row_depth(ops), trivial_partition(ops).len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_by_row_counts_distinct_rows() {
        let layout = BlockLayout::new(4, 3);
        let ops: BitMatrix = "101\n101\n000\n011".parse().unwrap();
        assert_eq!(layout.row_by_row_depth(&ops), 2);
    }

    #[test]
    fn full_rank_pattern_is_row_optimal() {
        let ops = BitMatrix::identity(4);
        assert!(row_addressing_optimal(&ops));
    }

    #[test]
    fn rank_deficient_pattern_is_not_proved_row_optimal() {
        // Rows {110, 011, 101} have rank 3 = rows: optimal. Take instead
        // rows {111, 110, 001}: rank 2 < 3 distinct rows → not proved.
        let ops: BitMatrix = "111\n110\n001".parse().unwrap();
        assert!(!row_addressing_optimal(&ops));
    }

    #[test]
    fn wider_blocks_are_more_often_row_optimal() {
        // The paper's observation: at 50% occupancy, 10×30 beats 10×10.
        let narrow = row_optimality_frequency(BlockLayout::new(10, 10), 0.5, 40, 1);
        let wide = row_optimality_frequency(BlockLayout::new(10, 30), 0.5, 40, 1);
        assert!(
            wide >= narrow,
            "wide {wide} should be at least narrow {narrow}"
        );
        assert!(wide > 0.9, "10×30 at 50% is almost surely full rank");
    }

    #[test]
    fn depth_comparison_orders() {
        let layout = BlockLayout::new(3, 4);
        let ops: BitMatrix = "1100\n1100\n0011".parse().unwrap();
        let (row, trivial) = depth_comparison(layout, &ops);
        assert_eq!(row, 2);
        assert!(trivial <= row);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_layout_rejected() {
        BlockLayout::new(0, 5);
    }
}
