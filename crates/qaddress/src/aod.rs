//! The 1D-control (AOD) model.
//!
//! A 2D acousto-optic deflector drives one RF tone per selected row and per
//! selected column; light lands on the *crossings* — a combinatorial
//! rectangle (paper Fig. 1a). Specifying a configuration therefore costs
//! `|rows| + |cols|` control bits instead of `|rows| · |cols|`, the
//! quadratic control reduction the paper's introduction highlights.

use bitmatrix::{BitMatrix, BitVec};
use ebmf::Rectangle;

/// One AOD configuration: the active row and column tones.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitVec;
/// use rect_addr_qaddress::AodConfig;
///
/// let cfg = AodConfig::new(
///     BitVec::from_indices(4, [1, 2]),
///     BitVec::from_indices(4, [0, 3]),
/// );
/// assert_eq!(cfg.num_addressed(), 4);  // 2 × 2 crossings
/// assert_eq!(cfg.control_bits(), 8);   // 4 + 4 one-bit row/col switches
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodConfig {
    row_tones: BitVec,
    col_tones: BitVec,
}

impl AodConfig {
    /// Creates a configuration from row/column tone masks.
    pub fn new(row_tones: BitVec, col_tones: BitVec) -> Self {
        AodConfig {
            row_tones,
            col_tones,
        }
    }

    /// The configuration realizing a rectangle.
    pub fn from_rectangle(r: &Rectangle) -> Self {
        AodConfig {
            row_tones: r.rows().clone(),
            col_tones: r.cols().clone(),
        }
    }

    /// The rectangle of sites addressed by this configuration.
    pub fn rectangle(&self) -> Rectangle {
        Rectangle::new(self.row_tones.clone(), self.col_tones.clone())
    }

    /// Active row tones.
    pub fn row_tones(&self) -> &BitVec {
        &self.row_tones
    }

    /// Active column tones.
    pub fn col_tones(&self) -> &BitVec {
        &self.col_tones
    }

    /// Number of addressed sites (crossings).
    pub fn num_addressed(&self) -> usize {
        self.row_tones.count_ones() * self.col_tones.count_ones()
    }

    /// Control-bit cost of specifying this configuration: one bit per row
    /// plus one per column (`|X| + |Y|`, paper §I).
    pub fn control_bits(&self) -> usize {
        self.row_tones.len() + self.col_tones.len()
    }

    /// Number of active RF tones (`|X'| + |Y'|`).
    pub fn active_tones(&self) -> usize {
        self.row_tones.count_ones() + self.col_tones.count_ones()
    }

    /// The addressed sites as a matrix mask.
    pub fn site_mask(&self) -> BitMatrix {
        BitMatrix::outer(&self.row_tones, &self.col_tones)
    }

    /// Whether site `(i, j)` is illuminated.
    ///
    /// # Panics
    ///
    /// Panics if the indices exceed the tone-mask lengths.
    pub fn addresses(&self, i: usize, j: usize) -> bool {
        self.row_tones.get(i) && self.col_tones.get(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_roundtrip() {
        let r = Rectangle::from_cells(4, 4, [(0, 1), (2, 3)]);
        let cfg = AodConfig::from_rectangle(&r);
        assert_eq!(cfg.rectangle(), r);
        assert_eq!(cfg.num_addressed(), 4);
    }

    #[test]
    fn site_mask_matches_addresses() {
        let cfg = AodConfig::new(
            BitVec::from_indices(3, [0, 2]),
            BitVec::from_indices(3, [1]),
        );
        let mask = cfg.site_mask();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(mask.get(i, j), cfg.addresses(i, j));
            }
        }
    }

    #[test]
    fn control_cost_is_linear_not_quadratic() {
        // A 10×10 block: 100 sites addressed with 20 control bits.
        let cfg = AodConfig::new(BitVec::ones_vec(10), BitVec::ones_vec(10));
        assert_eq!(cfg.num_addressed(), 100);
        assert_eq!(cfg.control_bits(), 20);
        assert_eq!(cfg.active_tones(), 20);
    }

    #[test]
    fn empty_configuration_addresses_nothing() {
        let cfg = AodConfig::new(BitVec::zeros(5), BitVec::ones_vec(5));
        assert_eq!(cfg.num_addressed(), 0);
        assert!(cfg.site_mask().is_zero());
    }
}
