//! Bit-packed dense binary matrices.
//!
//! This crate is the data-representation substrate of the `rect-addr`
//! workspace, which reproduces *Depth-Optimal Addressing of 2D Qubit Array
//! with 1D Controls Based on Exact Binary Matrix Factorization* (DATE 2024).
//! Everything the paper manipulates — addressing patterns, rank-1 rectangles,
//! benchmark instances — is a binary matrix, stored bit-packed in a single
//! contiguous `u64` buffer with a word-padded row stride.
//!
//! * [`BitVec`] — fixed-length owned bit vector with set algebra (subset,
//!   disjointness, and/or/xor/difference).
//! * [`BitMatrix`] — dense binary matrix: transpose (with a lazy cached
//!   variant), Kronecker product, row/column dedup, outer products,
//!   parsing/printing. Rows are borrowed as [`RowRef`] / [`RowMut`] views.
//! * [`kernel`] — word-level kernels (fused popcounts, in-place boolean ops,
//!   lexicographic row compares, rank) over raw `u64` slices; the [`Bits`]
//!   trait lets owned vectors and row views share them.
//! * [`random_matrix`] and friends — seeded random instances.
//!
//! # Examples
//!
//! ```
//! use rect_addr_bitmatrix::{BitMatrix, BitVec};
//!
//! // The rank-1 "rectangle" spanned by rows {0,2} and columns {1,3}:
//! let rect = BitMatrix::outer(
//!     &BitVec::from_indices(3, [0, 2]),
//!     &BitVec::from_indices(4, [1, 3]),
//! );
//! assert_eq!(rect.count_ones(), 4);
//! ```

mod bitvec;
pub mod kernel;
mod matrix;
mod random;
mod rows;

pub use bitvec::{BitVec, Bits, Ones};
pub use matrix::{BitMatrix, ParseMatrixError, Rows};
pub use random::{
    invert_permutation, random_matrix, random_matrix_with_ones, random_permutation, random_vec,
};
pub use rows::{RowMut, RowRef};

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;

    #[test]
    fn bitvec_json_roundtrip() {
        let v = BitVec::from_indices(70, [0, 63, 64, 69]);
        let json = serde_json::to_string(&v).unwrap();
        let back: BitVec = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bitmatrix_json_roundtrip() {
        let m: BitMatrix = "101\n010\n111".parse().unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: BitMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
        (1usize..12, 1usize..12).prop_flat_map(|(m, n)| {
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), m)
                .prop_map(move |rows| BitMatrix::from_fn(m, n, |i, j| rows[i][j]))
        })
    }

    proptest! {
        #[test]
        fn transpose_is_involution(m in arb_matrix()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn transpose_preserves_ones(m in arb_matrix()) {
            prop_assert_eq!(m.count_ones(), m.transpose().count_ones());
        }

        #[test]
        fn display_parse_roundtrip(m in arb_matrix()) {
            let parsed: BitMatrix = m.to_string().parse().unwrap();
            prop_assert_eq!(parsed, m);
        }

        #[test]
        fn dedup_preserves_distinct_nonzero_rows(m in arb_matrix()) {
            let (d, groups) = m.dedup_rows();
            // every group member equals the kept representative
            for (k, g) in groups.iter().enumerate() {
                for &orig in g {
                    prop_assert_eq!(m.row(orig), d.row(k));
                }
            }
            // every nonzero original row is accounted for
            let covered: usize = groups.iter().map(|g| g.len()).sum();
            let nonzero = m.iter_rows().filter(|r| !r.is_zero()).count();
            prop_assert_eq!(covered, nonzero);
        }

        #[test]
        fn kron_count_is_product(a in arb_matrix(), b in arb_matrix()) {
            prop_assert_eq!(a.kron(&b).count_ones(), a.count_ones() * b.count_ones());
        }

        #[test]
        fn subset_iff_difference_empty(
            bits_a in proptest::collection::vec(any::<bool>(), 40),
            bits_b in proptest::collection::vec(any::<bool>(), 40),
        ) {
            let a = BitVec::from_bools(&bits_a);
            let b = BitVec::from_bools(&bits_b);
            prop_assert_eq!(a.is_subset_of(&b), a.difference(&b).is_zero());
        }

        #[test]
        fn xor_twice_is_identity(
            bits_a in proptest::collection::vec(any::<bool>(), 70),
            bits_b in proptest::collection::vec(any::<bool>(), 70),
        ) {
            let a = BitVec::from_bools(&bits_a);
            let b = BitVec::from_bools(&bits_b);
            prop_assert_eq!(a.xor(&b).xor(&b), a);
        }
    }
}

/// Differential tests: every word kernel must agree with a per-bit reference
/// implementation, including at tail-boundary widths (63/64/65/127/128/129)
/// and on zero-width/zero-height inputs.
#[cfg(test)]
mod kernel_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    /// Widths straddling word boundaries plus small interior ones.
    const WIDTHS: &[usize] = &[1, 7, 63, 64, 65, 127, 128, 129];

    fn arb_pair() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
        (0usize..WIDTHS.len()).prop_flat_map(|wi| {
            let w = WIDTHS[wi];
            (
                proptest::collection::vec(any::<bool>(), w),
                proptest::collection::vec(any::<bool>(), w),
            )
        })
    }

    /// Per-bit reference for the row-string order: `'0' < '1'`, lowest index
    /// most significant.
    fn ref_cmp_lex(a: &[bool], b: &[bool]) -> Ordering {
        for (&x, &y) in a.iter().zip(b) {
            if x != y {
                return if !x {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
            }
        }
        Ordering::Equal
    }

    fn ref_rank(a: &[bool], i: usize) -> usize {
        a[..i].iter().filter(|&&b| b).count()
    }

    proptest! {
        #[test]
        fn boolean_kernels_match_reference((ba, bb) in arb_pair()) {
            let a = BitVec::from_bools(&ba);
            let b = BitVec::from_bools(&bb);
            let aw = a.words();
            let bw = b.words();

            prop_assert_eq!(kernel::count(aw), ba.iter().filter(|&&x| x).count());
            prop_assert_eq!(
                kernel::and_count(aw, bw),
                ba.iter().zip(&bb).filter(|(&x, &y)| x && y).count()
            );
            prop_assert_eq!(
                kernel::andnot_count(aw, bw),
                ba.iter().zip(&bb).filter(|(&x, &y)| x && !y).count()
            );
            prop_assert_eq!(
                kernel::intersects(aw, bw),
                ba.iter().zip(&bb).any(|(&x, &y)| x && y)
            );
            prop_assert_eq!(
                kernel::is_subset(aw, bw),
                ba.iter().zip(&bb).all(|(&x, &y)| !x || y)
            );
            prop_assert_eq!(kernel::is_zero(aw), ba.iter().all(|&x| !x));
            prop_assert_eq!(kernel::first_one(aw), ba.iter().position(|&x| x));
        }

        #[test]
        fn in_place_kernels_match_reference((ba, bb) in arb_pair()) {
            let a = BitVec::from_bools(&ba);
            let b = BitVec::from_bools(&bb);
            let per_bit = |f: fn(bool, bool) -> bool| {
                BitVec::from_bools(
                    &ba.iter().zip(&bb).map(|(&x, &y)| f(x, y)).collect::<Vec<_>>(),
                )
            };
            prop_assert_eq!(a.and(&b), per_bit(|x, y| x && y));
            prop_assert_eq!(a.or(&b), per_bit(|x, y| x || y));
            prop_assert_eq!(a.xor(&b), per_bit(|x, y| x != y));
            prop_assert_eq!(a.difference(&b), per_bit(|x, y| x && !y));
        }

        #[test]
        fn compare_and_rank_match_reference((ba, bb) in arb_pair(), fr in 0usize..1000) {
            let a = BitVec::from_bools(&ba);
            let b = BitVec::from_bools(&bb);
            prop_assert_eq!(kernel::cmp_lex(a.words(), b.words()), ref_cmp_lex(&ba, &bb));
            prop_assert_eq!(
                kernel::cmp_lex_ones_first(a.words(), b.words()),
                ref_cmp_lex(&ba, &bb).reverse()
            );
            let i = ba.len() * fr / 1000;
            prop_assert_eq!(kernel::rank(a.words(), i), ref_rank(&ba, i));
        }

        #[test]
        fn matrix_row_views_match_per_bit_access(
            (nrows, wi) in (0usize..5, 0usize..WIDTHS.len()),
            seed in any::<u64>(),
        ) {
            let ncols = WIDTHS[wi];
            let m = BitMatrix::from_fn(nrows, ncols, |i, j| {
                // cheap deterministic pseudo-random fill
                (seed.wrapping_mul(6364136223846793005).wrapping_add((i * ncols + j) as u64)
                    >> 33) & 1 == 1
            });
            let t = m.transpose();
            for i in 0..nrows {
                let row = m.row(i);
                let per_bit: Vec<usize> = (0..ncols).filter(|&j| m.get(i, j)).collect();
                prop_assert_eq!(row.to_indices(), per_bit.clone());
                prop_assert_eq!(row.count_ones(), per_bit.len());
                for j in 0..ncols {
                    prop_assert_eq!(row.get(j), m.get(i, j));
                    prop_assert_eq!(t.get(j, i), m.get(i, j));
                }
            }
            prop_assert_eq!(m.transposed(), &t);
        }
    }

    #[test]
    fn zero_width_and_zero_height_kernels() {
        let a = BitVec::zeros(0);
        assert_eq!(kernel::count(a.words()), 0);
        assert!(kernel::is_zero(a.words()));
        assert!(kernel::is_subset(a.words(), a.words()));
        assert!(!kernel::intersects(a.words(), a.words()));
        assert_eq!(
            kernel::cmp_lex(a.words(), a.words()),
            std::cmp::Ordering::Equal
        );
        assert_eq!(kernel::first_one(a.words()), None);
        assert_eq!(kernel::rank(a.words(), 0), 0);

        let m = BitMatrix::zeros(0, 7);
        assert_eq!(m.transposed().shape(), (7, 0));
        let n = BitMatrix::zeros(3, 0);
        assert!(n.row(0).is_subset_of(n.row(1)));
        assert!(n.row(0).is_disjoint(n.row(2)));
        assert_eq!(n.row(0), n.row(1));
    }
}
