//! Bit-packed dense binary matrices.
//!
//! This crate is the data-representation substrate of the `rect-addr`
//! workspace, which reproduces *Depth-Optimal Addressing of 2D Qubit Array
//! with 1D Controls Based on Exact Binary Matrix Factorization* (DATE 2024).
//! Everything the paper manipulates — addressing patterns, rank-1 rectangles,
//! benchmark instances — is a binary matrix, represented here as a vector of
//! bit-packed rows.
//!
//! * [`BitVec`] — fixed-length bit vector with set algebra (subset,
//!   disjointness, and/or/xor/difference), the row type.
//! * [`BitMatrix`] — dense binary matrix: transpose, Kronecker product,
//!   row/column dedup, outer products, parsing/printing.
//! * [`random_matrix`] and friends — seeded random instances.
//!
//! # Examples
//!
//! ```
//! use rect_addr_bitmatrix::{BitMatrix, BitVec};
//!
//! // The rank-1 "rectangle" spanned by rows {0,2} and columns {1,3}:
//! let rect = BitMatrix::outer(
//!     &BitVec::from_indices(3, [0, 2]),
//!     &BitVec::from_indices(4, [1, 3]),
//! );
//! assert_eq!(rect.count_ones(), 4);
//! ```

mod bitvec;
mod matrix;
mod random;

pub use bitvec::{BitVec, Ones};
pub use matrix::{BitMatrix, ParseMatrixError};
pub use random::{
    invert_permutation, random_matrix, random_matrix_with_ones, random_permutation, random_vec,
};

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;

    #[test]
    fn bitvec_json_roundtrip() {
        let v = BitVec::from_indices(70, [0, 63, 64, 69]);
        let json = serde_json::to_string(&v).unwrap();
        let back: BitVec = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bitmatrix_json_roundtrip() {
        let m: BitMatrix = "101\n010\n111".parse().unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: BitMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
        (1usize..12, 1usize..12).prop_flat_map(|(m, n)| {
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), m)
                .prop_map(move |rows| BitMatrix::from_fn(m, n, |i, j| rows[i][j]))
        })
    }

    proptest! {
        #[test]
        fn transpose_is_involution(m in arb_matrix()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn transpose_preserves_ones(m in arb_matrix()) {
            prop_assert_eq!(m.count_ones(), m.transpose().count_ones());
        }

        #[test]
        fn display_parse_roundtrip(m in arb_matrix()) {
            let parsed: BitMatrix = m.to_string().parse().unwrap();
            prop_assert_eq!(parsed, m);
        }

        #[test]
        fn dedup_preserves_distinct_nonzero_rows(m in arb_matrix()) {
            let (d, groups) = m.dedup_rows();
            // every group member equals the kept representative
            for (k, g) in groups.iter().enumerate() {
                for &orig in g {
                    prop_assert_eq!(m.row(orig), d.row(k));
                }
            }
            // every nonzero original row is accounted for
            let covered: usize = groups.iter().map(|g| g.len()).sum();
            let nonzero = m.iter_rows().filter(|r| !r.is_zero()).count();
            prop_assert_eq!(covered, nonzero);
        }

        #[test]
        fn kron_count_is_product(a in arb_matrix(), b in arb_matrix()) {
            prop_assert_eq!(a.kron(&b).count_ones(), a.count_ones() * b.count_ones());
        }

        #[test]
        fn subset_iff_difference_empty(
            bits_a in proptest::collection::vec(any::<bool>(), 40),
            bits_b in proptest::collection::vec(any::<bool>(), 40),
        ) {
            let a = BitVec::from_bools(&bits_a);
            let b = BitVec::from_bools(&bits_b);
            prop_assert_eq!(a.is_subset_of(&b), a.difference(&b).is_zero());
        }

        #[test]
        fn xor_twice_is_identity(
            bits_a in proptest::collection::vec(any::<bool>(), 70),
            bits_b in proptest::collection::vec(any::<bool>(), 70),
        ) {
            let a = BitVec::from_bools(&bits_a);
            let b = BitVec::from_bools(&bits_b);
            prop_assert_eq!(a.xor(&b).xor(&b), a);
        }
    }
}
