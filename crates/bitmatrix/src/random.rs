//! Random binary matrices and permutations.
//!
//! All generators take an explicit [`rand::Rng`], so benchmark instances are
//! reproducible from a seed. The paper's three benchmark families build on
//! these primitives (see `rect-addr-ebmf::gen`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{BitMatrix, BitVec};

/// Samples an `m × n` matrix with iid Bernoulli(`occupancy`) entries.
///
/// # Panics
///
/// Panics if `occupancy` is not within `[0, 1]`.
pub fn random_matrix<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    occupancy: f64,
    rng: &mut R,
) -> BitMatrix {
    assert!(
        (0.0..=1.0).contains(&occupancy),
        "occupancy {occupancy} outside [0, 1]"
    );
    BitMatrix::from_fn(nrows, ncols, |_, _| rng.gen_bool(occupancy))
}

/// Samples an `m × n` matrix with exactly `ones` entries set, uniformly over
/// all such matrices.
///
/// # Panics
///
/// Panics if `ones > nrows * ncols`.
pub fn random_matrix_with_ones<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    ones: usize,
    rng: &mut R,
) -> BitMatrix {
    let cells = nrows * ncols;
    assert!(ones <= cells, "cannot place {ones} ones in {cells} cells");
    let mut idx: Vec<usize> = (0..cells).collect();
    idx.shuffle(rng);
    let mut m = BitMatrix::zeros(nrows, ncols);
    for &c in idx.iter().take(ones) {
        m.set(c / ncols, c % ncols, true);
    }
    m
}

/// Samples a random bit vector of length `len` with Bernoulli(`occupancy`)
/// entries.
///
/// # Panics
///
/// Panics if `occupancy` is not within `[0, 1]`.
pub fn random_vec<R: Rng + ?Sized>(len: usize, occupancy: f64, rng: &mut R) -> BitVec {
    assert!(
        (0.0..=1.0).contains(&occupancy),
        "occupancy {occupancy} outside [0, 1]"
    );
    BitVec::from_indices(len, (0..len).filter(|_| rng.gen_bool(occupancy)))
}

/// Samples a uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(rng);
    p
}

/// Returns the inverse of a permutation: `inv[perm[i]] == i`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let n = perm.len();
    let mut inv = vec![usize::MAX; n];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < n && inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_matrix_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_matrix(5, 7, 0.0, &mut rng).is_zero());
        assert_eq!(random_matrix(5, 7, 1.0, &mut rng).count_ones(), 35);
    }

    #[test]
    fn random_matrix_is_deterministic_per_seed() {
        let a = random_matrix(10, 10, 0.4, &mut StdRng::seed_from_u64(42));
        let b = random_matrix(10, 10, 0.4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = random_matrix(10, 10, 0.4, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should (practically) differ");
    }

    #[test]
    fn random_matrix_with_ones_exact_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for ones in [0, 1, 17, 50] {
            let m = random_matrix_with_ones(5, 10, ones, &mut rng);
            assert_eq!(m.count_ones(), ones);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn random_matrix_with_too_many_ones_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        random_matrix_with_ones(2, 2, 5, &mut rng);
    }

    #[test]
    fn occupancy_statistics_roughly_match() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_matrix(100, 100, 0.3, &mut rng);
        let occ = m.occupancy();
        assert!((0.25..0.35).contains(&occ), "occupancy {occ} far from 0.3");
    }

    #[test]
    fn permutation_and_inverse() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = random_permutation(20, &mut rng);
        let inv = invert_permutation(&p);
        for i in 0..20 {
            assert_eq!(inv[p[i]], i);
            assert_eq!(p[inv[i]], i);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_rejects_duplicates() {
        invert_permutation(&[0, 0, 1]);
    }
}
