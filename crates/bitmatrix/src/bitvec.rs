//! Fixed-length bit vectors backed by `u64` words.
//!
//! [`BitVec`] is the workhorse of the whole repository: basis vectors in the
//! row-packing heuristic, row/column selectors of rectangles, and don't-care
//! masks are all `BitVec`s. The representation is a dense little-endian word
//! array; bit `i` lives in word `i / 64` at position `i % 64`. All operations
//! keep the invariant that bits at positions `>= len` are zero, so word-wise
//! comparisons are exact.
//!
//! The [`Bits`] trait abstracts over anything exposing that representation —
//! an owned [`BitVec`] or a borrowed matrix row ([`crate::RowRef`]) — so set
//! algebra composes across owned and borrowed operands without copies.

use std::fmt;

use crate::kernel;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Read access to a fixed-length bit string stored as little-endian `u64`
/// words with a zeroed tail.
///
/// Implemented by [`BitVec`], [`crate::RowRef`] and [`crate::RowMut`];
/// references to implementors forward automatically, so `a.and(&b)` and
/// `a.and(m.row(i))` both compile.
pub trait Bits {
    /// Number of bits.
    fn bit_len(&self) -> usize;
    /// Backing words, `bit_len().div_ceil(64)` of them, tail bits zero.
    fn word_slice(&self) -> &[u64];
}

impl<B: Bits + ?Sized> Bits for &B {
    fn bit_len(&self) -> usize {
        (**self).bit_len()
    }
    fn word_slice(&self) -> &[u64] {
        (**self).word_slice()
    }
}

/// A fixed-length sequence of bits supporting set algebra.
///
/// The length is chosen at construction time and never changes; operations
/// combining two vectors panic if the lengths differ (mixing rows of
/// different matrices is always a logic error in this codebase).
///
/// # Examples
///
/// ```
/// use rect_addr_bitmatrix::BitVec;
///
/// let a = BitVec::from_indices(8, [0, 2, 4]);
/// let b = BitVec::from_indices(8, [2, 4, 6]);
/// let both = a.and(&b);
/// assert_eq!(both.ones().collect::<Vec<_>>(), vec![2, 4]);
/// assert!(both.is_subset_of(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl Bits for BitVec {
    fn bit_len(&self) -> usize {
        self.len
    }
    fn word_slice(&self) -> &[u64] {
        &self.words
    }
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones_vec(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
        };
        v.clear_tail();
        v
    }

    /// Creates a vector of `len` bits with exactly the given indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut v = BitVec::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of `bool`s, one per bit.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector of `len` bits directly from backing words.
    ///
    /// Bits past `len` in the last word are cleared, so callers may pass a
    /// buffer with a dirty tail.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count mismatch for {len} bits"
        );
        let mut v = BitVec { len, words };
        v.clear_tail();
        v
    }

    /// Copies the bits of any [`Bits`] value into an owned vector.
    pub fn from_bits<B: Bits>(bits: B) -> Self {
        BitVec {
            len: bits.bit_len(),
            words: bits.word_slice().to_vec(),
        }
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length (distinct from being all-zero).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing words (little-endian, tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words. The caller must keep tail bits zero; this is
    /// crate-internal precisely so the invariant cannot leak.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernel::count(&self.words)
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        kernel::is_zero(&self.words)
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset_of<B: Bits>(&self, other: B) -> bool {
        self.assert_same_len(&other);
        kernel::is_subset(&self.words, other.word_slice())
    }

    /// Whether `self` and `other` share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_disjoint<B: Bits>(&self, other: B) -> bool {
        self.assert_same_len(&other);
        !kernel::intersects(&self.words, other.word_slice())
    }

    /// Bitwise AND, producing a new vector.
    pub fn and<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Bitwise OR, producing a new vector.
    pub fn or<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Bitwise XOR, producing a new vector.
    pub fn xor<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Set difference `self \ other`, producing a new vector.
    pub fn difference<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.clone();
        out.difference_assign(other);
        out
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::and_assign(&mut self.words, other.word_slice());
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::or_assign(&mut self.words, other.word_slice());
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::xor_assign(&mut self.words, other.word_slice());
    }

    /// In-place set difference: clears every bit that is set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn difference_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::andnot_assign(&mut self.words, other.word_slice());
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        kernel::first_one(&self.words)
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Collects the indices of set bits into a `Vec`.
    pub fn to_indices(&self) -> Vec<usize> {
        self.ones().collect()
    }

    fn assert_same_len<B: Bits>(&self, other: &B) {
        assert_eq!(
            self.len,
            other.bit_len(),
            "bit vector length mismatch: {} vs {}",
            self.len,
            other.bit_len()
        );
    }

    /// Zeroes any bits beyond `len` in the last word (representation invariant).
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices of a word slice. Produced by
/// [`BitVec::ones`] and [`crate::RowRef::ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> Ones<'a> {
    pub(crate) fn new(words: &'a [u64]) -> Self {
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]", self)
    }
}

impl fmt::Display for BitVec {
    /// Renders as a string of `0`/`1` characters, lowest index first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(v.is_zero());
        assert!((0..130).all(|i| !v.get(i)));
    }

    #[test]
    fn ones_vec_has_all_bits_and_clean_tail() {
        let v = BitVec::ones_vec(70);
        assert_eq!(v.count_ones(), 70);
        assert!((0..70).all(|i| v.get(i)));
        // tail invariant: XOR with itself gives zero words even past len
        let z = v.xor(&v);
        assert!(z.is_zero());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut v = BitVec::zeros(128);
        for i in [0, 1, 62, 63, 64, 65, 126, 127] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(63, false);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.and_assign(&b);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitVec::from_indices(100, [1, 50, 99]);
        let b = BitVec::from_indices(100, [1, 2, 50, 99]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let c = BitVec::from_indices(100, [0, 3]);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        // the empty set is a subset of everything and disjoint from everything
        let e = BitVec::zeros(100);
        assert!(e.is_subset_of(&a));
        assert!(e.is_disjoint(&a));
    }

    #[test]
    fn set_algebra() {
        let a = BitVec::from_indices(10, [0, 1, 2]);
        let b = BitVec::from_indices(10, [2, 3]);
        assert_eq!(a.and(&b).to_indices(), vec![2]);
        assert_eq!(a.or(&b).to_indices(), vec![0, 1, 2, 3]);
        assert_eq!(a.xor(&b).to_indices(), vec![0, 1, 3]);
        assert_eq!(a.difference(&b).to_indices(), vec![0, 1]);
    }

    #[test]
    fn ones_iterator_matches_get() {
        let v = BitVec::from_indices(200, [0, 63, 64, 127, 128, 199]);
        assert_eq!(v.to_indices(), vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(v.first_one(), Some(0));
        assert_eq!(BitVec::zeros(5).first_one(), None);
    }

    #[test]
    fn display_and_from_bools() {
        let v = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(v.to_string(), "1011");
        let w: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v, w);
    }

    #[test]
    fn zero_length_vector_is_well_behaved() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.ones().count(), 0);
        assert_eq!(v.to_string(), "");
        let o = BitVec::ones_vec(0);
        assert_eq!(v, o);
    }

    #[test]
    fn from_words_clears_dirty_tail() {
        let v = BitVec::from_words(65, vec![!0u64, !0u64]);
        assert_eq!(v.count_ones(), 65);
        assert_eq!(v, BitVec::ones_vec(65));
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_word_count() {
        BitVec::from_words(65, vec![0u64]);
    }
}
