//! Dense binary matrices stored as bit-packed rows.

use std::fmt;
use std::str::FromStr;

use crate::BitVec;

/// A dense `m × n` binary matrix.
///
/// Rows are bit-packed [`BitVec`]s of length `n`. Rectangular-addressing
/// patterns, rank-1 factors and benchmark instances are all `BitMatrix`
/// values. The matrix owns its rows; cheap row views are available via
/// [`BitMatrix::row`].
///
/// # Examples
///
/// ```
/// use rect_addr_bitmatrix::BitMatrix;
///
/// let m: BitMatrix = "101\n010".parse()?;
/// assert_eq!((m.nrows(), m.ncols()), (2, 3));
/// assert!(m.get(0, 0) && !m.get(1, 2));
/// assert_eq!(m.transpose().to_string(), "10\n01\n10");
/// # Ok::<(), rect_addr_bitmatrix::ParseMatrixError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero `m × n` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        BitMatrix {
            nrows,
            ncols,
            rows: (0..nrows).map(|_| BitVec::zeros(ncols)).collect(),
        }
    }

    /// Creates an all-one `m × n` matrix.
    pub fn ones(nrows: usize, ncols: usize) -> Self {
        BitMatrix {
            nrows,
            ncols,
            rows: (0..nrows).map(|_| BitVec::ones_vec(ncols)).collect(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut m = BitMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds a matrix from owned rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have length `ncols`.
    pub fn from_rows(rows: Vec<BitVec>, ncols: usize) -> Self {
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                ncols,
                "row {i} has length {} but ncols is {ncols}",
                r.len()
            );
        }
        BitMatrix {
            nrows: rows.len(),
            ncols,
            rows,
        }
    }

    /// Builds a matrix from nested `0`/`1` integer literals (test helper).
    ///
    /// # Panics
    ///
    /// Panics if rows have uneven lengths or contain values other than 0/1.
    pub fn from_dense(rows: &[&[u8]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = BitMatrix::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "row {i} has uneven length");
            for (j, &v) in row.iter().enumerate() {
                match v {
                    0 => {}
                    1 => m.set(i, j, true),
                    other => panic!("matrix entry must be 0 or 1, got {other}"),
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Returns entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        self.rows[i].get(j)
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        self.rows[i].set(j, value);
    }

    /// Borrow row `i` as a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Mutably borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut BitVec {
        &mut self.rows[i]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> std::slice::Iter<'_, BitVec> {
        self.rows.iter()
    }

    /// Extracts column `j` as a bit vector of length `nrows`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> BitVec {
        assert!(
            j < self.ncols,
            "column index {j} out of range ({})",
            self.ncols
        );
        BitVec::from_indices(self.nrows, (0..self.nrows).filter(|&i| self.rows[i].get(j)))
    }

    /// Total number of 1 entries.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(BitVec::count_ones).sum()
    }

    /// Fraction of entries that are 1 (0.0 for an empty matrix).
    pub fn occupancy(&self) -> f64 {
        let cells = self.nrows * self.ncols;
        if cells == 0 {
            0.0
        } else {
            self.count_ones() as f64 / cells as f64
        }
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(BitVec::is_zero)
    }

    /// Positions of all 1 entries in row-major order.
    pub fn ones_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (i, r) in self.rows.iter().enumerate() {
            for j in r.ones() {
                out.push((i, j));
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.ncols, self.nrows);
        for (i, r) in self.rows.iter().enumerate() {
            for j in r.ones() {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Entry-wise OR of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn or(&self, other: &BitMatrix) -> BitMatrix {
        self.assert_same_shape(other);
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a.or(b))
            .collect();
        BitMatrix::from_rows(rows, self.ncols)
    }

    /// Entry-wise AND of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn and(&self, other: &BitMatrix) -> BitMatrix {
        self.assert_same_shape(other);
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a.and(b))
            .collect();
        BitMatrix::from_rows(rows, self.ncols)
    }

    /// Whether the two matrices share no 1 entry.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn is_disjoint(&self, other: &BitMatrix) -> bool {
        self.assert_same_shape(other);
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.is_disjoint(b))
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// Entry `((i·p + k), (j·q + l))` of the result is
    /// `self[i,j] AND other[k,l]` where `other` is `p × q`. This is the
    /// two-level FTQC structure of the paper's Section V: the logical
    /// pattern tensored with the physical patch pattern.
    pub fn kron(&self, other: &BitMatrix) -> BitMatrix {
        let (p, q) = other.shape();
        BitMatrix::from_fn(self.nrows * p, self.ncols * q, |r, c| {
            self.get(r / p, c / q) && other.get(r % p, c % q)
        })
    }

    /// Sub-matrix given by the selected rows and columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> BitMatrix {
        BitMatrix::from_fn(rows.len(), cols.len(), |i, j| self.get(rows[i], cols[j]))
    }

    /// Returns a copy with rows permuted: row `i` of the result is row
    /// `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nrows`.
    pub fn permute_rows(&self, perm: &[usize]) -> BitMatrix {
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let mut seen = vec![false; self.nrows];
        for &p in perm {
            assert!(p < self.nrows && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let rows = perm.iter().map(|&p| self.rows[p].clone()).collect();
        BitMatrix::from_rows(rows, self.ncols)
    }

    /// Removes empty rows and duplicate rows, returning the reduced matrix
    /// together with, for each kept row, the list of original row indices it
    /// represents.
    ///
    /// This is the preprocessing used by the trivial heuristic of the paper
    /// (Section III-B): duplicated rows can share rectangles, and empty rows
    /// need none.
    pub fn dedup_rows(&self) -> (BitMatrix, Vec<Vec<usize>>) {
        let mut kept: Vec<BitVec> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, r) in self.rows.iter().enumerate() {
            if r.is_zero() {
                continue;
            }
            if let Some(k) = kept.iter().position(|v| v == r) {
                groups[k].push(i);
            } else {
                kept.push(r.clone());
                groups.push(vec![i]);
            }
        }
        (BitMatrix::from_rows(kept, self.ncols), groups)
    }

    /// Convenience: matrix with both rows and columns deduplicated and empty
    /// ones removed. Returns only the reduced matrix (group bookkeeping is
    /// provided by [`BitMatrix::dedup_rows`] when needed).
    pub fn dedup_rows_cols(&self) -> BitMatrix {
        let (r, _) = self.dedup_rows();
        let (rt, _) = r.transpose().dedup_rows();
        rt.transpose()
    }

    /// The outer product `col · row`: a rank-1 matrix that is 1 exactly on
    /// `{i : col[i]=1} × {j : row[j]=1}`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent with `(col.len(), row.len())`.
    pub fn outer(col: &BitVec, row: &BitVec) -> BitMatrix {
        let mut m = BitMatrix::zeros(col.len(), row.len());
        for i in col.ones() {
            *m.row_mut(i) = row.clone();
        }
        m
    }

    fn assert_same_shape(&self, other: &BitMatrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "matrix shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.nrows, self.ncols)?;
        for r in &self.rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMatrix {
    /// Renders rows as `0`/`1` strings separated by newlines (no trailing
    /// newline). `parse()` accepts this format back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BitMatrix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMatrixError {
    /// A character other than `0`, `1` or whitespace was found.
    InvalidCharacter(char),
    /// Two non-empty lines had different numbers of digits.
    UnevenRows { expected: usize, found: usize },
    /// The input contained no matrix rows.
    Empty,
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMatrixError::InvalidCharacter(c) => {
                write!(f, "invalid character {c:?} in matrix literal")
            }
            ParseMatrixError::UnevenRows { expected, found } => {
                write!(f, "uneven rows: expected {expected} columns, found {found}")
            }
            ParseMatrixError::Empty => write!(f, "empty matrix literal"),
        }
    }
}

impl std::error::Error for ParseMatrixError {}

impl FromStr for BitMatrix {
    type Err = ParseMatrixError;

    /// Parses a matrix from lines of `0`/`1` digits. Spaces and tabs inside a
    /// line are ignored; blank lines are skipped.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut rows: Vec<BitVec> = Vec::new();
        let mut ncols: Option<usize> = None;
        for line in s.lines() {
            let mut bits = Vec::new();
            for c in line.chars() {
                match c {
                    '0' => bits.push(false),
                    '1' => bits.push(true),
                    c if c.is_whitespace() => {}
                    c => return Err(ParseMatrixError::InvalidCharacter(c)),
                }
            }
            if bits.is_empty() {
                continue;
            }
            match ncols {
                None => ncols = Some(bits.len()),
                Some(n) if n != bits.len() => {
                    return Err(ParseMatrixError::UnevenRows {
                        expected: n,
                        found: bits.len(),
                    })
                }
                _ => {}
            }
            rows.push(BitVec::from_bools(&bits));
        }
        match ncols {
            None => Err(ParseMatrixError::Empty),
            Some(n) => Ok(BitMatrix::from_rows(rows, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        // The 6x6 matrix of the paper's Figure 1b.
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        let m = fig1b();
        assert_eq!(m.shape(), (6, 6));
        let s = m.to_string();
        let m2: BitMatrix = s.parse().unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn parse_accepts_spaces_and_blank_lines() {
        let m: BitMatrix = "1 0 1\n\n0 1 0\n".parse().unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert!(m.get(0, 0) && m.get(1, 1));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10\n1".parse::<BitMatrix>(),
            Err(ParseMatrixError::UnevenRows {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(
            "102".parse::<BitMatrix>(),
            Err(ParseMatrixError::InvalidCharacter('2'))
        );
        assert_eq!("\n  \n".parse::<BitMatrix>(), Err(ParseMatrixError::Empty));
    }

    #[test]
    fn transpose_involution() {
        let m = fig1b();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (6, 6));
        assert_eq!(m.get(0, 2), m.transpose().get(2, 0));
    }

    #[test]
    fn count_and_occupancy() {
        let m = BitMatrix::ones(4, 5);
        assert_eq!(m.count_ones(), 20);
        assert!((m.occupancy() - 1.0).abs() < 1e-12);
        assert_eq!(BitMatrix::zeros(3, 3).occupancy(), 0.0);
        assert_eq!(BitMatrix::zeros(0, 0).occupancy(), 0.0);
    }

    #[test]
    fn identity_and_cols() {
        let m = BitMatrix::identity(4);
        for j in 0..4 {
            assert_eq!(m.col(j).to_indices(), vec![j]);
        }
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn outer_product_is_rectangle() {
        let col = BitVec::from_indices(4, [1, 3]);
        let row = BitVec::from_indices(5, [0, 2]);
        let m = BitMatrix::outer(&col, &row);
        assert_eq!(m.count_ones(), 4);
        assert!(m.get(1, 0) && m.get(1, 2) && m.get(3, 0) && m.get(3, 2));
        assert!(!m.get(0, 0) && !m.get(2, 2));
    }

    #[test]
    fn kron_matches_definition() {
        let a: BitMatrix = "10\n01".parse().unwrap();
        let b: BitMatrix = "11\n10".parse().unwrap();
        let k = a.kron(&b);
        assert_eq!(k.shape(), (4, 4));
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    k.get(i, j),
                    a.get(i / 2, j / 2) && b.get(i % 2, j % 2),
                    "mismatch at ({i},{j})"
                );
            }
        }
        assert_eq!(k.count_ones(), a.count_ones() * b.count_ones());
    }

    #[test]
    fn dedup_rows_groups() {
        let m: BitMatrix = "101\n000\n101\n011".parse().unwrap();
        let (r, groups) = m.dedup_rows();
        assert_eq!(r.nrows(), 2);
        assert_eq!(groups, vec![vec![0, 2], vec![3]]);
    }

    #[test]
    fn dedup_rows_cols_shrinks_both() {
        // duplicate rows AND duplicate columns
        let m: BitMatrix = "1100\n1100\n0011".parse().unwrap();
        let d = m.dedup_rows_cols();
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d, BitMatrix::identity(2));
    }

    #[test]
    fn permute_rows_and_submatrix() {
        let m = fig1b();
        let perm = [5, 4, 3, 2, 1, 0];
        let p = m.permute_rows(&perm);
        for i in 0..6 {
            assert_eq!(p.row(i), m.row(5 - i));
        }
        let s = m.submatrix(&[0, 2], &[0, 2, 4]);
        assert_eq!(s.shape(), (2, 3));
        assert!(s.get(0, 0) && s.get(0, 1) && !s.get(0, 2));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rows_rejects_non_permutation() {
        fig1b().permute_rows(&[0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn ones_positions_row_major() {
        let m: BitMatrix = "010\n100".parse().unwrap();
        assert_eq!(m.ones_positions(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn disjoint_and_or() {
        let a: BitMatrix = "10\n00".parse().unwrap();
        let b: BitMatrix = "00\n01".parse().unwrap();
        assert!(a.is_disjoint(&b));
        let c = a.or(&b);
        assert_eq!(c.count_ones(), 2);
        assert!(a.and(&b).is_zero());
    }

    #[test]
    fn from_dense_matches_parse() {
        let m = BitMatrix::from_dense(&[&[1, 0, 1], &[0, 1, 0]]);
        let p: BitMatrix = "101\n010".parse().unwrap();
        assert_eq!(m, p);
    }
}
