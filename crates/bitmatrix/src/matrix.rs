//! Dense binary matrices on a single contiguous bit-packed buffer.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::OnceLock;

use crate::bitvec::{Bits, WORD_BITS};
use crate::{kernel, BitVec, RowMut, RowRef};

/// A dense `m × n` binary matrix.
///
/// All rows live in one contiguous `u64` buffer with a word-padded row
/// stride (`ncols.div_ceil(64)` words per row), so whole-matrix scans touch
/// one allocation and row pairs combine word-at-a-time through the
/// [`crate::kernel`] functions. Cheap row views are available via
/// [`BitMatrix::row`] / [`BitMatrix::row_mut`]; column-major scans can use
/// the lazily built, cached transpose from [`BitMatrix::transposed`].
///
/// # Examples
///
/// ```
/// use rect_addr_bitmatrix::BitMatrix;
///
/// let m: BitMatrix = "101\n010".parse()?;
/// assert_eq!((m.nrows(), m.ncols()), (2, 3));
/// assert!(m.get(0, 0) && !m.get(1, 2));
/// assert_eq!(m.transpose().to_string(), "10\n01\n10");
/// # Ok::<(), rect_addr_bitmatrix::ParseMatrixError>(())
/// ```
pub struct BitMatrix {
    nrows: usize,
    ncols: usize,
    /// Words per row: `ncols.div_ceil(64)`.
    stride: usize,
    /// `nrows * stride` words; bits past `ncols` in each row's last word are
    /// zero, so word-wise row comparisons are exact.
    words: Vec<u64>,
    /// Lazily built transpose, reset by any mutation. Excluded from
    /// equality, hashing and cloning — it is a cache, not state.
    tcache: OnceLock<Box<BitMatrix>>,
}

impl Clone for BitMatrix {
    fn clone(&self) -> Self {
        BitMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            stride: self.stride,
            words: self.words.clone(),
            tcache: OnceLock::new(),
        }
    }
}

impl PartialEq for BitMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows && self.ncols == other.ncols && self.words == other.words
    }
}

impl Eq for BitMatrix {}

impl Hash for BitMatrix {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.nrows.hash(state);
        self.ncols.hash(state);
        self.words.hash(state);
    }
}

impl BitMatrix {
    /// Creates an all-zero `m × n` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        let stride = ncols.div_ceil(WORD_BITS);
        BitMatrix {
            nrows,
            ncols,
            stride,
            words: vec![0; nrows * stride],
            tcache: OnceLock::new(),
        }
    }

    /// Creates an all-one `m × n` matrix.
    pub fn ones(nrows: usize, ncols: usize) -> Self {
        let mut m = BitMatrix::zeros(nrows, ncols);
        m.words.fill(!0u64);
        m.clear_tails();
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.words[i * m.stride + i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut m = BitMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            let base = i * m.stride;
            let mut acc = 0u64;
            for j in 0..ncols {
                if f(i, j) {
                    acc |= 1u64 << (j % WORD_BITS);
                }
                if j % WORD_BITS == WORD_BITS - 1 {
                    m.words[base + j / WORD_BITS] = acc;
                    acc = 0;
                }
            }
            if !ncols.is_multiple_of(WORD_BITS) {
                m.words[base + (ncols - 1) / WORD_BITS] = acc;
            }
        }
        m
    }

    /// Builds a matrix from owned rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have length `ncols`.
    pub fn from_rows(rows: Vec<BitVec>, ncols: usize) -> Self {
        let mut m = BitMatrix::zeros(rows.len(), ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                ncols,
                "row {i} has length {} but ncols is {ncols}",
                r.len()
            );
            m.words[i * m.stride..(i + 1) * m.stride].copy_from_slice(r.words());
        }
        m
    }

    /// Builds a matrix from nested `0`/`1` integer literals (test helper).
    ///
    /// # Panics
    ///
    /// Panics if rows have uneven lengths or contain values other than 0/1.
    pub fn from_dense(rows: &[&[u8]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = BitMatrix::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "row {i} has uneven length");
            for (j, &v) in row.iter().enumerate() {
                match v {
                    0 => {}
                    1 => m.set(i, j, true),
                    other => panic!("matrix entry must be 0 or 1, got {other}"),
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Words per row in the backing buffer (`ncols.div_ceil(64)`).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The whole backing buffer: `nrows * stride` words, row-major, each
    /// row's tail bits zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Returns entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        assert!(
            j < self.ncols,
            "bit index {j} out of range for len {}",
            self.ncols
        );
        (self.words[i * self.stride + j / WORD_BITS] >> (j % WORD_BITS)) & 1 == 1
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        assert!(
            j < self.ncols,
            "bit index {j} out of range for len {}",
            self.ncols
        );
        self.tcache.take();
        let mask = 1u64 << (j % WORD_BITS);
        let w = &mut self.words[i * self.stride + j / WORD_BITS];
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Borrow row `i` as an immutable bit-string view.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> RowRef<'_> {
        RowRef::new(self.row_words(i), self.ncols)
    }

    /// Mutably borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> RowMut<'_> {
        assert!(
            i < self.nrows,
            "row index {i} out of range ({})",
            self.nrows
        );
        self.tcache.take();
        let range = i * self.stride..(i + 1) * self.stride;
        RowMut::new(&mut self.words[range], self.ncols)
    }

    /// Overwrites row `i` with the bits of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `src` is not `ncols` bits long.
    pub fn set_row<B: Bits>(&mut self, i: usize, src: B) {
        self.row_mut(i).copy_from(src);
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> Rows<'_> {
        Rows { m: self, next: 0 }
    }

    /// Extracts column `j` as a bit vector of length `nrows`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> BitVec {
        assert!(
            j < self.ncols,
            "column index {j} out of range ({})",
            self.ncols
        );
        let word = j / WORD_BITS;
        let shift = j % WORD_BITS;
        let mut out = BitVec::zeros(self.nrows);
        for i in 0..self.nrows {
            let bit = (self.words[i * self.stride + word] >> shift) & 1;
            out.words_mut()[i / WORD_BITS] |= bit << (i % WORD_BITS);
        }
        out
    }

    /// Total number of 1 entries.
    pub fn count_ones(&self) -> usize {
        kernel::count(&self.words)
    }

    /// Fraction of entries that are 1 (0.0 for an empty matrix).
    pub fn occupancy(&self) -> f64 {
        let cells = self.nrows * self.ncols;
        if cells == 0 {
            0.0
        } else {
            self.count_ones() as f64 / cells as f64
        }
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        kernel::is_zero(&self.words)
    }

    /// Positions of all 1 entries in row-major order.
    pub fn ones_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (i, r) in self.iter_rows().enumerate() {
            for j in r.ones() {
                out.push((i, j));
            }
        }
        out
    }

    /// The transposed matrix, computed fresh.
    ///
    /// For repeated column-major scans prefer [`BitMatrix::transposed`],
    /// which computes once and caches.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.ncols, self.nrows);
        let tstride = t.stride;
        for i in 0..self.nrows {
            let word = i / WORD_BITS;
            let bit = 1u64 << (i % WORD_BITS);
            for j in self.row(i).ones() {
                t.words[j * tstride + word] |= bit;
            }
        }
        t
    }

    /// A borrowed view of the transpose, built lazily on first use and
    /// cached until the matrix is mutated.
    pub fn transposed(&self) -> &BitMatrix {
        self.tcache.get_or_init(|| Box::new(self.transpose()))
    }

    /// Entry-wise OR of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn or(&self, other: &BitMatrix) -> BitMatrix {
        self.assert_same_shape(other);
        let mut out = self.clone();
        kernel::or_assign(&mut out.words, &other.words);
        out
    }

    /// Entry-wise AND of two equal-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn and(&self, other: &BitMatrix) -> BitMatrix {
        self.assert_same_shape(other);
        let mut out = self.clone();
        kernel::and_assign(&mut out.words, &other.words);
        out
    }

    /// Whether the two matrices share no 1 entry.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn is_disjoint(&self, other: &BitMatrix) -> bool {
        self.assert_same_shape(other);
        !kernel::intersects(&self.words, &other.words)
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// Entry `((i·p + k), (j·q + l))` of the result is
    /// `self[i,j] AND other[k,l]` where `other` is `p × q`. This is the
    /// two-level FTQC structure of the paper's Section V: the logical
    /// pattern tensored with the physical patch pattern.
    pub fn kron(&self, other: &BitMatrix) -> BitMatrix {
        let (p, q) = other.shape();
        BitMatrix::from_fn(self.nrows * p, self.ncols * q, |r, c| {
            self.get(r / p, c / q) && other.get(r % p, c % q)
        })
    }

    /// Sub-matrix given by the selected rows and columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> BitMatrix {
        let mut out = BitMatrix::zeros(rows.len(), cols.len());
        for (i, &ri) in rows.iter().enumerate() {
            let src = self.row_words(ri);
            let base = i * out.stride;
            let mut acc = 0u64;
            for (j, &cj) in cols.iter().enumerate() {
                assert!(cj < self.ncols, "column index {cj} out of range");
                acc |= ((src[cj / WORD_BITS] >> (cj % WORD_BITS)) & 1) << (j % WORD_BITS);
                if j % WORD_BITS == WORD_BITS - 1 {
                    out.words[base + j / WORD_BITS] = acc;
                    acc = 0;
                }
            }
            if !cols.len().is_multiple_of(WORD_BITS) {
                out.words[base + (cols.len() - 1) / WORD_BITS] = acc;
            }
        }
        out
    }

    /// Returns a copy with rows permuted: row `i` of the result is row
    /// `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nrows`.
    pub fn permute_rows(&self, perm: &[usize]) -> BitMatrix {
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let mut seen = vec![false; self.nrows];
        for &p in perm {
            assert!(p < self.nrows && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = BitMatrix::zeros(self.nrows, self.ncols);
        for (i, &p) in perm.iter().enumerate() {
            out.words[i * out.stride..(i + 1) * out.stride].copy_from_slice(self.row_words(p));
        }
        out
    }

    /// Removes empty rows and duplicate rows, returning the reduced matrix
    /// together with, for each kept row, the list of original row indices it
    /// represents.
    ///
    /// This is the preprocessing used by the trivial heuristic of the paper
    /// (Section III-B): duplicated rows can share rectangles, and empty rows
    /// need none.
    pub fn dedup_rows(&self) -> (BitMatrix, Vec<Vec<usize>>) {
        let mut kept: Vec<usize> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.nrows {
            let r = self.row_words(i);
            if kernel::is_zero(r) {
                continue;
            }
            if let Some(k) = kept.iter().position(|&p| self.row_words(p) == r) {
                groups[k].push(i);
            } else {
                kept.push(i);
                groups.push(vec![i]);
            }
        }
        let mut out = BitMatrix::zeros(kept.len(), self.ncols);
        for (k, &i) in kept.iter().enumerate() {
            out.words[k * out.stride..(k + 1) * out.stride].copy_from_slice(self.row_words(i));
        }
        (out, groups)
    }

    /// Convenience: matrix with both rows and columns deduplicated and empty
    /// ones removed. Returns only the reduced matrix (group bookkeeping is
    /// provided by [`BitMatrix::dedup_rows`] when needed).
    pub fn dedup_rows_cols(&self) -> BitMatrix {
        let (r, _) = self.dedup_rows();
        let (rt, _) = r.transpose().dedup_rows();
        rt.transpose()
    }

    /// The outer product `col · row`: a rank-1 matrix that is 1 exactly on
    /// `{i : col[i]=1} × {j : row[j]=1}`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent with `(col.len(), row.len())`.
    pub fn outer(col: &BitVec, row: &BitVec) -> BitMatrix {
        let mut m = BitMatrix::zeros(col.len(), row.len());
        for i in col.ones() {
            m.words[i * m.stride..(i + 1) * m.stride].copy_from_slice(row.words());
        }
        m
    }

    /// Zeroes padding bits past `ncols` in every row's last word.
    fn clear_tails(&mut self) {
        let tail = self.ncols % WORD_BITS;
        if tail != 0 && self.stride > 0 {
            let mask = (1u64 << tail) - 1;
            for i in 0..self.nrows {
                self.words[i * self.stride + self.stride - 1] &= mask;
            }
        }
    }

    fn assert_same_shape(&self, other: &BitMatrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "matrix shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

/// Iterator over the rows of a [`BitMatrix`] as [`RowRef`] views.
pub struct Rows<'a> {
    m: &'a BitMatrix,
    next: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.next >= self.m.nrows {
            return None;
        }
        let r = self.m.row(self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.m.nrows - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.nrows, self.ncols)?;
        for r in self.iter_rows() {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMatrix {
    /// Renders rows as `0`/`1` strings separated by newlines (no trailing
    /// newline). `parse()` accepts this format back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.iter_rows().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BitMatrix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMatrixError {
    /// A character other than `0`, `1` or whitespace was found.
    InvalidCharacter(char),
    /// Two non-empty lines had different numbers of digits.
    UnevenRows { expected: usize, found: usize },
    /// The input contained no matrix rows.
    Empty,
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMatrixError::InvalidCharacter(c) => {
                write!(f, "invalid character {c:?} in matrix literal")
            }
            ParseMatrixError::UnevenRows { expected, found } => {
                write!(f, "uneven rows: expected {expected} columns, found {found}")
            }
            ParseMatrixError::Empty => write!(f, "empty matrix literal"),
        }
    }
}

impl std::error::Error for ParseMatrixError {}

impl FromStr for BitMatrix {
    type Err = ParseMatrixError;

    /// Parses a matrix from lines of `0`/`1` digits. Spaces and tabs inside a
    /// line are ignored; blank lines are skipped.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut rows: Vec<BitVec> = Vec::new();
        let mut ncols: Option<usize> = None;
        for line in s.lines() {
            let mut bits = Vec::new();
            for c in line.chars() {
                match c {
                    '0' => bits.push(false),
                    '1' => bits.push(true),
                    c if c.is_whitespace() => {}
                    c => return Err(ParseMatrixError::InvalidCharacter(c)),
                }
            }
            if bits.is_empty() {
                continue;
            }
            match ncols {
                None => ncols = Some(bits.len()),
                Some(n) if n != bits.len() => {
                    return Err(ParseMatrixError::UnevenRows {
                        expected: n,
                        found: bits.len(),
                    })
                }
                _ => {}
            }
            rows.push(BitVec::from_bools(&bits));
        }
        match ncols {
            None => Err(ParseMatrixError::Empty),
            Some(n) => Ok(BitMatrix::from_rows(rows, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        // The 6x6 matrix of the paper's Figure 1b.
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        let m = fig1b();
        assert_eq!(m.shape(), (6, 6));
        let s = m.to_string();
        let m2: BitMatrix = s.parse().unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn parse_accepts_spaces_and_blank_lines() {
        let m: BitMatrix = "1 0 1\n\n0 1 0\n".parse().unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert!(m.get(0, 0) && m.get(1, 1));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10\n1".parse::<BitMatrix>(),
            Err(ParseMatrixError::UnevenRows {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(
            "102".parse::<BitMatrix>(),
            Err(ParseMatrixError::InvalidCharacter('2'))
        );
        assert_eq!("\n  \n".parse::<BitMatrix>(), Err(ParseMatrixError::Empty));
    }

    #[test]
    fn transpose_involution() {
        let m = fig1b();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (6, 6));
        assert_eq!(m.get(0, 2), m.transpose().get(2, 0));
    }

    #[test]
    fn transposed_is_cached_and_invalidated() {
        let mut m = fig1b();
        assert_eq!(*m.transposed(), m.transpose());
        // cached pointer is stable across calls
        let p1 = m.transposed() as *const BitMatrix;
        let p2 = m.transposed() as *const BitMatrix;
        assert_eq!(p1, p2);
        // mutation resets the cache
        m.set(0, 0, false);
        assert_eq!(*m.transposed(), m.transpose());
        assert!(!m.transposed().get(0, 0));
        let mut m2 = fig1b();
        m2.transposed();
        m2.row_mut(2).clear();
        assert_eq!(*m2.transposed(), m2.transpose());
        assert!(m2.transposed().col(2).is_zero());
    }

    #[test]
    fn count_and_occupancy() {
        let m = BitMatrix::ones(4, 5);
        assert_eq!(m.count_ones(), 20);
        assert!((m.occupancy() - 1.0).abs() < 1e-12);
        assert_eq!(BitMatrix::zeros(3, 3).occupancy(), 0.0);
        assert_eq!(BitMatrix::zeros(0, 0).occupancy(), 0.0);
    }

    #[test]
    fn identity_and_cols() {
        let m = BitMatrix::identity(4);
        for j in 0..4 {
            assert_eq!(m.col(j).to_indices(), vec![j]);
        }
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn outer_product_is_rectangle() {
        let col = BitVec::from_indices(4, [1, 3]);
        let row = BitVec::from_indices(5, [0, 2]);
        let m = BitMatrix::outer(&col, &row);
        assert_eq!(m.count_ones(), 4);
        assert!(m.get(1, 0) && m.get(1, 2) && m.get(3, 0) && m.get(3, 2));
        assert!(!m.get(0, 0) && !m.get(2, 2));
    }

    #[test]
    fn kron_matches_definition() {
        let a: BitMatrix = "10\n01".parse().unwrap();
        let b: BitMatrix = "11\n10".parse().unwrap();
        let k = a.kron(&b);
        assert_eq!(k.shape(), (4, 4));
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    k.get(i, j),
                    a.get(i / 2, j / 2) && b.get(i % 2, j % 2),
                    "mismatch at ({i},{j})"
                );
            }
        }
        assert_eq!(k.count_ones(), a.count_ones() * b.count_ones());
    }

    #[test]
    fn dedup_rows_groups() {
        let m: BitMatrix = "101\n000\n101\n011".parse().unwrap();
        let (r, groups) = m.dedup_rows();
        assert_eq!(r.nrows(), 2);
        assert_eq!(groups, vec![vec![0, 2], vec![3]]);
    }

    #[test]
    fn dedup_rows_cols_shrinks_both() {
        // duplicate rows AND duplicate columns
        let m: BitMatrix = "1100\n1100\n0011".parse().unwrap();
        let d = m.dedup_rows_cols();
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d, BitMatrix::identity(2));
    }

    #[test]
    fn permute_rows_and_submatrix() {
        let m = fig1b();
        let perm = [5, 4, 3, 2, 1, 0];
        let p = m.permute_rows(&perm);
        for i in 0..6 {
            assert_eq!(p.row(i), m.row(5 - i));
        }
        let s = m.submatrix(&[0, 2], &[0, 2, 4]);
        assert_eq!(s.shape(), (2, 3));
        assert!(s.get(0, 0) && s.get(0, 1) && !s.get(0, 2));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rows_rejects_non_permutation() {
        fig1b().permute_rows(&[0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn ones_positions_row_major() {
        let m: BitMatrix = "010\n100".parse().unwrap();
        assert_eq!(m.ones_positions(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn disjoint_and_or() {
        let a: BitMatrix = "10\n00".parse().unwrap();
        let b: BitMatrix = "00\n01".parse().unwrap();
        assert!(a.is_disjoint(&b));
        let c = a.or(&b);
        assert_eq!(c.count_ones(), 2);
        assert!(a.and(&b).is_zero());
    }

    #[test]
    fn from_dense_matches_parse() {
        let m = BitMatrix::from_dense(&[&[1, 0, 1], &[0, 1, 0]]);
        let p: BitMatrix = "101\n010".parse().unwrap();
        assert_eq!(m, p);
    }

    #[test]
    fn wide_matrices_cross_word_boundaries() {
        for ncols in [63, 64, 65, 127, 128, 129] {
            let m = BitMatrix::from_fn(3, ncols, |i, j| (i + j) % 3 == 0);
            assert_eq!(m.stride(), ncols.div_ceil(64));
            let t = m.transpose();
            for i in 0..3 {
                for j in 0..ncols {
                    assert_eq!(m.get(i, j), t.get(j, i), "({i},{j}) ncols={ncols}");
                }
            }
            let rt: BitMatrix = m.to_string().parse().unwrap();
            assert_eq!(rt, m);
            assert_eq!(m.submatrix(&[0, 1, 2], &(0..ncols).collect::<Vec<_>>()), m);
        }
    }

    #[test]
    fn zero_dimension_matrices_are_well_behaved() {
        let m = BitMatrix::zeros(0, 5);
        assert_eq!(m.transpose().shape(), (5, 0));
        assert_eq!(m.count_ones(), 0);
        assert_eq!(m.iter_rows().count(), 0);
        let n = BitMatrix::zeros(4, 0);
        assert_eq!(n.stride(), 0);
        assert_eq!(n.row(2).len(), 0);
        assert!(n.row(2).is_zero());
        assert_eq!(n.iter_rows().count(), 4);
        assert_eq!(n.transpose().shape(), (0, 4));
        let (d, groups) = n.dedup_rows();
        assert_eq!(d.nrows(), 0);
        assert!(groups.is_empty());
    }

    #[test]
    fn equality_and_hash_ignore_transpose_cache() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = fig1b();
        let b = fig1b();
        a.transposed();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        let c = a.clone();
        assert_eq!(c, a);
    }
}
