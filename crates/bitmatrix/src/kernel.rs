//! Word-level kernels over raw `u64` slices.
//!
//! These free functions are the data plane of the whole pipeline: the
//! canonizer's row compares, the packing heuristic's residue decomposition
//! and the SAT encoder's feasibility masks all bottom out here. Operands are
//! little-endian word slices with any tail bits (past the logical length)
//! zeroed — the invariant every [`crate::Bits`] implementor maintains — so
//! whole-word operations are exact and no per-bit loops are needed.
//!
//! All binary kernels require equal slice lengths (`debug_assert`ed); callers
//! compare same-width rows only, which the typed wrappers in
//! [`crate::BitVec`] / [`crate::RowRef`] enforce with length asserts.

use std::cmp::Ordering;

/// Number of set bits in `a`.
#[inline]
pub fn count(a: &[u64]) -> usize {
    a.iter().map(|w| w.count_ones() as usize).sum()
}

/// Whether every word of `a` is zero.
#[inline]
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&w| w == 0)
}

/// Number of set bits in `a AND b`, without materialising the intersection.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & y).count_ones() as usize)
        .sum()
}

/// Number of set bits in `a AND NOT b` (set difference), fused.
#[inline]
pub fn andnot_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & !y).count_ones() as usize)
        .sum()
}

/// Whether `a` and `b` share at least one set bit.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

/// Whether every set bit of `a` is also set in `b`.
#[inline]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
}

/// In-place `dst &= src`.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// In-place `dst |= src`.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// In-place `dst ^= src`.
#[inline]
pub fn xor_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// In-place `dst &= !src` (set difference).
#[inline]
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

/// Iterator over the set bit positions of `a`, ascending.
#[inline]
pub fn ones(a: &[u64]) -> crate::Ones<'_> {
    crate::Ones::new(a)
}

/// Index of the lowest set bit, if any.
#[inline]
pub fn first_one(a: &[u64]) -> Option<usize> {
    for (wi, &w) in a.iter().enumerate() {
        if w != 0 {
            return Some(wi * 64 + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Number of set bits at positions strictly below `i`.
///
/// This is the rank function used to map a column index to its position
/// among a row's 1-entries (DLX item numbering, SAT variable lookup).
///
/// # Panics
///
/// Debug-panics if `i` exceeds the slice's capacity in bits.
#[inline]
pub fn rank(a: &[u64], i: usize) -> usize {
    debug_assert!(i <= a.len() * 64, "rank index {i} beyond slice");
    let full = i / 64;
    let mut n = count(&a[..full]);
    let tail = i % 64;
    if tail != 0 {
        n += (a[full] & ((1u64 << tail) - 1)).count_ones() as usize;
    }
    n
}

/// Lexicographic comparison of two equal-length bit strings rendered lowest
/// index first, with `'0' < '1'` — the order `BitMatrix` rows sort in when
/// compared as display strings.
#[inline]
pub fn cmp_lex(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (&x, &y) in a.iter().zip(b) {
        if x != y {
            let bit = (x ^ y).trailing_zeros();
            // The side holding 0 at the first differing position is smaller.
            return if (x >> bit) & 1 == 0 {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }
    }
    Ordering::Equal
}

/// Like [`cmp_lex`] but with `'1' < '0'`: the row holding a 1 at the first
/// differing position sorts first. This is the canonizer's row order.
#[inline]
pub fn cmp_lex_ones_first(a: &[u64], b: &[u64]) -> Ordering {
    cmp_lex(a, b).reverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_predicates() {
        let a = [0b1011u64, 1u64 << 63];
        let b = [0b0110u64, 1u64 << 63];
        assert_eq!(count(&a), 4);
        assert_eq!(and_count(&a, &b), 2);
        assert_eq!(andnot_count(&a, &b), 2);
        assert!(intersects(&a, &b));
        assert!(!is_subset(&a, &b));
        assert!(is_subset(&[0b0010, 0], &a));
        assert!(!intersects(&[0b0100, 0], &a));
        assert!(is_zero(&[0, 0]));
        assert!(!is_zero(&a));
    }

    #[test]
    fn in_place_ops() {
        let src = [0b0110u64];
        let mut d = [0b1011u64];
        and_assign(&mut d, &src);
        assert_eq!(d, [0b0010]);
        let mut d = [0b1011u64];
        or_assign(&mut d, &src);
        assert_eq!(d, [0b1111]);
        let mut d = [0b1011u64];
        xor_assign(&mut d, &src);
        assert_eq!(d, [0b1101]);
        let mut d = [0b1011u64];
        andnot_assign(&mut d, &src);
        assert_eq!(d, [0b1001]);
    }

    #[test]
    fn first_one_and_rank() {
        assert_eq!(first_one(&[0, 0]), None);
        assert_eq!(first_one(&[0, 1u64 << 3]), Some(67));
        let a = [0b1011u64, 0b101u64];
        assert_eq!(rank(&a, 0), 0);
        assert_eq!(rank(&a, 1), 1);
        assert_eq!(rank(&a, 4), 3);
        assert_eq!(rank(&a, 64), 3);
        assert_eq!(rank(&a, 65), 4);
        assert_eq!(rank(&a, 67), 5);
        assert_eq!(rank(&a, 128), 5);
    }

    #[test]
    fn lexicographic_orders() {
        // 1100... vs 1010...: first differing index is 1, a has 1 there, so
        // in string order ("11.." vs "10..") a is Greater.
        let a = [0b0011u64];
        let b = [0b0101u64];
        assert_eq!(cmp_lex(&a, &b), Ordering::Greater);
        assert_eq!(cmp_lex(&b, &a), Ordering::Less);
        assert_eq!(cmp_lex(&a, &a), Ordering::Equal);
        assert_eq!(cmp_lex_ones_first(&a, &b), Ordering::Less);
        // difference only in the second word
        let c = [0b0011u64, 0b1u64];
        let d = [0b0011u64, 0b10u64];
        assert_eq!(cmp_lex(&c, &d), Ordering::Greater);
    }
}
