//! Borrowed row views into a flattened [`crate::BitMatrix`].
//!
//! [`RowRef`] is a `Copy` window over one row's words; it mirrors the read
//! API of [`BitVec`] so call sites that previously borrowed `&BitVec` rows
//! keep compiling against the contiguous storage. [`RowMut`] is the writable
//! counterpart with the in-place set-algebra operations.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::bitvec::{Bits, Ones};
use crate::{kernel, BitVec};

/// An immutable view of one matrix row (or any borrowed bit string).
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> RowRef<'a> {
    /// Wraps a word slice holding `len` bits with a zeroed tail.
    pub(crate) fn new(words: &'a [u64], len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        RowRef { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero length (distinct from being all-zero).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing words (little-endian, tail bits zero).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernel::count(self.words)
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        kernel::is_zero(self.words)
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        kernel::first_one(self.words)
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn ones(&self) -> Ones<'a> {
        Ones::new(self.words)
    }

    /// Collects the indices of set bits into a `Vec`.
    pub fn to_indices(&self) -> Vec<usize> {
        self.ones().collect()
    }

    /// Copies the row into an owned [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        BitVec::from_bits(*self)
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset_of<B: Bits>(&self, other: B) -> bool {
        self.assert_same_len(&other);
        kernel::is_subset(self.words, other.word_slice())
    }

    /// Whether `self` and `other` share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_disjoint<B: Bits>(&self, other: B) -> bool {
        self.assert_same_len(&other);
        !kernel::intersects(self.words, other.word_slice())
    }

    /// Bitwise AND, producing an owned vector.
    pub fn and<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.to_bitvec();
        out.and_assign(other);
        out
    }

    /// Bitwise OR, producing an owned vector.
    pub fn or<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.to_bitvec();
        out.or_assign(other);
        out
    }

    /// Bitwise XOR, producing an owned vector.
    pub fn xor<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.to_bitvec();
        out.xor_assign(other);
        out
    }

    /// Set difference `self \ other`, producing an owned vector.
    pub fn difference<B: Bits>(&self, other: B) -> BitVec {
        let mut out = self.to_bitvec();
        out.difference_assign(other);
        out
    }

    fn assert_same_len<B: Bits>(&self, other: &B) {
        assert_eq!(
            self.len,
            other.bit_len(),
            "bit vector length mismatch: {} vs {}",
            self.len,
            other.bit_len()
        );
    }
}

impl Bits for RowRef<'_> {
    fn bit_len(&self) -> usize {
        self.len
    }
    fn word_slice(&self) -> &[u64] {
        self.words
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<BitVec> for RowRef<'_> {
    fn eq(&self, other: &BitVec) -> bool {
        self.len == other.len() && self.words == other.words()
    }
}

impl PartialEq<RowRef<'_>> for BitVec {
    fn eq(&self, other: &RowRef<'_>) -> bool {
        other == self
    }
}

impl Hash for RowRef<'_> {
    /// Hashes identically to the derived [`BitVec`] hash (length, then
    /// words), so a row view and its owned copy collide as map keys.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words.hash(state);
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowRef[{}]", self)
    }
}

impl fmt::Display for RowRef<'_> {
    /// Renders as a string of `0`/`1` characters, lowest index first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// A mutable view of one matrix row.
pub struct RowMut<'a> {
    words: &'a mut [u64],
    len: usize,
}

impl<'a> RowMut<'a> {
    /// Wraps a mutable word slice holding `len` bits with a zeroed tail.
    /// The view's operations preserve the tail invariant.
    pub(crate) fn new(words: &'a mut [u64], len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        RowMut { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> RowRef<'_> {
        RowRef::new(self.words, self.len)
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.as_ref().get(i)
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernel::count(self.words)
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        kernel::is_zero(self.words)
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites the row with the bits of `src`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from<B: Bits>(&mut self, src: B) {
        self.assert_same_len(&src);
        self.words.copy_from_slice(src.word_slice());
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::or_assign(self.words, other.word_slice());
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::and_assign(self.words, other.word_slice());
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::xor_assign(self.words, other.word_slice());
    }

    /// In-place set difference: clears every bit set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn difference_assign<B: Bits>(&mut self, other: B) {
        self.assert_same_len(&other);
        kernel::andnot_assign(self.words, other.word_slice());
    }

    fn assert_same_len<B: Bits>(&self, other: &B) {
        assert_eq!(
            self.len,
            other.bit_len(),
            "bit vector length mismatch: {} vs {}",
            self.len,
            other.bit_len()
        );
    }
}

impl Bits for RowMut<'_> {
    fn bit_len(&self) -> usize {
        self.len
    }
    fn word_slice(&self) -> &[u64] {
        self.words
    }
}

impl fmt::Debug for RowMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowMut[{}]", self.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<H: Hash>(h: &H) -> u64 {
        let mut s = DefaultHasher::new();
        h.hash(&mut s);
        s.finish()
    }

    #[test]
    fn rowref_matches_bitvec_semantics() {
        let v = BitVec::from_indices(70, [0, 33, 64, 69]);
        let r = RowRef::new(v.words(), v.len());
        assert_eq!(r.count_ones(), 4);
        assert_eq!(r.to_indices(), vec![0, 33, 64, 69]);
        assert_eq!(r.first_one(), Some(0));
        assert!(r.get(33) && !r.get(34));
        assert_eq!(r.to_bitvec(), v);
        assert_eq!(r, v);
        assert_eq!(v, r);
        assert_eq!(r.to_string(), v.to_string());
        assert_eq!(hash_of(&r), hash_of(&v));
    }

    #[test]
    fn rowmut_edits_preserve_tail() {
        let mut v = BitVec::zeros(70);
        let len = v.len();
        {
            let mut m = RowMut::new(v.words_mut(), len);
            m.set(69, true);
            m.or_assign(BitVec::from_indices(70, [1, 2]));
            m.difference_assign(BitVec::from_indices(70, [2]));
        }
        assert_eq!(v.to_indices(), vec![1, 69]);
        // XOR with an all-ones vector then AND back stays within the tail
        let ones = BitVec::ones_vec(70);
        {
            let mut m = RowMut::new(v.words_mut(), len);
            m.xor_assign(&ones);
        }
        assert_eq!(v.count_ones(), 68);
        assert!(v.is_subset_of(&ones));
    }
}
