//! Data-plane kernel and hot-loop profiler.
//!
//! Two sections:
//!
//! 1. **Kernel microbenches** — every word-packed `bitmatrix::kernel` entry
//!    point is timed against a per-bit reference implementation on the bench
//!    matrix shapes. The run *fails* (exit 1) if any kernel is slower than
//!    its reference: that is the word-packing contract, checked in CI.
//! 2. **Hot loops** — representative canonization, row-packing, DLX-setup
//!    and SAT-encoding workloads are driven end-to-end so the `kernel_us_*`
//!    histograms populate, then their summaries are printed.
//!
//! Output goes to stdout and `BENCH_profiling.json` (uploaded as a CI
//! artifact next to `BENCH_engine.json`).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bitmatrix::{kernel, BitMatrix};
use ebmf::gen::random_benchmark;
use ebmf::{EbmfEncoder, PackingConfig};
use engine::canonical_form;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bit widths matching the bench workloads: one-word rows (the 8×8 / 10×10
/// engine-bench shapes), the multi-word rows of the scaling bench, and a
/// deliberately unaligned width.
const WIDTHS: [usize; 3] = [64, 200, 1024];
const REPS: usize = 2_000;

/// Random word buffer of `bits` bits with ~40% occupancy (the bench-stream
/// density), tail bits clear.
fn random_words(bits: usize, rng: &mut StdRng) -> Vec<u64> {
    let stride = bits.div_ceil(64);
    let mut words: Vec<u64> = (0..stride)
        .map(|_| rng.next_u64() & rng.next_u64())
        .collect();
    if !bits.is_multiple_of(64) {
        words[stride - 1] &= (1u64 << (bits % 64)) - 1;
    }
    words
}

// ---- per-bit references -------------------------------------------------
// Deliberately naive: one `get`-style shift/mask per bit position, the way
// the pre-word-packed data plane walked rows.

fn bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 != 0
}

fn ref_count(a: &[u64], bits: usize) -> usize {
    (0..bits).filter(|&i| bit(a, i)).count()
}

fn ref_and_count(a: &[u64], b: &[u64], bits: usize) -> usize {
    (0..bits).filter(|&i| bit(a, i) && bit(b, i)).count()
}

fn ref_andnot_count(a: &[u64], b: &[u64], bits: usize) -> usize {
    (0..bits).filter(|&i| bit(a, i) && !bit(b, i)).count()
}

fn ref_intersects(a: &[u64], b: &[u64], bits: usize) -> bool {
    (0..bits).any(|i| bit(a, i) && bit(b, i))
}

fn ref_is_subset(a: &[u64], b: &[u64], bits: usize) -> bool {
    (0..bits).all(|i| !bit(a, i) || bit(b, i))
}

fn ref_andnot_assign(dst: &mut [u64], src: &[u64], bits: usize) {
    for i in 0..bits {
        if bit(src, i) {
            dst[i / 64] &= !(1u64 << (i % 64));
        }
    }
}

fn ref_first_one(a: &[u64], bits: usize) -> Option<usize> {
    (0..bits).find(|&i| bit(a, i))
}

fn ref_rank(a: &[u64], i: usize) -> usize {
    (0..i).filter(|&j| bit(a, j)).count()
}

fn ref_cmp_lex(a: &[u64], b: &[u64], bits: usize) -> std::cmp::Ordering {
    for i in 0..bits {
        match bit(a, i).cmp(&bit(b, i)) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

fn ref_ones_sum(a: &[u64], bits: usize) -> usize {
    (0..bits).filter(|&i| bit(a, i)).sum()
}

// ---- harness ------------------------------------------------------------

struct Measurement {
    name: &'static str,
    bits: usize,
    kernel_ns: f64,
    reference_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.kernel_ns.max(1e-9)
    }
}

/// Times `f` over `REPS` iterations, returning mean ns per call.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // One warm-up pass keeps the first-call cache misses out of the figure.
    f();
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    start.elapsed().as_nanos() as f64 / REPS as f64
}

fn measure<K: FnMut(), R: FnMut()>(
    name: &'static str,
    bits: usize,
    kernel: K,
    reference: R,
) -> Measurement {
    Measurement {
        name,
        bits,
        kernel_ns: time_ns(kernel),
        reference_ns: time_ns(reference),
    }
}

fn kernel_microbenches() -> Vec<Measurement> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);
    for bits in WIDTHS {
        let a = random_words(bits, &mut rng);
        let b = random_words(bits, &mut rng);
        // A guaranteed subset of `b`, so is_subset takes its full path.
        let sub: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        // Differs from `a` only in the last bit: lexicographic compare must
        // scan the whole width (random data would exit on the first bit).
        let mut a_twin = a.clone();
        *a_twin.last_mut().expect("nonempty") ^= 1u64 << ((bits - 1) % 64);
        let mut scratch = a.clone();
        out.push(measure(
            "count",
            bits,
            || {
                black_box(kernel::count(black_box(&a)));
            },
            || {
                black_box(ref_count(black_box(&a), bits));
            },
        ));
        out.push(measure(
            "and_count",
            bits,
            || {
                black_box(kernel::and_count(black_box(&a), black_box(&b)));
            },
            || {
                black_box(ref_and_count(black_box(&a), black_box(&b), bits));
            },
        ));
        out.push(measure(
            "andnot_count",
            bits,
            || {
                black_box(kernel::andnot_count(black_box(&a), black_box(&b)));
            },
            || {
                black_box(ref_andnot_count(black_box(&a), black_box(&b), bits));
            },
        ));
        out.push(measure(
            "intersects",
            bits,
            || {
                black_box(kernel::intersects(black_box(&sub), black_box(&b)));
            },
            || {
                black_box(ref_intersects(black_box(&sub), black_box(&b), bits));
            },
        ));
        out.push(measure(
            "is_subset",
            bits,
            || {
                black_box(kernel::is_subset(black_box(&sub), black_box(&b)));
            },
            || {
                black_box(ref_is_subset(black_box(&sub), black_box(&b), bits));
            },
        ));
        // Timed separately: the two closures cannot share `scratch`.
        let andnot_kernel_ns = time_ns(|| {
            scratch.copy_from_slice(&a);
            kernel::andnot_assign(black_box(&mut scratch), black_box(&b));
        });
        let andnot_reference_ns = time_ns(|| {
            scratch.copy_from_slice(&a);
            ref_andnot_assign(black_box(&mut scratch), black_box(&b), bits);
        });
        out.push(Measurement {
            name: "andnot_assign",
            bits,
            kernel_ns: andnot_kernel_ns,
            reference_ns: andnot_reference_ns,
        });
        out.push(measure(
            "first_one",
            bits,
            || {
                black_box(kernel::first_one(black_box(&sub)));
            },
            || {
                black_box(ref_first_one(black_box(&sub), bits));
            },
        ));
        out.push(measure(
            "rank",
            bits,
            || {
                black_box(kernel::rank(black_box(&a), bits - 1));
            },
            || {
                black_box(ref_rank(black_box(&a), bits - 1));
            },
        ));
        out.push(measure(
            "cmp_lex",
            bits,
            || {
                black_box(kernel::cmp_lex(black_box(&a), black_box(&a_twin)));
            },
            || {
                black_box(ref_cmp_lex(black_box(&a), black_box(&a_twin), bits));
            },
        ));
        out.push(measure(
            "ones",
            bits,
            || {
                black_box(kernel::ones(black_box(&a)).sum::<usize>());
            },
            || {
                black_box(ref_ones_sum(black_box(&a), bits));
            },
        ));
    }
    out
}

/// Drives the measured hot loops end-to-end so the `kernel_us_*` histograms
/// populate: canonization (refine + search), row packing with and without
/// the DLX exact-cover step, and the SAT pair-constraint encoder.
fn drive_hot_loops() {
    let mats: Vec<BitMatrix> = (0..8)
        .map(|i| random_benchmark(10, 10, 0.4, 9_000 + i as u64).matrix)
        .collect();
    for m in &mats {
        black_box(canonical_form(m));
        let greedy = PackingConfig {
            trials: 16,
            ..PackingConfig::default()
        };
        black_box(ebmf::row_packing(m, &greedy));
        let dlx = PackingConfig {
            trials: 16,
            exact_cover: true,
            ..PackingConfig::default()
        };
        black_box(ebmf::row_packing(m, &dlx));
        black_box(EbmfEncoder::new(m, 6));
    }
}

fn main() {
    let measurements = kernel_microbenches();
    let mut failed = false;
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>9}",
        "kernel", "bits", "packed ns", "per-bit ns", "speedup"
    );
    for m in &measurements {
        println!(
            "{:<14} {:>6} {:>12.1} {:>12.1} {:>8.1}x",
            m.name,
            m.bits,
            m.kernel_ns,
            m.reference_ns,
            m.speedup()
        );
        if m.kernel_ns >= m.reference_ns {
            eprintln!(
                "FAIL: kernel {} ({} bits) is not faster than its per-bit \
                 reference ({:.1} ns vs {:.1} ns)",
                m.name, m.bits, m.kernel_ns, m.reference_ns
            );
            failed = true;
        }
    }

    drive_hot_loops();
    println!("\nhot-loop histograms (us):");
    let mut json = String::from("{\n  \"bench\": \"profiling\",\n  \"kernels\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"bits\": {}, \"packed_ns\": {:.1}, \
             \"per_bit_ns\": {:.1}, \"speedup\": {:.1} }}{comma}",
            m.name,
            m.bits,
            m.kernel_ns,
            m.reference_ns,
            m.speedup()
        );
    }
    json.push_str("  ],\n  \"hot_loops_us\": {\n");
    let hot: Vec<_> = obs::registry()
        .histogram_summaries()
        .into_iter()
        .filter(|(name, _)| name.starts_with(obs::names::KERNEL_US_PREFIX))
        .collect();
    for (i, (name, s)) in hot.iter().enumerate() {
        let comma = if i + 1 == hot.len() { "" } else { "," };
        println!(
            "  {name}: n={} sum={} p50={} p90={} max={}",
            s.count, s.sum, s.p50, s.p90, s.max
        );
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"max\": {} }}{comma}",
            s.count, s.sum, s.p50, s.p90, s.p99, s.max,
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_profiling.json", &json).expect("write BENCH_profiling.json");

    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "profiling OK: {} kernel measurements, all faster than per-bit references",
        measurements.len()
    );
}
