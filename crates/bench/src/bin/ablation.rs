//! Ablation study of the design choices called out in the paper.
//!
//! §III-B names two rejected compromises for row packing — (1) dropping the
//! basis update, (2) sorting rows by sparsity instead of shuffling — and
//! §VI proposes exact-cover decomposition as an upgrade. This binary
//! measures all four variants on the gap and random families. A separate
//! section measures the effect of symmetry breaking on the SAT phase.
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin ablation
//! ```

use std::time::Instant;

use ebmf::gen::{gap_benchmark, random_benchmark, Benchmark};
use ebmf::{binary_rank, row_packing, EbmfEncoder, PackingConfig, RowOrder};

fn variant_configs() -> Vec<(&'static str, PackingConfig)> {
    let base = PackingConfig {
        trials: 10,
        ..PackingConfig::default()
    };
    vec![
        ("shuffle+update (paper)", base),
        (
            "no basis update",
            PackingConfig {
                basis_update: false,
                ..base
            },
        ),
        (
            "sparsest-first order",
            PackingConfig {
                order: RowOrder::SparsestFirst,
                ..base
            },
        ),
        (
            "exact-cover (DLX)",
            PackingConfig {
                exact_cover: true,
                ..base
            },
        ),
    ]
}

fn main() {
    let mut benches: Vec<Benchmark> = Vec::new();
    for k in 2..=5 {
        for c in 0..10 {
            benches.push(gap_benchmark(10, 10, k, 500 + (k * 10 + c) as u64));
        }
    }
    for occ10 in [3, 5, 7] {
        for c in 0..10 {
            benches.push(random_benchmark(
                10,
                10,
                occ10 as f64 / 10.0,
                600 + (occ10 * 10 + c) as u64,
            ));
        }
    }
    let optima: Vec<usize> = benches.iter().map(|b| binary_rank(&b.matrix)).collect();

    println!(
        "ROW PACKING VARIANTS ({} instances: gap 2-5 + random 30/50/70%)",
        benches.len()
    );
    println!(
        "{:<24} {:>10} {:>12} {:>12}",
        "variant", "% optimal", "avg depth", "avg excess"
    );
    for (name, cfg) in variant_configs() {
        let mut optimal_hits = 0usize;
        let mut depth_sum = 0usize;
        let mut excess_sum = 0usize;
        for (bench, &opt) in benches.iter().zip(&optima) {
            let p = row_packing(&bench.matrix, &cfg);
            depth_sum += p.len();
            excess_sum += p.len() - opt;
            if p.len() == opt {
                optimal_hits += 1;
            }
        }
        println!(
            "{:<24} {:>9.0}% {:>12.2} {:>12.2}",
            name,
            100.0 * optimal_hits as f64 / benches.len() as f64,
            depth_sum as f64 / benches.len() as f64,
            excess_sum as f64 / benches.len() as f64,
        );
    }

    println!("\nSYMMETRY BREAKING IN THE SAT PHASE (UNSAT proofs at b = r_B - 1)");
    println!(
        "{:<24} {:>14} {:>14}",
        "instance", "with SB (s)", "without SB (s)"
    );
    for (bench, &opt) in benches.iter().zip(&optima).take(6) {
        if opt <= 1 {
            continue;
        }
        let time_solve = |sb: bool| {
            let t = Instant::now();
            let mut enc = EbmfEncoder::with_options(&bench.matrix, None, opt - 1, sb);
            let r = enc.solve();
            assert!(r.is_unsat(), "b = r_B - 1 must be UNSAT");
            t.elapsed().as_secs_f64()
        };
        println!(
            "{:<24} {:>14.3} {:>14.3}",
            format!("{} #{}", bench.params, bench.seed),
            time_solve(true),
            time_solve(false),
        );
    }
}
