//! Regenerates **Table I** of the paper: percentage of cases where each
//! method (trivial heuristic, row packing × {1, 10, 100, 1000} trials)
//! finds an optimal solution, per benchmark family, plus the `rank` column
//! (% of cases with real rank == binary rank).
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin table1            # paper scale
//! cargo run --release -p rect-addr-bench --bin table1 -- quick   # reduced scale
//! ```
//!
//! Paper scale: 10 instances per parameter cell and 100 per gap family
//! (820 instances); `quick` cuts both (~170 instances). Optimality is
//! certified by SAP for every ≤ 10-row instance; 100×100 instances are
//! certified when a heuristic matches the rank bound (paper's ‡ note).

use std::time::{Duration, Instant};

use rect_addr_bench::{render_table1, run_table1};

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let (per_cell, gap_cases) = if quick { (2, 20) } else { (10, 100) };
    eprintln!(
        "running Table I at {} scale: {per_cell}/cell, {gap_cases}/gap family ...",
        if quick { "quick" } else { "paper" }
    );
    let t0 = Instant::now();
    let (rows, cases) = run_table1(
        per_cell,
        gap_cases,
        Some(2_000_000),
        Some(Duration::from_secs(120)),
        10,
    );
    println!("{}", render_table1(&rows));
    let certified = cases.iter().filter(|(_, c)| c.optimal.is_some()).count();
    println!(
        "{} instances, {} certified optimal, wall time {:.1}s",
        cases.len(),
        certified,
        t0.elapsed().as_secs_f64()
    );
}
