//! Empirical check of the paper's §III-B complexity claim: row packing is
//! `O(n³ k)` for `k` trials and `n = max(rows, cols)`.
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin scaling
//! ```
//!
//! Doubling `n` should multiply the per-trial time by ≈ 8 (cubic). The
//! bit-packed rows make the constant tiny (the innermost vector ops are
//! `n/64` words), so the observed exponent can undershoot 3 until `n`
//! clears the word width.

use std::time::Instant;

use ebmf::gen::random_benchmark;
use ebmf::{row_packing, PackingConfig};

fn main() {
    const TRIALS: usize = 10;
    println!(
        "row packing runtime vs matrix size ({} trials, 20% occupancy)",
        TRIALS
    );
    println!("{:>6} {:>12} {:>12}", "n", "seconds", "ratio");
    let mut prev: Option<f64> = None;
    for n in [25usize, 50, 100, 200, 400] {
        let m = random_benchmark(n, n, 0.2, n as u64).matrix;
        // Warm once, then time.
        let cfg = PackingConfig::with_trials(TRIALS);
        let _ = row_packing(&m, &cfg);
        let t = Instant::now();
        let p = row_packing(&m, &cfg);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.4} {:>12}",
            n,
            secs,
            match prev {
                Some(pr) => format!("x{:.1}", secs / pr),
                None => "-".to_string(),
            }
        );
        prev = Some(secs);
        assert!(p.validate(&m).is_ok());
    }
    println!(
        "\npaper §III-B bounds row packing by O(n³k); with 64-bit word packing\n\
         the innermost loop is n/64 word ops, so the observed growth sits well\n\
         below the x8-per-doubling cubic ceiling (typically x3–x4 here)."
    );
}
