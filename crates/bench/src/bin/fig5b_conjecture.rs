//! Regenerates the **Figure 5b discussion** of §V: for 1D logical memory
//! blocks, row-by-row addressing is conjectured to be usually optimal
//! because wide random matrices are almost surely full (real) rank —
//! "given the same occupancy, the 10×20 and 10×30 random matrices are much
//! easier to be full rank than the 10×10 matrices."
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin fig5b_conjecture
//! ```

use qaddress::{row_optimality_frequency, BlockLayout};

fn main() {
    const SAMPLES: usize = 100;
    println!("frequency of row-by-row addressing being PROVABLY optimal");
    println!("({SAMPLES} random patterns per cell, provable = #distinct rows == real rank)\n");
    print!("{:>10}", "occupancy");
    let layouts = [(10usize, 10usize), (10, 20), (10, 30)];
    for (b, s) in layouts {
        print!("{:>9}", format!("{b}x{s}"));
    }
    println!();
    for occ10 in 1..=9 {
        let occ = occ10 as f64 / 10.0;
        print!("{:>9.0}%", occ * 100.0);
        for (idx, (blocks, size)) in layouts.into_iter().enumerate() {
            let freq = row_optimality_frequency(
                BlockLayout::new(blocks, size),
                occ,
                SAMPLES,
                1000 + (occ10 * 10 + idx) as u64,
            );
            print!("{:>8.0}%", freq * 100.0);
        }
        println!();
    }
    println!("\nwider blocks are full rank far more often (paper §V, Fig. 5b):");
    println!("when full rank, one shot per distinct row is depth-optimal.");
}
