//! Explores §V's open question: is the binary rank multiplicative under
//! tensor products? For random small pairs `(M̂, M)` this computes the
//! exact `r_B` of both factors **and of the product**, against Watson's
//! Eq. 5 lower bound and the tensor-partition upper bound.
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin tensor_bounds
//! ```

use bitmatrix::random_matrix;
use ebmf::{sap, tensor_bounds, SapConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "pair", "rB(A)", "rB(B)", "eq5 lower", "rB(A⊗B)", "upper rB·rB"
    );
    let mut rng = StdRng::seed_from_u64(2024);
    let mut multiplicative = 0;
    let mut total = 0;
    for pair in 0..10 {
        let a = random_matrix(3, 3, 0.55, &mut rng);
        let b = random_matrix(3, 3, 0.55, &mut rng);
        if a.is_zero() || b.is_zero() {
            continue;
        }
        let tb = tensor_bounds(&a, &b);
        let kron = a.kron(&b);
        let exact = sap(&kron, &SapConfig::with_trials(50));
        assert!(exact.proved_optimal, "9x9 products are certifiable");
        let rbk = exact.depth();
        assert!(
            tb.lower <= rbk && rbk <= tb.upper,
            "Eq. 5 sandwich violated"
        );
        total += 1;
        if rbk == tb.upper {
            multiplicative += 1;
        }
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>12} {:>12}{}",
            format!("#{pair}"),
            tb.rb_logical,
            tb.rb_physical,
            tb.lower,
            rbk,
            tb.upper,
            if rbk < tb.upper {
                "  <- strictly sub-multiplicative!"
            } else {
                ""
            },
        );
    }
    println!(
        "\n{multiplicative}/{total} pairs attained the product upper bound; \
         no Eq. 5 violation observed (consistent with the open conjecture)."
    );
}
