//! Engine throughput + canonical-cache hit-rate benchmark.
//!
//! Streams a synthetic circuit-layer workload — distinct random patterns
//! plus row/column-permuted duplicates, the redundancy profile the
//! canonical-form cache targets — through `Engine::run_batch`, once against
//! a cold cache and once replaying the same stream warm. Emits
//! `BENCH_engine.json` in the working directory.
//!
//! Usage: `engine_bench [jobs] [distinct] [size] [workers]`
//! (defaults: 400 jobs, 50 distinct 10×10 patterns, CPU workers).

use std::fmt::Write as _;
use std::time::Instant;

use bitmatrix::BitMatrix;
use ebmf::gen::random_benchmark;
use engine::protocol::{JobRequest, JobResponse};
use engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct RunMetrics {
    wall_seconds: f64,
    jobs_per_second: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    mean_job_millis: f64,
    max_job_millis: f64,
    proved_optimal: usize,
}

fn build_stream(jobs: usize, distinct: usize, size: usize) -> String {
    let bases: Vec<BitMatrix> = (0..distinct)
        .map(|i| random_benchmark(size, size, 0.4, 9_000 + i as u64).matrix)
        .collect();
    let mut rng = StdRng::seed_from_u64(123);
    let mut out = String::new();
    for i in 0..jobs {
        let base = &bases[i % bases.len()];
        let matrix = if i < bases.len() {
            base.clone()
        } else {
            let rp = bitmatrix::random_permutation(base.nrows(), &mut rng);
            let cp = bitmatrix::random_permutation(base.ncols(), &mut rng);
            base.submatrix(&rp, &cp)
        };
        let req = JobRequest {
            id: format!("job-{i:04}"),
            matrix,
            budget_ms: Some(10_000),
            conflicts: None,
        };
        out.push_str(&req.to_json_line());
        out.push('\n');
    }
    out
}

fn run_stream(engine: &Engine, stream: &str, jobs: usize) -> RunMetrics {
    let before = engine.cache_stats();
    let start = Instant::now();
    let mut raw = Vec::new();
    let summary = engine
        .run_batch(stream.as_bytes(), &mut raw)
        .expect("in-memory batch cannot fail on I/O");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(summary.solved, jobs, "every job must solve");

    let responses: Vec<JobResponse> = String::from_utf8(raw)
        .expect("responses are UTF-8")
        .lines()
        .map(|l| JobResponse::parse_line(l).expect("well-formed response"))
        .collect();
    let after = engine.cache_stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let mean = responses.iter().map(|r| r.millis).sum::<f64>() / responses.len().max(1) as f64;
    let max = responses.iter().map(|r| r.millis).fold(0.0, f64::max);
    RunMetrics {
        wall_seconds: wall,
        jobs_per_second: jobs as f64 / wall,
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        mean_job_millis: mean,
        max_job_millis: max,
        proved_optimal: responses.iter().filter(|r| r.proved_optimal).count(),
    }
}

fn emit(out: &mut String, label: &str, m: &RunMetrics, last: bool) {
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"wall_seconds\": {:.4},\n    \"jobs_per_second\": {:.1},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"hit_rate\": {:.4},\n    \
         \"mean_job_millis\": {:.3},\n    \"max_job_millis\": {:.3},\n    \
         \"proved_optimal\": {}\n  }}{}\n",
        m.wall_seconds,
        m.jobs_per_second,
        m.cache_hits,
        m.cache_misses,
        m.hit_rate,
        m.mean_job_millis,
        m.max_job_millis,
        m.proved_optimal,
        if last { "" } else { "," },
    );
}

fn main() {
    let arg = |i: usize, default: usize| {
        std::env::args()
            .nth(i)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let jobs = arg(1, 400);
    let distinct = arg(2, 50).max(1);
    let size = arg(3, 10);
    let workers = arg(4, 0);

    let stream = build_stream(jobs, distinct, size);
    let engine = Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    });

    eprintln!("engine_bench: {jobs} jobs, {distinct} distinct {size}x{size} patterns");
    let cold = run_stream(&engine, &stream, jobs);
    eprintln!(
        "cold: {:.0} jobs/s, hit rate {:.1}%",
        cold.jobs_per_second,
        cold.hit_rate * 100.0
    );
    // Same stream again: every job is now a canonical-cache hit.
    let warm = run_stream(&engine, &stream, jobs);
    eprintln!(
        "warm: {:.0} jobs/s, hit rate {:.1}%",
        warm.jobs_per_second,
        warm.hit_rate * 100.0
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"engine\",\n  \"jobs\": {jobs},\n  \"distinct\": {distinct},\n  \
         \"size\": {size},\n  \"duplicate_fraction\": {:.4},\n",
        (jobs.saturating_sub(distinct)) as f64 / jobs.max(1) as f64,
    );
    emit(&mut json, "cold", &cold, false);
    emit(&mut json, "warm", &warm, true);
    json.push_str("}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("{json}");
}
