//! Engine throughput + canonical-cache hit-rate + warm-start benchmark.
//!
//! Phase 1 streams a synthetic circuit-layer workload — distinct random
//! patterns plus row/column-permuted duplicates, the redundancy profile the
//! canonical-form cache targets — through the `Service` connection loop,
//! once against a cold cache and once replaying the same stream warm.
//!
//! Phase 2 measures the **warm-start SAP descent**: a sequence of
//! cache-adjacent jobs (permuted duplicates of one SAT-hard rank-gap
//! pattern, each under a small conflict budget) against an engine with the
//! per-canonical-class session store on vs off. With warm starts each job
//! *resumes* the previous descent, so total SAT conflicts approach the cost
//! of a single full descent; without, every job re-spends its budget from
//! scratch.
//!
//! Phase 3 measures the **complete canonizer** on a permuted-biregular
//! workload: row/column-permuted copies of patterns whose degrees all tie
//! (the paper's Fig. 1b plus constructed biregular families), where
//! signature refinement alone cannot split anything and the heuristic
//! settling misses. Individualization-refinement recognizes every permuted
//! copy.
//!
//! Phase 4 measures the **socket front-end**: the phase-1 stream replayed
//! over a real TCP connection against `serve_socket` (protocol v2
//! handshake included), so the wire/transport overhead of the serving
//! stack lands in the trajectory next to the in-process numbers.
//!
//! Phase 7 streams the **seeded traffic-generator mixes** (Zipf hot
//! classes, bursty arrivals, circuit layers, adversarial strongly-regular
//! matrices) through fresh services, and submits one circuit layer
//! sequence both as a protocol-v2 `schedule` frame and as independent
//! jobs — the schedule summary's cross-layer cache hits are the headline
//! reuse figure (`--check` gates them above zero). Emits
//! `BENCH_engine.json` in the working directory.
//!
//! Usage: `engine_bench [jobs] [distinct] [size] [workers] [--check]`
//! (defaults: 400 jobs, 50 distinct 10×10 patterns, CPU workers).
//! `--check` exits non-zero when the permuted-biregular hit-rate of the
//! complete canonizer falls below 90% — the CI regression gate.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bitmatrix::BitMatrix;
use ebmf::gen::{gap_benchmark, random_benchmark};
use engine::protocol::{JobRequest, JobResponse, SummaryFrame};
use engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{
    pump, serve_connection, serve_socket, serve_socket_event, BindAddr, LineClient, PersistConfig,
    Service, ServiceConfig,
};

struct RunMetrics {
    wall_seconds: f64,
    jobs_per_second: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    mean_job_millis: f64,
    max_job_millis: f64,
    proved_optimal: usize,
}

fn build_stream(jobs: usize, distinct: usize, size: usize) -> String {
    let bases: Vec<BitMatrix> = (0..distinct)
        .map(|i| random_benchmark(size, size, 0.4, 9_000 + i as u64).matrix)
        .collect();
    let mut rng = StdRng::seed_from_u64(123);
    let mut out = String::new();
    for i in 0..jobs {
        let base = &bases[i % bases.len()];
        let matrix = if i < bases.len() {
            base.clone()
        } else {
            let rp = bitmatrix::random_permutation(base.nrows(), &mut rng);
            let cp = bitmatrix::random_permutation(base.ncols(), &mut rng);
            base.submatrix(&rp, &cp)
        };
        let req = JobRequest::new(format!("job-{i:04}"), matrix).with_budget_ms(10_000);
        out.push_str(&req.to_json_line());
        out.push('\n');
    }
    out
}

/// Runs the stream and folds every response's reported solve time into
/// `latency` (as microseconds) — one histogram per arm, shared across
/// warm replays so the percentiles aggregate naturally.
fn run_stream(
    service: &Service,
    stream: &str,
    jobs: usize,
    latency: &obs::Histogram,
) -> RunMetrics {
    let engine = service.engine();
    let before = engine.cache_stats();
    let start = Instant::now();
    let mut raw = Vec::new();
    let summary = serve_connection(service, stream.as_bytes(), &mut raw)
        .expect("in-memory batch cannot fail on I/O");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(summary.solved, jobs, "every job must solve");

    let responses: Vec<JobResponse> = String::from_utf8(raw)
        .expect("responses are UTF-8")
        .lines()
        .filter(|l| !SummaryFrame::is_summary_line(l))
        .map(|l| JobResponse::parse_line(l).expect("well-formed response"))
        .collect();
    for r in &responses {
        latency.record((r.millis * 1_000.0).max(0.0) as u64);
    }
    let after = engine.cache_stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let mean = responses.iter().map(|r| r.millis).sum::<f64>() / responses.len().max(1) as f64;
    let max = responses.iter().map(|r| r.millis).fold(0.0, f64::max);
    RunMetrics {
        wall_seconds: wall,
        jobs_per_second: jobs as f64 / wall,
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        mean_job_millis: mean,
        max_job_millis: max,
        proved_optimal: responses.iter().filter(|r| r.proved_optimal).count(),
    }
}

/// Emits one run block. `replays` marks a phase aggregated over several
/// stream replays (counts are totals across all of them).
fn emit(out: &mut String, label: &str, m: &RunMetrics, replays: Option<usize>, last: bool) {
    let _ = writeln!(out, "  \"{label}\": {{");
    if let Some(r) = replays {
        let _ = writeln!(out, "    \"replays\": {r},");
    }
    let _ = write!(
        out,
        "    \"wall_seconds\": {:.4},\n    \"jobs_per_second\": {:.1},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"hit_rate\": {:.4},\n    \
         \"mean_job_millis\": {:.3},\n    \"max_job_millis\": {:.3},\n    \
         \"proved_optimal\": {}\n  }}{}\n",
        m.wall_seconds,
        m.jobs_per_second,
        m.cache_hits,
        m.cache_misses,
        m.hit_rate,
        m.mean_job_millis,
        m.max_job_millis,
        m.proved_optimal,
        if last { "" } else { "," },
    );
}

/// Emits one per-arm latency-percentile block (microsecond buckets from
/// the log-linear histogram, so p50/p90/p99 are bucket floors).
fn emit_latency(out: &mut String, label: &str, s: &obs::HistogramSummary, last: bool) {
    let _ = write!(
        out,
        "    \"{label}\": {{\n      \"count\": {},\n      \"p50\": {},\n      \
         \"p90\": {},\n      \"p99\": {},\n      \"max\": {}\n    }}{}\n",
        s.count,
        s.p50,
        s.p90,
        s.p99,
        s.max,
        if last { "" } else { "," },
    );
}

/// Totals of one warm-start arm (see module docs).
struct WarmStartArm {
    total_conflicts: u64,
    /// 1-based job index whose answer was first proved optimal (0 = never).
    proved_after_jobs: usize,
}

/// Runs `rounds` sequential cache-adjacent jobs (resubmissions of one
/// SAT-hard pattern, small per-query conflict budget) through `engine` —
/// the retry-with-budget serving pattern. Identical resubmission (rather
/// than permuted duplicates) keeps the SAT ordering fixed so the two arms
/// differ only in warm-start reuse, not in per-ordering search luck.
fn warm_start_arm(engine: &Engine, rounds: usize, conflict_budget: u64) -> WarmStartArm {
    // A rank-gap instance whose final UNSAT query costs >20k conflicts —
    // an order of magnitude past the per-query budget, so only resumed
    // descents can finish inside the round limit.
    let base = gap_benchmark(14, 14, 6, 0).matrix;
    let mut total_conflicts = 0u64;
    let mut proved_after_jobs = 0usize;
    for round in 0..rounds {
        let req = JobRequest::new(format!("warm-{round:02}"), base.clone())
            .with_budget_ms(60_000)
            .with_conflicts(conflict_budget);
        let resp = engine.solve_job(&req);
        assert!(resp.ok, "warm-start job must solve");
        total_conflicts += resp.conflicts;
        if resp.proved_optimal && proved_after_jobs == 0 {
            proved_after_jobs = round + 1;
        }
    }
    WarmStartArm {
        total_conflicts,
        proved_after_jobs,
    }
}

fn emit_warm_start(
    out: &mut String,
    rounds: usize,
    budget: u64,
    warm: &WarmStartArm,
    cold: &WarmStartArm,
) {
    let _ = write!(
        out,
        "  \"warm_start\": {{\n    \"rounds\": {rounds},\n    \"conflict_budget\": {budget},\n    \
         \"warm_total_conflicts\": {},\n    \"warm_proved_after_jobs\": {},\n    \
         \"cold_total_conflicts\": {},\n    \"cold_proved_after_jobs\": {},\n    \
         \"conflict_ratio\": {:.4}\n  }},\n",
        warm.total_conflicts,
        warm.proved_after_jobs,
        cold.total_conflicts,
        cold.proved_after_jobs,
        warm.total_conflicts as f64 / cold.total_conflicts.max(1) as f64,
    );
}

/// The biregular base patterns of the canonizer workload (phase 3): every
/// row and column degree ties, so signature refinement alone cannot split
/// anything, and the block/union structure makes the heuristic settling
/// order ambiguous — permuted copies scatter across many heuristic keys.
fn biregular_bases() -> Vec<BitMatrix> {
    // The paper's Fig. 1b: 6×6, 3-regular on both sides.
    let fig1b: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .expect("fig1b parses");
    // Disjoint unions of k copies (block-diagonal; still 3-regular).
    let union = |m: &BitMatrix, copies: usize| {
        let (r, c) = m.shape();
        BitMatrix::from_fn(r * copies, c * copies, |i, j| {
            i / r == j / c && m.get(i % r, j % c)
        })
    };
    vec![
        fig1b.clone(),
        union(&fig1b, 2),
        union(&fig1b, 4),
        fig1b.kron(&BitMatrix::identity(3)),
    ]
}

/// Results of one canonizer-workload arm (phase 3).
struct CanonArm {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    complete_keys: u64,
    heuristic_keys: u64,
    entries: u64,
}

/// Streams 32 row/column-permuted duplicates of every biregular base
/// through a fresh engine whose canonizer search budget is `max_branches`,
/// and reports the cache hit-rate. The complete canonizer (default budget)
/// makes every copy after a base's first a hit; at budget 0 the heuristic
/// labeling scatters each class across several entries. SAT and DLX are off
/// — the phase measures canonization, not solving.
fn canon_arm(stream: &str, jobs: usize, max_branches: usize) -> CanonArm {
    let service = Service::with_engine_config(
        EngineConfig {
            portfolio: engine::PortfolioConfig {
                sap: false,
                exact_cover: false,
                packing_trials: 16,
                ..engine::PortfolioConfig::default()
            },
            canon: engine::CanonOptions { max_branches },
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    );
    let mut raw = Vec::new();
    let summary = serve_connection(&service, stream.as_bytes(), &mut raw)
        .expect("in-memory batch cannot fail on I/O");
    assert_eq!(summary.solved, jobs, "every canon job must solve");
    let stats = service.engine().cache_stats();
    CanonArm {
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        complete_keys: stats.canon_complete,
        heuristic_keys: stats.canon_heuristic,
        entries: stats.entries,
    }
}

/// Builds the permuted-biregular stream and runs both canonizer arms.
fn canon_workload(copies: usize) -> (usize, CanonArm, CanonArm) {
    let bases = biregular_bases();
    let mut rng = StdRng::seed_from_u64(4242);
    let mut stream = String::new();
    let mut jobs = 0usize;
    for (b, base) in bases.iter().enumerate() {
        for c in 0..copies {
            let matrix = if c == 0 {
                base.clone()
            } else {
                let rp = bitmatrix::random_permutation(base.nrows(), &mut rng);
                let cp = bitmatrix::random_permutation(base.ncols(), &mut rng);
                base.submatrix(&rp, &cp)
            };
            let req = JobRequest::new(format!("canon-{b}-{c:02}"), matrix).with_budget_ms(2_000);
            stream.push_str(&req.to_json_line());
            stream.push('\n');
            jobs += 1;
        }
    }
    let complete = canon_arm(&stream, jobs, engine::DEFAULT_CANON_BUDGET);
    let heuristic = canon_arm(&stream, jobs, 0);
    (jobs, complete, heuristic)
}

fn emit_canon_arm(out: &mut String, label: &str, a: &CanonArm, last: bool) {
    let _ = write!(
        out,
        "    \"{label}\": {{\n      \"cache_hits\": {},\n      \"cache_misses\": {},\n      \
         \"hit_rate\": {:.4},\n      \"cache_entries\": {},\n      \
         \"canon_complete\": {},\n      \"canon_heuristic\": {}\n    }}{}\n",
        a.hits,
        a.misses,
        a.hit_rate,
        a.entries,
        a.complete_keys,
        a.heuristic_keys,
        if last { "" } else { "," },
    );
}

/// Results of the persistence phase: the warm-start workload against a
/// first-boot engine (snapshotted on completion) vs a fresh engine
/// reloaded from that snapshot — the restart cycle without the process
/// kill.
struct PersistMetrics {
    cold_total_conflicts: u64,
    reloaded_total_conflicts: u64,
    reload_ratio: f64,
    restored_sessions: u64,
    snapshot_bytes: usize,
}

/// Phase 5: solve → snapshot → simulated-restart reload → re-solve. The
/// reloaded engine rehydrates the proved session's learnt core per
/// canonical class, so the second pass spends a fraction of the first's
/// conflicts (the `persist` block's `reload_ratio`, gated < 0.6 by
/// `--check`).
fn persist_phase(rounds: usize, conflict_budget: u64) -> PersistMetrics {
    let state_dir =
        std::env::temp_dir().join(format!("rect-addr-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let engine_config = || EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    // First boot: day-zero cold state dir.
    let first_boot = Engine::new(engine_config());
    let cold = warm_start_arm(&first_boot, rounds, conflict_budget);
    let saved =
        engine::persist::save_snapshot(&state_dir, &first_boot).expect("bench snapshot save");
    drop(first_boot);

    // Simulated restart: a fresh engine loads the same state dir.
    let reloaded_engine = Engine::new(engine_config());
    engine::persist::load_snapshot(&state_dir, &reloaded_engine).expect("bench snapshot load");
    let restored_sessions = reloaded_engine.restored_sessions();
    let reloaded = warm_start_arm(&reloaded_engine, rounds, conflict_budget);

    let _ = std::fs::remove_dir_all(&state_dir);
    PersistMetrics {
        cold_total_conflicts: cold.total_conflicts,
        reloaded_total_conflicts: reloaded.total_conflicts,
        reload_ratio: reloaded.total_conflicts as f64 / cold.total_conflicts.max(1) as f64,
        restored_sessions,
        snapshot_bytes: saved.bytes,
    }
}

/// Results of the certification phase: every UNSAT-backed optimality
/// answer in the workload — cold one-shot solves and budget-starved warm
/// resumed descents alike — exports a certificate the embedded checker
/// verifies; deterministic corruptions of each accepted proof must be
/// rejected. Any violation panics, so the bench exits non-zero.
struct CertifyMetrics {
    cold_jobs: usize,
    cold_certificates: usize,
    warm_rounds: usize,
    mutants_rejected: usize,
    check_seconds: f64,
}

/// Phase 6: certification. Runs after (and separate from) the gated
/// baseline phases, so certification cost never perturbs the throughput
/// and conflict-ratio numbers the `--check-baseline` gate compares.
fn certify_phase() -> CertifyMetrics {
    let fig1b: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .expect("fig1b parses");
    let mut bases = vec![fig1b];
    bases.extend((0..6).map(|i| gap_benchmark(8, 8, 3, i).matrix));
    bases.extend((0..6).map(|i| random_benchmark(7, 7, 0.45, 77 + i as u64).matrix));

    // Cold arm: one-shot certified solves.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let mut certificates = Vec::new();
    for (i, m) in bases.iter().enumerate() {
        let req = JobRequest::new(format!("cert-cold-{i:02}"), m.clone())
            .with_budget_ms(60_000)
            .with_certify(true);
        let resp = engine.solve_job(&req);
        assert!(resp.ok && resp.proved_optimal, "certify job must prove");
        if let Some(cert) = resp.certificate {
            assert_eq!(cert.bound + 1, resp.depth, "refutes the bound below");
            certificates.push(cert);
        }
    }
    let cold_jobs = bases.len();
    let cold_certificates = certificates.len();
    assert!(
        cold_certificates > 0,
        "workload must exercise UNSAT-backed proofs"
    );

    // Warm arm: a budget-starved descent resumed across jobs until the
    // proving round — its certificate must check exactly like a cold one.
    let warm_engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    // The same SAT-hard rank-gap pattern the warm-start phase descends:
    // its final UNSAT query far exceeds the per-job budget, so only a
    // resumed descent proves — and must certify the resumed refutation.
    let base = gap_benchmark(14, 14, 6, 0).matrix;
    let mut warm_rounds = 0usize;
    loop {
        warm_rounds += 1;
        assert!(warm_rounds < 10_000, "warm certify arm must converge");
        let req = JobRequest::new(format!("cert-warm-{warm_rounds:03}"), base.clone())
            .with_budget_ms(60_000)
            .with_conflicts(2_500)
            .with_certify(true);
        let resp = warm_engine.solve_job(&req);
        assert!(resp.ok, "warm certify job must solve");
        if resp.proved_optimal {
            let cert = resp
                .certificate
                .expect("the proving round of a certified warm descent exports the refutation");
            certificates.push(cert);
            break;
        }
    }

    // Every accepted certificate verifies under the embedded checker, and
    // deterministic corruptions of each are rejected (truncating the trace
    // removes the refutation; injected garbage is a parse error).
    let start = Instant::now();
    let mut mutants_rejected = 0usize;
    for cert in &certificates {
        certcheck::check_certificate(&cert.cnf, &cert.drat)
            .expect("bench-workload certificate must verify");
        let truncated: String = {
            let lines: Vec<&str> = cert.drat.lines().collect();
            lines[..lines.len() - 1].join("\n")
        };
        assert!(
            certcheck::check_certificate(&cert.cnf, &truncated).is_err(),
            "truncated proof must be rejected"
        );
        let garbled = format!("not a drat line\n{}", cert.drat);
        assert!(
            certcheck::check_certificate(&cert.cnf, &garbled).is_err(),
            "garbled proof must be rejected"
        );
        mutants_rejected += 2;
    }
    CertifyMetrics {
        cold_jobs,
        cold_certificates,
        warm_rounds,
        mutants_rejected,
        check_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Results of the socket phase: the phase-1 stream over a real TCP
/// connection (v2 handshake included).
struct SocketMetrics {
    wall_seconds: f64,
    jobs_per_second: f64,
    hit_rate: f64,
}

fn socket_phase(stream: &str, jobs: usize, workers: usize) -> SocketMetrics {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        ServiceConfig {
            // pump() floods the whole stream at once over a v2 connection
            // (non-blocking submits): size the queue to the job count so
            // the bench measures throughput, not busy-bounces.
            queue_depth: jobs.max(serve::DEFAULT_QUEUE_DEPTH),
            ..ServiceConfig::default()
        },
    ));
    let engine = service.engine().clone();
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).expect("bind loopback");

    // Handshake first, then the identical job stream over the wire.
    let mut input = String::from("{\"hello\": 2}\n");
    input.push_str(stream);
    let start = Instant::now();
    let mut raw = Vec::new();
    pump(server.local_addr(), input.as_bytes(), &mut raw).expect("socket pump");
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();

    let text = String::from_utf8(raw).expect("responses are UTF-8");
    let summary = text
        .lines()
        .find(|l| SummaryFrame::is_summary_line(l))
        .map(|l| SummaryFrame::parse_line(l).expect("well-formed summary"))
        .expect("summary frame present");
    assert_eq!(summary.solved as usize, jobs, "every socket job must solve");
    let stats = engine.cache_stats();
    SocketMetrics {
        wall_seconds: wall,
        jobs_per_second: jobs as f64 / wall,
        hit_rate: stats.hit_rate(),
    }
}

/// One generator mix streamed through a fresh service (phase 7): the
/// seeded traffic shapes — Zipf hot classes, bursty arrivals, circuit
/// layers, adversarial strongly-regular matrices — measured the same way
/// as the synthetic phase-1 stream.
struct TrafficMixMetrics {
    name: &'static str,
    jobs: usize,
    jobs_per_second: f64,
    hit_rate: f64,
    proved_optimal: usize,
}

fn traffic_mix_arm(workload: traffic::Workload, jobs: usize, workers: usize) -> TrafficMixMetrics {
    let name = workload.name();
    let mut stream = String::new();
    for (k, spec) in workload.take(jobs).enumerate() {
        let req = JobRequest::new(format!("{name}-{k:03}"), spec.matrix).with_budget_ms(2_000);
        stream.push_str(&req.to_json_line());
        stream.push('\n');
    }
    // A fresh service per mix: each mix's hit rate reflects only its own
    // duplicate structure, not another mix's leftovers.
    let service = Service::with_engine_config(
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    );
    let start = Instant::now();
    let mut raw = Vec::new();
    let summary = serve_connection(&service, stream.as_bytes(), &mut raw)
        .expect("in-memory batch cannot fail on I/O");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(summary.solved, jobs, "every {name} traffic job must solve");
    let stats = service.engine().cache_stats();
    TrafficMixMetrics {
        name,
        jobs,
        jobs_per_second: jobs as f64 / wall,
        hit_rate: stats.hit_rate(),
        proved_optimal: String::from_utf8(raw)
            .expect("responses are UTF-8")
            .lines()
            .filter(|l| !SummaryFrame::is_summary_line(l))
            .map(|l| JobResponse::parse_line(l).expect("well-formed response"))
            .filter(|r| r.proved_optimal)
            .count(),
    }
}

/// The schedule-vs-independent comparison (phase 7): the same circuit
/// layer sequence submitted once as a protocol-v2 `schedule` frame and
/// once as independent job lines, each against a fresh service over a
/// real TCP socket. The schedule's summary reports the cross-layer cache
/// hits the sequential execution harvested — the headline reuse number
/// (`--check` gates it above zero).
struct TrafficScheduleMetrics {
    layers: usize,
    schedule_wall_seconds: f64,
    cross_layer_cache_hits: u64,
    schedule_total_depth: u64,
    independent_wall_seconds: f64,
    independent_cache_hits: u64,
}

fn traffic_schedule_phase(workers: usize) -> TrafficScheduleMetrics {
    use engine::protocol::{ScheduleRequest, ScheduleSummary};

    let layers = traffic::circuit_layers(8, 8, 12);
    let fresh_service = || {
        Arc::new(Service::with_engine_config(
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
            ServiceConfig {
                queue_depth: layers.len().max(serve::DEFAULT_QUEUE_DEPTH),
                ..ServiceConfig::default()
            },
        ))
    };

    // Arm 1: one schedule frame; the server solves the layers in order
    // against its shared cache and reports the hits in the summary.
    let mut server =
        serve_socket(fresh_service(), &BindAddr::parse("127.0.0.1:0")).expect("bind loopback");
    let mut client = serve::LineClient::connect(server.local_addr()).expect("connect loopback");
    client.handshake().expect("v2 handshake");
    let req = ScheduleRequest::new("bench-circuit", layers.clone());
    let start = Instant::now();
    client
        .send_line(&req.to_json_line())
        .expect("send schedule");
    let summary = loop {
        let line = client
            .recv_line()
            .expect("read schedule stream")
            .expect("summary before EOF");
        if ScheduleSummary::is_summary_line(&line) {
            break ScheduleSummary::parse_line(&line).expect("well-formed schedule summary");
        }
    };
    let schedule_wall = start.elapsed().as_secs_f64();
    assert_eq!(
        summary.solved as usize,
        layers.len(),
        "every layer must solve"
    );
    server.shutdown();

    // Arm 2: the same layers as independent v2 job lines on a fresh
    // service — racing layers instead of sequencing them.
    let service = fresh_service();
    let engine = service.engine().clone();
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).expect("bind loopback");
    let mut input = String::from("{\"hello\": 2}\n");
    for (k, layer) in layers.iter().enumerate() {
        input.push_str(&JobRequest::new(format!("ind-{k:02}"), layer.clone()).to_json_line());
        input.push('\n');
    }
    let start = Instant::now();
    let mut raw = Vec::new();
    pump(server.local_addr(), input.as_bytes(), &mut raw).expect("socket pump");
    let independent_wall = start.elapsed().as_secs_f64();
    server.shutdown();
    let independent_hits = engine.cache_stats().hits;

    TrafficScheduleMetrics {
        layers: layers.len(),
        schedule_wall_seconds: schedule_wall,
        cross_layer_cache_hits: summary.cache_hits,
        schedule_total_depth: summary.total_depth,
        independent_wall_seconds: independent_wall,
        independent_cache_hits: independent_hits,
    }
}

/// One idle-ballast arm of the scaling phase (phase 8): the event-driven
/// front-end holds `idle` parked connections while a single active client
/// measures stream throughput and then sequential round-trip latency.
/// The jobs/s figure must not collapse as the connection table grows —
/// that is what the 70% `--check` gate compares (1024 idle vs 1).
struct ScalingArm {
    idle: usize,
    jobs_per_second: f64,
    p99_rtt_us: u64,
}

/// Two service instances sharing one `--state-dir` behind the writer
/// lease: the second instance must restore the first's warm state and
/// adopt its snapshot generation, and the pair's combined throughput is
/// reported against the single instance's.
struct TwoInstanceMetrics {
    adopted_generation: u64,
    restored_sessions: u64,
    single_jobs_per_second: f64,
    dual_jobs_per_second: f64,
}

struct ScalingMetrics {
    jobs: usize,
    arms: Vec<ScalingArm>,
    two_instance: TwoInstanceMetrics,
}

const SCALING_RTT_PROBES: usize = 150;

fn scaling_arm(stream: &str, jobs: usize, workers: usize, idle: usize) -> ScalingArm {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        ServiceConfig {
            queue_depth: jobs.max(serve::DEFAULT_QUEUE_DEPTH),
            ..ServiceConfig::default()
        },
    ));
    let mut server = serve_socket_event(Arc::clone(&service), &BindAddr::parse("127.0.0.1:0"))
        .expect("bind loopback");

    let ballast: Vec<_> = (0..idle)
        .map(|k| {
            serve::connect(server.local_addr())
                .unwrap_or_else(|e| panic!("ballast connection {k} of {idle}: {e}"))
        })
        .collect();
    // Measure only once the loop has the full connection table registered.
    while service.open_connections() < idle as u64 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let mut input = String::from("{\"hello\": 2}\n");
    input.push_str(stream);
    let start = Instant::now();
    let mut raw = Vec::new();
    pump(server.local_addr(), input.as_bytes(), &mut raw).expect("scaling pump");
    let wall = start.elapsed().as_secs_f64();
    let text = String::from_utf8(raw).expect("responses are UTF-8");
    let summary = text
        .lines()
        .find(|l| SummaryFrame::is_summary_line(l))
        .map(|l| SummaryFrame::parse_line(l).expect("well-formed summary"))
        .expect("summary frame present");
    assert_eq!(
        summary.solved as usize, jobs,
        "every scaling job must solve under {idle} idle connections"
    );

    // Sequential request/response round trips for tail latency: the same
    // (cached) probe job each time, so the p99 is serving-tier overhead,
    // not solver variance.
    let probe = random_benchmark(8, 8, 0.4, 77).matrix;
    let mut client = LineClient::connect(server.local_addr()).expect("rtt client");
    client.handshake().expect("rtt handshake");
    let mut rtts: Vec<u64> = (0..SCALING_RTT_PROBES)
        .map(|k| {
            let req = JobRequest::new(format!("rtt-{idle}-{k:03}"), probe.clone());
            let start = Instant::now();
            client.send_job(&req).expect("rtt send");
            let line = client.recv_line().expect("rtt recv").expect("rtt response");
            let resp = JobResponse::parse_line(&line).expect("well-formed rtt response");
            assert!(resp.error.is_none(), "rtt probe failed: {line}");
            start.elapsed().as_micros() as u64
        })
        .collect();
    rtts.sort_unstable();
    let p99 = rtts[(rtts.len() * 99 / 100).min(rtts.len() - 1)];

    drop(client);
    drop(ballast);
    server.shutdown();
    ScalingArm {
        idle,
        jobs_per_second: jobs as f64 / wall,
        p99_rtt_us: p99,
    }
}

fn scaling_two_instance(stream: &str, jobs: usize, workers: usize) -> TwoInstanceMetrics {
    let dir = std::env::temp_dir().join(format!("rect-addr-bench-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let instance = || {
        Arc::new(Service::with_engine_config(
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
            ServiceConfig {
                queue_depth: jobs.max(serve::DEFAULT_QUEUE_DEPTH),
                persist: Some(PersistConfig::shared(
                    &dir,
                    std::time::Duration::from_millis(500),
                )),
                ..ServiceConfig::default()
            },
        ))
    };

    // Instance 1 (the lease holder) serves the whole stream alone: the
    // single-instance figure, and the warm state the second instance
    // must pick up.
    let writer = instance();
    let mut server1 = serve_socket_event(Arc::clone(&writer), &BindAddr::parse("127.0.0.1:0"))
        .expect("bind writer instance");
    let mut input = String::from("{\"hello\": 2}\n");
    input.push_str(stream);
    let start = Instant::now();
    let mut raw = Vec::new();
    pump(server1.local_addr(), input.as_bytes(), &mut raw).expect("single-instance pump");
    let single_wall = start.elapsed().as_secs_f64();
    assert!(
        writer.is_snapshot_writer(),
        "first instance must hold the lease"
    );
    writer.snapshot_now().expect("writer snapshot");

    // Instance 2 on the same directory: a reader that restores the
    // writer's snapshot at startup.
    let reader = instance();
    let restored_sessions = reader.stats().persisted_sessions;
    let adopted_generation = reader.snapshot_generation();
    assert!(
        adopted_generation >= 1,
        "second instance adopted no snapshot generation"
    );
    let mut server2 = serve_socket_event(Arc::clone(&reader), &BindAddr::parse("127.0.0.1:0"))
        .expect("bind reader instance");

    // Both instances serve half the stream concurrently.
    let lines: Vec<&str> = stream.lines().collect();
    let half_input = |chunk: &[&str]| {
        let mut s = String::from("{\"hello\": 2}\n");
        for line in chunk {
            s.push_str(line);
            s.push('\n');
        }
        s
    };
    let first = half_input(&lines[..lines.len() / 2]);
    let second = half_input(&lines[lines.len() / 2..]);
    let addr1 = server1.local_addr().clone();
    let addr2 = server2.local_addr().clone();
    fn jobs_on(addr: &BindAddr, input: String) -> usize {
        let mut raw = Vec::new();
        pump(addr, input.as_bytes(), &mut raw).expect("dual-instance pump");
        String::from_utf8(raw)
            .expect("responses are UTF-8")
            .lines()
            .find(|l| SummaryFrame::is_summary_line(l))
            .map(|l| SummaryFrame::parse_line(l).expect("well-formed summary"))
            .expect("summary frame present")
            .solved as usize
    }
    let start = Instant::now();
    let solved: usize = std::thread::scope(|scope| {
        let h1 = scope.spawn(move || jobs_on(&addr1, first));
        let h2 = scope.spawn(move || jobs_on(&addr2, second));
        h1.join().expect("first half") + h2.join().expect("second half")
    });
    let dual_wall = start.elapsed().as_secs_f64();
    assert_eq!(solved, jobs, "every dual-instance job must solve");

    server1.shutdown();
    server2.shutdown();
    drop(writer);
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir);
    TwoInstanceMetrics {
        adopted_generation,
        restored_sessions,
        single_jobs_per_second: jobs as f64 / single_wall,
        dual_jobs_per_second: jobs as f64 / dual_wall,
    }
}

fn scaling_phase(workers: usize) -> ScalingMetrics {
    // The connection counts come in pairs of file descriptors (client +
    // in-process server end), so the deepest arm needs ~2x its count:
    // raise the limit first and skip arms the hard limit cannot hold.
    let fd_limit = match serve::sys::raise_nofile_limit() {
        Ok(limit) => limit,
        Err(e) => {
            eprintln!("scaling: could not raise fd limit ({e}); assuming 1024");
            1024
        }
    };
    let jobs = 300;
    let stream = build_stream(jobs, 30, 8);
    let arms: Vec<ScalingArm> = [1usize, 64, 1024, 8192]
        .into_iter()
        .filter(|&idle| {
            let fits = 2 * idle as u64 + 256 <= fd_limit;
            if !fits {
                eprintln!("scaling: skipping {idle} idle connections (fd limit {fd_limit})");
            }
            fits
        })
        .map(|idle| scaling_arm(&stream, jobs, workers, idle))
        .collect();
    let two_instance = scaling_two_instance(&stream, jobs, workers);
    ScalingMetrics {
        jobs,
        arms,
        two_instance,
    }
}

fn main() {
    // `--check-baseline <file>` carries a value; extract the pair before
    // the flag/positional split.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = match raw.iter().position(|a| a == "--check-baseline") {
        Some(i) => {
            raw.remove(i);
            if i < raw.len() {
                Some(raw.remove(i))
            } else {
                eprintln!("--check-baseline needs a file path");
                std::process::exit(2);
            }
        }
        None => None,
    };
    let (flags, positional): (Vec<String>, Vec<String>) =
        raw.into_iter().partition(|a| a.starts_with("--"));
    let check = flags.iter().any(|f| f == "--check");
    let arg = |i: usize, default: usize| {
        positional
            .get(i)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let jobs = arg(0, 400);
    let distinct = arg(1, 50).max(1);
    let size = arg(2, 10);
    let workers = arg(3, 0);

    let stream = build_stream(jobs, distinct, size);
    let service = Service::with_engine_config(
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    );

    eprintln!("engine_bench: {jobs} jobs, {distinct} distinct {size}x{size} patterns");
    let cold_latency = obs::Histogram::new();
    let warm_latency = obs::Histogram::new();
    let cold = run_stream(&service, &stream, jobs, &cold_latency);
    eprintln!(
        "cold: {:.0} jobs/s, hit rate {:.1}%",
        cold.jobs_per_second,
        cold.hit_rate * 100.0
    );
    // Same stream again: every job is now a canonical-cache hit. Replayed
    // until the measurement spans enough wall time — a single all-hit
    // replay of a small stream finishes in ~1 ms, far too little for the
    // jobs/s figure the baseline regression gate compares across runs.
    // Every emitted field aggregates over ALL replays (counts sum, means
    // average, max is the overall max), and the block carries the replay
    // count, so the numbers stay internally consistent.
    let mut warm_replays = 0usize;
    let warm = {
        let mut agg: Option<RunMetrics> = None;
        for _ in 0..512 {
            let run = run_stream(&service, &stream, jobs, &warm_latency);
            warm_replays += 1;
            agg = Some(match agg {
                None => run,
                Some(prev) => RunMetrics {
                    wall_seconds: prev.wall_seconds + run.wall_seconds,
                    jobs_per_second: 0.0, // recomputed below
                    cache_hits: prev.cache_hits + run.cache_hits,
                    cache_misses: prev.cache_misses + run.cache_misses,
                    hit_rate: 0.0, // recomputed below
                    // Replays run the identical job count: plain average.
                    mean_job_millis: prev.mean_job_millis + run.mean_job_millis,
                    max_job_millis: prev.max_job_millis.max(run.max_job_millis),
                    proved_optimal: prev.proved_optimal + run.proved_optimal,
                },
            });
            if agg.as_ref().expect("just set").wall_seconds >= 0.25 {
                break;
            }
        }
        let mut warm = agg.expect("at least one warm replay");
        warm.jobs_per_second = (jobs * warm_replays) as f64 / warm.wall_seconds;
        warm.hit_rate =
            warm.cache_hits as f64 / (warm.cache_hits + warm.cache_misses).max(1) as f64;
        warm.mean_job_millis /= warm_replays as f64;
        warm
    };
    eprintln!(
        "warm: {:.0} jobs/s over {warm_replays} replays, hit rate {:.1}%",
        warm.jobs_per_second,
        warm.hit_rate * 100.0
    );

    // Phase 2: warm-start SAP descent vs cold restarts on cache-adjacent
    // jobs. Sequential on purpose — the sequence models one hard canonical
    // class revisited across a batch.
    let rounds = 20;
    let conflict_budget = 2_500;
    let warm_engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let cold_engine = Engine::new(EngineConfig {
        workers: 1,
        warm_sessions: 0,
        ..EngineConfig::default()
    });
    let ws_warm = warm_start_arm(&warm_engine, rounds, conflict_budget);
    let ws_cold = warm_start_arm(&cold_engine, rounds, conflict_budget);
    eprintln!(
        "warm-start: {} conflicts warm (proved after {} jobs) vs {} cold (proved after {})",
        ws_warm.total_conflicts,
        ws_warm.proved_after_jobs,
        ws_cold.total_conflicts,
        ws_cold.proved_after_jobs,
    );

    // Phase 3: permuted-biregular workload, complete canonizer vs the
    // budget-0 heuristic labeling on the identical job stream.
    let (canon_jobs, canon_complete, canon_heuristic) = canon_workload(32);
    eprintln!(
        "canon: {} permuted-biregular jobs — complete {:.1}% hit rate ({} entries) \
         vs heuristic {:.1}% ({} entries)",
        canon_jobs,
        canon_complete.hit_rate * 100.0,
        canon_complete.entries,
        canon_heuristic.hit_rate * 100.0,
        canon_heuristic.entries,
    );

    // Phase 4: the same cold stream through the TCP socket front-end.
    let socket = socket_phase(&stream, jobs, workers);
    eprintln!(
        "socket: {:.0} jobs/s over TCP (hit rate {:.1}%)",
        socket.jobs_per_second,
        socket.hit_rate * 100.0
    );

    // Phase 5: persistence — solve, snapshot, reload into a fresh engine
    // (the restart cycle), re-solve.
    let persist = persist_phase(rounds, conflict_budget);
    eprintln!(
        "persist: reloaded run spends {} conflicts vs {} first-boot \
         (ratio {:.3}, {} sessions restored, snapshot {} bytes)",
        persist.reloaded_total_conflicts,
        persist.cold_total_conflicts,
        persist.reload_ratio,
        persist.restored_sessions,
        persist.snapshot_bytes,
    );

    // Phase 6: certification. Runs last so proof logging never perturbs
    // the gated throughput/conflict numbers above; any invalid or
    // unrejected-mutant proof panics the bench (non-zero exit).
    let certify = certify_phase();
    eprintln!(
        "certify: {} certificates verified ({} cold jobs, warm descent proved in {} rounds), \
         {} corrupted mutants rejected in {:.3}s",
        certify.cold_certificates + 1,
        certify.cold_jobs,
        certify.warm_rounds,
        certify.mutants_rejected,
        certify.check_seconds,
    );

    // Phase 7: seeded traffic-generator workloads. Runs after the gated
    // phases (like certification) so the generator streams never perturb
    // the `--check-baseline` throughput and conflict-ratio numbers.
    let traffic_jobs = 48;
    let mixes = [
        traffic_mix_arm(
            traffic::Workload::zipf(21, (8, 8), 8, 1.1),
            traffic_jobs,
            workers,
        ),
        traffic_mix_arm(
            traffic::Workload::bursty(21, (8, 8), 8, 1.1, 8, 50, 5_000),
            traffic_jobs,
            workers,
        ),
        traffic_mix_arm(
            traffic::Workload::layered(21, (8, 8)),
            traffic_jobs,
            workers,
        ),
        traffic_mix_arm(traffic::Workload::adversarial(21), 12, workers),
    ];
    for m in &mixes {
        eprintln!(
            "traffic/{}: {} jobs at {:.0} jobs/s, hit rate {:.1}%",
            m.name,
            m.jobs,
            m.jobs_per_second,
            m.hit_rate * 100.0
        );
    }
    let sched = traffic_schedule_phase(workers);
    eprintln!(
        "traffic/schedule: {} layers as one v2 schedule in {:.4}s ({} cross-layer cache hits) \
         vs independent jobs in {:.4}s ({} hits)",
        sched.layers,
        sched.schedule_wall_seconds,
        sched.cross_layer_cache_hits,
        sched.independent_wall_seconds,
        sched.independent_cache_hits,
    );

    // Phase 8: the horizontally scaled serving tier — the event-driven
    // front-end under idle-connection ballast, then two instances
    // sharing one state directory behind the writer lease.
    let scaling = scaling_phase(workers);
    for arm in &scaling.arms {
        eprintln!(
            "scaling/{} idle: {:.0} jobs/s, p99 rtt {} us",
            arm.idle, arm.jobs_per_second, arm.p99_rtt_us,
        );
    }
    eprintln!(
        "scaling/two-instance: generation {} adopted, {} sessions restored, \
         {:.0} jobs/s single vs {:.0} dual",
        scaling.two_instance.adopted_generation,
        scaling.two_instance.restored_sessions,
        scaling.two_instance.single_jobs_per_second,
        scaling.two_instance.dual_jobs_per_second,
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"engine\",\n  \"jobs\": {jobs},\n  \"distinct\": {distinct},\n  \
         \"size\": {size},\n  \"duplicate_fraction\": {:.4},\n",
        (jobs.saturating_sub(distinct)) as f64 / jobs.max(1) as f64,
    );
    emit(&mut json, "cold", &cold, None, false);
    emit(&mut json, "warm", &warm, Some(warm_replays), false);
    emit_warm_start(&mut json, rounds, conflict_budget, &ws_warm, &ws_cold);
    let _ = write!(json, "  \"canon\": {{\n    \"jobs\": {canon_jobs},\n");
    emit_canon_arm(&mut json, "complete", &canon_complete, false);
    emit_canon_arm(&mut json, "heuristic", &canon_heuristic, true);
    json.push_str("  },\n");
    let _ = write!(
        json,
        "  \"persist\": {{\n    \"rounds\": {rounds},\n    \"conflict_budget\": \
         {conflict_budget},\n    \"cold_total_conflicts\": {},\n    \
         \"reloaded_total_conflicts\": {},\n    \"reload_ratio\": {:.4},\n    \
         \"restored_sessions\": {},\n    \"snapshot_bytes\": {}\n  }},\n",
        persist.cold_total_conflicts,
        persist.reloaded_total_conflicts,
        persist.reload_ratio,
        persist.restored_sessions,
        persist.snapshot_bytes,
    );
    let _ = write!(
        json,
        "  \"certify\": {{\n    \"cold_jobs\": {},\n    \"cold_certificates\": {},\n    \
         \"warm_rounds\": {},\n    \"certificates_verified\": {},\n    \
         \"mutants_rejected\": {},\n    \"check_seconds\": {:.4}\n  }},\n",
        certify.cold_jobs,
        certify.cold_certificates,
        certify.warm_rounds,
        certify.cold_certificates + 1,
        certify.mutants_rejected,
        certify.check_seconds,
    );
    json.push_str("  \"latency\": {\n    \"unit\": \"us\",\n");
    emit_latency(&mut json, "cold", &cold_latency.summary(), false);
    emit_latency(&mut json, "warm", &warm_latency.summary(), true);
    json.push_str("  },\n");
    emit_kernels(&mut json);
    json.push_str("  \"traffic\": {\n    \"mixes\": {\n");
    for (i, m) in mixes.iter().enumerate() {
        let _ = writeln!(
            json,
            "      \"{}\": {{ \"jobs\": {}, \"jobs_per_second\": {:.1}, \"hit_rate\": {:.4}, \
             \"proved_optimal\": {} }}{}",
            m.name,
            m.jobs,
            m.jobs_per_second,
            m.hit_rate,
            m.proved_optimal,
            if i + 1 == mixes.len() { "" } else { "," },
        );
    }
    let _ = write!(
        json,
        "    }},\n    \"schedule\": {{\n      \"layers\": {},\n      \
         \"cross_layer_cache_hits\": {},\n      \"total_depth\": {},\n      \
         \"schedule_wall_seconds\": {:.4},\n      \"independent_wall_seconds\": {:.4},\n      \
         \"independent_cache_hits\": {}\n    }}\n  }},\n",
        sched.layers,
        sched.cross_layer_cache_hits,
        sched.schedule_total_depth,
        sched.schedule_wall_seconds,
        sched.independent_wall_seconds,
        sched.independent_cache_hits,
    );
    let _ = write!(
        json,
        "  \"socket\": {{\n    \"jobs\": {jobs},\n    \"wall_seconds\": {:.4},\n    \
         \"jobs_per_second\": {:.1},\n    \"hit_rate\": {:.4}\n  }},\n",
        socket.wall_seconds, socket.jobs_per_second, socket.hit_rate,
    );
    let _ = write!(
        json,
        "  \"scaling\": {{\n    \"jobs\": {},\n    \"arms\": [\n",
        scaling.jobs
    );
    for (i, arm) in scaling.arms.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{ \"idle_connections\": {}, \"jobs_per_second\": {:.1}, \
             \"p99_rtt_us\": {} }}{}",
            arm.idle,
            arm.jobs_per_second,
            arm.p99_rtt_us,
            if i + 1 == scaling.arms.len() { "" } else { "," },
        );
    }
    let _ = write!(
        json,
        "    ],\n    \"two_instance\": {{\n      \"adopted_generation\": {},\n      \
         \"restored_sessions\": {},\n      \"single_jobs_per_second\": {:.1},\n      \
         \"dual_jobs_per_second\": {:.1}\n    }}\n  }}\n}}\n",
        scaling.two_instance.adopted_generation,
        scaling.two_instance.restored_sessions,
        scaling.two_instance.single_jobs_per_second,
        scaling.two_instance.dual_jobs_per_second,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("{json}");

    let mut failed = false;
    if check {
        if canon_complete.hit_rate < 0.9 {
            eprintln!(
                "FAIL: permuted-biregular hit rate {:.1}% is below the 90% gate",
                canon_complete.hit_rate * 100.0
            );
            failed = true;
        }
        if persist.reload_ratio >= 0.6 {
            eprintln!(
                "FAIL: reloaded server spends {:.1}% of first-boot conflicts \
                 (gate: < 60%)",
                persist.reload_ratio * 100.0
            );
            failed = true;
        }
        if persist.restored_sessions == 0 {
            eprintln!("FAIL: snapshot reload restored no sessions");
            failed = true;
        }
        if sched.cross_layer_cache_hits == 0 {
            eprintln!(
                "FAIL: a {}-layer circuit schedule harvested no cross-layer cache hits",
                sched.layers
            );
            failed = true;
        }
        // The event loop must hold its throughput as the connection
        // table grows: 1024 parked connections may cost at most 30% of
        // the 1-connection jobs/s figure.
        let arm_at = |idle| scaling.arms.iter().find(|a| a.idle == idle);
        match (arm_at(1), arm_at(1024)) {
            (Some(one), Some(kilo)) => {
                if kilo.jobs_per_second < 0.7 * one.jobs_per_second {
                    eprintln!(
                        "FAIL: {:.0} jobs/s under 1024 idle connections is below 70% of \
                         the 1-connection {:.0} jobs/s",
                        kilo.jobs_per_second, one.jobs_per_second,
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("FAIL: scaling arms (1 and 1024 idle connections) did not run");
                failed = true;
            }
        }
        if scaling.two_instance.restored_sessions == 0 {
            eprintln!("FAIL: second instance on the shared state dir restored no sessions");
            failed = true;
        }
    }
    if let Some(path) = baseline_path {
        if !check_baseline(
            &path,
            cold.jobs_per_second,
            warm.jobs_per_second,
            &ws_warm,
            &ws_cold,
        ) {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Emits the data-plane kernel timing histograms (`kernel_us_*`) the run
/// accumulated in the global registry — the per-hot-loop counterpart of the
/// end-to-end throughput figures, so a perf diff can tell *which* loop moved.
fn emit_kernels(json: &mut String) {
    let kernels: Vec<_> = obs::registry()
        .histogram_summaries()
        .into_iter()
        .filter(|(name, _)| name.starts_with(obs::names::KERNEL_US_PREFIX))
        .collect();
    json.push_str("  \"kernels\": {\n    \"unit\": \"us\",\n");
    for (i, (name, s)) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"max\": {} }}{comma}",
            s.count, s.sum, s.p50, s.p90, s.p99, s.max,
        );
    }
    json.push_str("  },\n");
}

/// Tolerated relative regression against the committed baseline.
const BASELINE_TOLERANCE: f64 = 0.25;

/// The perf-trajectory gate: compares this run's cold and warm throughput
/// and warm-start conflict ratio against `BENCH_baseline.json`, failing on a
/// regression beyond [`BASELINE_TOLERANCE`]. Improvements never fail —
/// refresh the baseline to ratchet them in. A baseline without a cold figure
/// (predating the cold gate) skips that check.
fn check_baseline(
    path: &str,
    cold_jobs_per_second: f64,
    warm_jobs_per_second: f64,
    ws_warm: &WarmStartArm,
    ws_cold: &WarmStartArm,
) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("FAIL: baseline {path} unreadable: {e}");
            return false;
        }
    };
    let json = match engine::protocol::parse_json(&text) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("FAIL: baseline {path} is not valid JSON: {e}");
            return false;
        }
    };
    let number =
        |outer: &str, field: &str| -> Option<f64> { json.get(outer)?.get(field)?.as_f64() };
    let Some(base_jps) = number("warm", "jobs_per_second") else {
        eprintln!("FAIL: baseline {path} lacks warm.jobs_per_second");
        return false;
    };
    let Some(base_ratio) = number("warm_start", "conflict_ratio") else {
        eprintln!("FAIL: baseline {path} lacks warm_start.conflict_ratio");
        return false;
    };

    let ratio = ws_warm.total_conflicts as f64 / ws_cold.total_conflicts.max(1) as f64;
    let mut ok = true;
    // Cold throughput exercises the full data plane (canonization, the
    // packing kernels, DLX, SAP) rather than the cache, so it is the gate
    // that actually guards the word-packed hot loops.
    if let Some(base_cold) = number("cold", "jobs_per_second") {
        let cold_floor = base_cold * (1.0 - BASELINE_TOLERANCE);
        if cold_jobs_per_second < cold_floor {
            eprintln!(
                "FAIL: cold throughput regressed beyond {:.0}%: {cold_jobs_per_second:.1} \
                 jobs/s vs baseline {base_cold:.1} (floor {cold_floor:.1})",
                BASELINE_TOLERANCE * 100.0
            );
            ok = false;
        } else {
            eprintln!("baseline OK: cold {cold_jobs_per_second:.1} jobs/s (>= {cold_floor:.1})");
        }
    }
    let jps_floor = base_jps * (1.0 - BASELINE_TOLERANCE);
    if warm_jobs_per_second < jps_floor {
        eprintln!(
            "FAIL: warm throughput regressed beyond {:.0}%: {warm_jobs_per_second:.1} jobs/s \
             vs baseline {base_jps:.1} (floor {jps_floor:.1})",
            BASELINE_TOLERANCE * 100.0
        );
        ok = false;
    }
    // The conflict ratio is better when *lower*; tolerance goes upward.
    let ratio_ceiling = base_ratio * (1.0 + BASELINE_TOLERANCE);
    if ratio > ratio_ceiling {
        eprintln!(
            "FAIL: warm-start conflict ratio regressed beyond {:.0}%: {ratio:.4} vs baseline \
             {base_ratio:.4} (ceiling {ratio_ceiling:.4})",
            BASELINE_TOLERANCE * 100.0
        );
        ok = false;
    }
    if ok {
        eprintln!(
            "baseline OK: warm {warm_jobs_per_second:.1} jobs/s (>= {jps_floor:.1}), \
             warm-start ratio {ratio:.4} (<= {ratio_ceiling:.4})"
        );
    }
    ok
}
