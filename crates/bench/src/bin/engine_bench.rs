//! Engine throughput + canonical-cache hit-rate + warm-start benchmark.
//!
//! Phase 1 streams a synthetic circuit-layer workload — distinct random
//! patterns plus row/column-permuted duplicates, the redundancy profile the
//! canonical-form cache targets — through `Engine::run_batch`, once against
//! a cold cache and once replaying the same stream warm.
//!
//! Phase 2 measures the **warm-start SAP descent**: a sequence of
//! cache-adjacent jobs (permuted duplicates of one SAT-hard rank-gap
//! pattern, each under a small conflict budget) against an engine with the
//! per-canonical-class session store on vs off. With warm starts each job
//! *resumes* the previous descent, so total SAT conflicts approach the cost
//! of a single full descent; without, every job re-spends its budget from
//! scratch. Emits `BENCH_engine.json` in the working directory.
//!
//! Usage: `engine_bench [jobs] [distinct] [size] [workers]`
//! (defaults: 400 jobs, 50 distinct 10×10 patterns, CPU workers).

use std::fmt::Write as _;
use std::time::Instant;

use bitmatrix::BitMatrix;
use ebmf::gen::{gap_benchmark, random_benchmark};
use engine::protocol::{JobRequest, JobResponse};
use engine::{Engine, EngineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct RunMetrics {
    wall_seconds: f64,
    jobs_per_second: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    mean_job_millis: f64,
    max_job_millis: f64,
    proved_optimal: usize,
}

fn build_stream(jobs: usize, distinct: usize, size: usize) -> String {
    let bases: Vec<BitMatrix> = (0..distinct)
        .map(|i| random_benchmark(size, size, 0.4, 9_000 + i as u64).matrix)
        .collect();
    let mut rng = StdRng::seed_from_u64(123);
    let mut out = String::new();
    for i in 0..jobs {
        let base = &bases[i % bases.len()];
        let matrix = if i < bases.len() {
            base.clone()
        } else {
            let rp = bitmatrix::random_permutation(base.nrows(), &mut rng);
            let cp = bitmatrix::random_permutation(base.ncols(), &mut rng);
            base.submatrix(&rp, &cp)
        };
        let req = JobRequest {
            id: format!("job-{i:04}"),
            matrix,
            budget_ms: Some(10_000),
            conflicts: None,
        };
        out.push_str(&req.to_json_line());
        out.push('\n');
    }
    out
}

fn run_stream(engine: &Engine, stream: &str, jobs: usize) -> RunMetrics {
    let before = engine.cache_stats();
    let start = Instant::now();
    let mut raw = Vec::new();
    let summary = engine
        .run_batch(stream.as_bytes(), &mut raw)
        .expect("in-memory batch cannot fail on I/O");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(summary.solved, jobs, "every job must solve");

    let responses: Vec<JobResponse> = String::from_utf8(raw)
        .expect("responses are UTF-8")
        .lines()
        .map(|l| JobResponse::parse_line(l).expect("well-formed response"))
        .collect();
    let after = engine.cache_stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let mean = responses.iter().map(|r| r.millis).sum::<f64>() / responses.len().max(1) as f64;
    let max = responses.iter().map(|r| r.millis).fold(0.0, f64::max);
    RunMetrics {
        wall_seconds: wall,
        jobs_per_second: jobs as f64 / wall,
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        mean_job_millis: mean,
        max_job_millis: max,
        proved_optimal: responses.iter().filter(|r| r.proved_optimal).count(),
    }
}

fn emit(out: &mut String, label: &str, m: &RunMetrics, last: bool) {
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"wall_seconds\": {:.4},\n    \"jobs_per_second\": {:.1},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"hit_rate\": {:.4},\n    \
         \"mean_job_millis\": {:.3},\n    \"max_job_millis\": {:.3},\n    \
         \"proved_optimal\": {}\n  }}{}\n",
        m.wall_seconds,
        m.jobs_per_second,
        m.cache_hits,
        m.cache_misses,
        m.hit_rate,
        m.mean_job_millis,
        m.max_job_millis,
        m.proved_optimal,
        if last { "" } else { "," },
    );
}

/// Totals of one warm-start arm (see module docs).
struct WarmStartArm {
    total_conflicts: u64,
    /// 1-based job index whose answer was first proved optimal (0 = never).
    proved_after_jobs: usize,
}

/// Runs `rounds` sequential cache-adjacent jobs (resubmissions of one
/// SAT-hard pattern, small per-query conflict budget) through `engine` —
/// the retry-with-budget serving pattern. Identical resubmission (rather
/// than permuted duplicates) keeps the SAT ordering fixed so the two arms
/// differ only in warm-start reuse, not in per-ordering search luck.
fn warm_start_arm(engine: &Engine, rounds: usize, conflict_budget: u64) -> WarmStartArm {
    // A rank-gap instance whose final UNSAT query costs >20k conflicts —
    // an order of magnitude past the per-query budget, so only resumed
    // descents can finish inside the round limit.
    let base = gap_benchmark(14, 14, 6, 0).matrix;
    let mut total_conflicts = 0u64;
    let mut proved_after_jobs = 0usize;
    for round in 0..rounds {
        let req = JobRequest {
            id: format!("warm-{round:02}"),
            matrix: base.clone(),
            budget_ms: Some(60_000),
            conflicts: Some(conflict_budget),
        };
        let resp = engine.solve_job(&req);
        assert!(resp.ok, "warm-start job must solve");
        total_conflicts += resp.conflicts;
        if resp.proved_optimal && proved_after_jobs == 0 {
            proved_after_jobs = round + 1;
        }
    }
    WarmStartArm {
        total_conflicts,
        proved_after_jobs,
    }
}

fn emit_warm_start(
    out: &mut String,
    rounds: usize,
    budget: u64,
    warm: &WarmStartArm,
    cold: &WarmStartArm,
) {
    let _ = write!(
        out,
        "  \"warm_start\": {{\n    \"rounds\": {rounds},\n    \"conflict_budget\": {budget},\n    \
         \"warm_total_conflicts\": {},\n    \"warm_proved_after_jobs\": {},\n    \
         \"cold_total_conflicts\": {},\n    \"cold_proved_after_jobs\": {},\n    \
         \"conflict_ratio\": {:.4}\n  }}\n",
        warm.total_conflicts,
        warm.proved_after_jobs,
        cold.total_conflicts,
        cold.proved_after_jobs,
        warm.total_conflicts as f64 / cold.total_conflicts.max(1) as f64,
    );
}

fn main() {
    let arg = |i: usize, default: usize| {
        std::env::args()
            .nth(i)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let jobs = arg(1, 400);
    let distinct = arg(2, 50).max(1);
    let size = arg(3, 10);
    let workers = arg(4, 0);

    let stream = build_stream(jobs, distinct, size);
    let engine = Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    });

    eprintln!("engine_bench: {jobs} jobs, {distinct} distinct {size}x{size} patterns");
    let cold = run_stream(&engine, &stream, jobs);
    eprintln!(
        "cold: {:.0} jobs/s, hit rate {:.1}%",
        cold.jobs_per_second,
        cold.hit_rate * 100.0
    );
    // Same stream again: every job is now a canonical-cache hit.
    let warm = run_stream(&engine, &stream, jobs);
    eprintln!(
        "warm: {:.0} jobs/s, hit rate {:.1}%",
        warm.jobs_per_second,
        warm.hit_rate * 100.0
    );

    // Phase 2: warm-start SAP descent vs cold restarts on cache-adjacent
    // jobs. Sequential on purpose — the sequence models one hard canonical
    // class revisited across a batch.
    let rounds = 20;
    let conflict_budget = 2_500;
    let warm_engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let cold_engine = Engine::new(EngineConfig {
        workers: 1,
        warm_sessions: 0,
        ..EngineConfig::default()
    });
    let ws_warm = warm_start_arm(&warm_engine, rounds, conflict_budget);
    let ws_cold = warm_start_arm(&cold_engine, rounds, conflict_budget);
    eprintln!(
        "warm-start: {} conflicts warm (proved after {} jobs) vs {} cold (proved after {})",
        ws_warm.total_conflicts,
        ws_warm.proved_after_jobs,
        ws_cold.total_conflicts,
        ws_cold.proved_after_jobs,
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"engine\",\n  \"jobs\": {jobs},\n  \"distinct\": {distinct},\n  \
         \"size\": {size},\n  \"duplicate_fraction\": {:.4},\n",
        (jobs.saturating_sub(distinct)) as f64 / jobs.max(1) as f64,
    );
    emit(&mut json, "cold", &cold, false);
    emit(&mut json, "warm", &warm, false);
    emit_warm_start(&mut json, rounds, conflict_budget, &ws_warm, &ws_cold);
    json.push_str("}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("{json}");
}
