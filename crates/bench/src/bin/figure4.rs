//! Regenerates **Figure 4** of the paper: the most time-consuming cases of
//! the Table I run, with the runtime split between the packing heuristic
//! and the exact (SAT, paper: SMT) phase, and the real rank of each case.
//!
//! ```sh
//! cargo run --release -p rect-addr-bench --bin figure4            # paper scale
//! cargo run --release -p rect-addr-bench --bin figure4 -- quick
//! ```
//!
//! The paper's Observation 5 — the dominant cost is proving UNSAT at
//! `b = r_B − 1` — is visible in the SAT-share bars.

use std::time::{Duration, Instant};

use rect_addr_bench::{render_figure4, run_table1};

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let (per_cell, gap_cases) = if quick { (2, 20) } else { (10, 100) };
    eprintln!("running the Table I workload to collect timings ...");
    let t0 = Instant::now();
    let (_, mut cases) = run_table1(
        per_cell,
        gap_cases,
        Some(2_000_000),
        Some(Duration::from_secs(120)),
        10,
    );
    println!("{}", render_figure4(&mut cases, 12));
    println!("total wall time {:.1}s", t0.elapsed().as_secs_f64());
}
