//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§IV): benchmark execution, per-case records, and the
//! formatters used by the `table1` / `figure4` / `ablation` /
//! `fig5b_conjecture` / `tensor_bounds` binaries.

use std::time::Duration;

use bitmatrix::{random_permutation, BitMatrix};
use ebmf::gen::{table1_suite, Benchmark};
use ebmf::{row_packing_once, sap, trivial_partition, PackingConfig, Partition, SapConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The packing-trial checkpoints of the paper's Table I columns.
pub const TRIAL_CHECKPOINTS: [usize; 4] = [1, 10, 100, 1000];

/// Everything measured for one benchmark instance.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Instance description (family + parameters).
    pub params: String,
    /// Instance seed.
    pub seed: u64,
    /// Proved binary rank, when SAP certified optimality.
    pub optimal: Option<usize>,
    /// Real-rank lower bound (exact for ≤ 44-wide matrices).
    pub real_rank: usize,
    /// Whether the real rank is exact (Bareiss) or max-over-GF(p).
    pub rank_exact: bool,
    /// Depth of the trivial heuristic.
    pub trivial: usize,
    /// Depth of row packing after each [`TRIAL_CHECKPOINTS`] budget.
    pub packing: Vec<usize>,
    /// Seconds SAP spent in packing.
    pub packing_seconds: f64,
    /// Seconds SAP spent in SAT queries (the paper's "SMT" share).
    pub sat_seconds: f64,
    /// Number of SAT queries issued.
    pub sat_queries: usize,
}

impl CaseResult {
    /// Total measured seconds (packing + SAT).
    pub fn total_seconds(&self) -> f64 {
        self.packing_seconds + self.sat_seconds
    }
}

/// Row packing depth recorded at each checkpoint of `checkpoints`
/// (monotone trial counts). One "trial" shuffles both the matrix and its
/// transpose, as in the paper's setup. The result starts from the trivial
/// bound, so `checkpoint=0` would equal the trivial depth.
pub fn packing_progression(m: &BitMatrix, checkpoints: &[usize], seed: u64) -> Vec<usize> {
    let max_trials = checkpoints.iter().copied().max().unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PackingConfig::default();
    let mt = m.transpose();
    let mut best = trivial_partition(m).len();
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut next_cp = 0usize;
    for trial in 1..=max_trials {
        let order = random_permutation(m.nrows(), &mut rng);
        best = best.min(row_packing_once(m, &order, &cfg).len());
        let order_t = random_permutation(mt.nrows(), &mut rng);
        best = best.min(row_packing_once(&mt, &order_t, &cfg).len());
        while next_cp < checkpoints.len() && checkpoints[next_cp] == trial {
            out.push(best);
            next_cp += 1;
        }
    }
    while next_cp < checkpoints.len() {
        out.push(best);
        next_cp += 1;
    }
    out
}

/// Runs the full measurement for one instance. `sap_cfg` controls the exact
/// phase (set `max_sat_cells` to skip it for the 100×100 family).
pub fn evaluate_case(bench: &Benchmark, sap_cfg: &SapConfig) -> CaseResult {
    let m = &bench.matrix;
    let trivial = trivial_partition(m).len();
    let packing = packing_progression(m, &TRIAL_CHECKPOINTS, bench.seed ^ 0xABCD);
    let outcome = sap(m, sap_cfg);
    let optimal = if outcome.proved_optimal {
        Some(outcome.depth())
    } else {
        // For instances too large to certify by SAT, the heuristic result is
        // still certified optimal when it matches the rank floor (the
        // paper's ‡ note on the 100×100 row).
        let best_heuristic = packing
            .iter()
            .copied()
            .min()
            .unwrap_or(trivial)
            .min(trivial)
            .min(outcome.depth());
        (best_heuristic == outcome.lower_bound.value).then_some(best_heuristic)
    };
    CaseResult {
        params: bench.params.clone(),
        seed: bench.seed,
        optimal,
        real_rank: outcome.real_rank.rank,
        rank_exact: outcome.real_rank.exact,
        trivial,
        packing,
        packing_seconds: outcome.stats.packing_seconds,
        sat_seconds: outcome.stats.sat_seconds,
        sat_queries: outcome.stats.queries.len(),
    }
}

/// A Table I row: per-set percentages of cases where each method found an
/// optimal solution (and the real rank matched the binary rank).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark set name (e.g. `"10x10, rand"`).
    pub set: String,
    /// Number of cases in the set.
    pub cases: usize,
    /// Cases where optimality could be certified at all.
    pub proved: usize,
    /// % cases with real rank == binary rank (the paper's `rank` column).
    pub rank_pct: f64,
    /// % cases where the trivial heuristic is optimal.
    pub trivial_pct: f64,
    /// % optimal for each packing checkpoint.
    pub packing_pct: Vec<f64>,
}

/// Aggregates case results into a Table I row.
pub fn aggregate(set: &str, results: &[CaseResult]) -> TableRow {
    let cases = results.len();
    let proved = results.iter().filter(|r| r.optimal.is_some()).count();
    let pct = |hits: usize| 100.0 * hits as f64 / cases.max(1) as f64;
    let rank_hits = results
        .iter()
        .filter(|r| r.optimal == Some(r.real_rank))
        .count();
    let trivial_hits = results
        .iter()
        .filter(|r| r.optimal.is_some_and(|o| r.trivial == o))
        .count();
    let packing_pct = (0..TRIAL_CHECKPOINTS.len())
        .map(|k| {
            pct(results
                .iter()
                .filter(|r| r.optimal.is_some_and(|o| r.packing[k] == o))
                .count())
        })
        .collect();
    TableRow {
        set: set.to_string(),
        cases,
        proved,
        rank_pct: pct(rank_hits),
        trivial_pct: pct(trivial_hits),
        packing_pct,
    }
}

/// Renders Table I in the paper's layout.
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str("PERCENTAGE OF CASES FINDING AN OPTIMAL SOLUTION\n");
    out.push_str(&format!(
        "{:<16} {:>5} {:>7} {:>8} | {:>6} {:>6} {:>6} {:>6}   (row packing, trials)\n",
        "benchmark", "cases", "rank", "trivial", "1", "10", "100", "1000"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>5} {:>6.0}% {:>7.0}% | {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%{}\n",
            r.set,
            r.cases,
            r.rank_pct,
            r.trivial_pct,
            r.packing_pct[0],
            r.packing_pct[1],
            r.packing_pct[2],
            r.packing_pct[3],
            if r.proved < r.cases {
                format!("   [{} of {} certified]", r.proved, r.cases)
            } else {
                String::new()
            }
        ));
    }
    out
}

/// Renders the Figure 4 data: the most time-consuming cases with their
/// packing/SAT runtime split and real rank, plus an ASCII bar per case.
#[allow(clippy::ptr_arg)] // callers own a Vec; sorting in place is the point
pub fn render_figure4(results: &mut Vec<(String, CaseResult)>, top: usize) -> String {
    results.sort_by(|a, b| {
        b.1.total_seconds()
            .partial_cmp(&a.1.total_seconds())
            .expect("finite times")
    });
    let max_t = results
        .first()
        .map(|r| r.1.total_seconds())
        .unwrap_or(0.0)
        .max(1e-9);
    let mut out = String::new();
    out.push_str("MOST TIME-CONSUMING CASES (packing + SAT split, real rank)\n");
    out.push_str(&format!(
        "{:<20} {:>10} {:>10} {:>10} {:>6} {:>9}\n",
        "case", "total s", "packing s", "SAT s", "rank", "queries"
    ));
    for (set, r) in results.iter().take(top) {
        let bar_len = (40.0 * r.total_seconds() / max_t).round() as usize;
        let sat_len = if r.total_seconds() > 0.0 {
            (bar_len as f64 * r.sat_seconds / r.total_seconds()).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<20} {:>10.3} {:>10.3} {:>10.3} {:>6} {:>9}  {}{}\n",
            format!("{set} #{}", r.seed),
            r.total_seconds(),
            r.packing_seconds,
            r.sat_seconds,
            r.real_rank,
            r.sat_queries,
            "#".repeat(sat_len),
            "-".repeat(bar_len.saturating_sub(sat_len)),
        ));
    }
    out.push_str("('#' = SAT share, '-' = packing share; the paper observes the\n");
    out.push_str(" dominant cost is proving UNSAT at b = r_B - 1)\n");
    out
}

/// Runs the complete Table I experiment.
///
/// `per_cell` instances per parameter cell (paper: 10) and `gap_cases` per
/// gap family (paper: 100); lower both for a quick pass. SAT certification
/// runs only for matrices with at most `sat_row_limit` rows — the paper
/// certifies its ≤ 10-row sets and declares 100×100 "too large for SMT".
pub fn run_table1(
    per_cell: usize,
    gap_cases: usize,
    budget: Option<u64>,
    time_limit: Option<Duration>,
    sat_row_limit: usize,
) -> (Vec<TableRow>, Vec<(String, CaseResult)>) {
    let suite = table1_suite(per_cell, gap_cases);
    let mut rows = Vec::new();
    let mut all_cases = Vec::new();
    for (set, benches) in &suite {
        let mut results = Vec::with_capacity(benches.len());
        for bench in benches {
            let skip_sat = bench.matrix.nrows() > sat_row_limit;
            let cfg = SapConfig {
                packing: PackingConfig {
                    trials: 100,
                    seed: bench.seed,
                    ..PackingConfig::default()
                },
                conflict_budget: budget,
                time_limit,
                max_sat_cells: if skip_sat { Some(0) } else { None },
                ..SapConfig::default()
            };
            let r = evaluate_case(bench, &cfg);
            all_cases.push((set.clone(), r.clone()));
            results.push(r);
        }
        rows.push(aggregate(set, &results));
    }
    (rows, all_cases)
}

/// Best partition for reporting purposes (helper shared by binaries).
pub fn best_partition(m: &BitMatrix) -> Partition {
    sap(m, &SapConfig::with_trials(100)).partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebmf::gen::{gap_benchmark, known_optimal_benchmark, random_benchmark};

    #[test]
    fn packing_progression_is_monotone() {
        let b = random_benchmark(8, 8, 0.5, 3);
        let prog = packing_progression(&b.matrix, &TRIAL_CHECKPOINTS, 1);
        assert_eq!(prog.len(), 4);
        for w in prog.windows(2) {
            assert!(w[1] <= w[0], "more trials cannot be worse");
        }
    }

    #[test]
    fn evaluate_known_optimal_case() {
        let (bench, _) = known_optimal_benchmark(8, 8, 4, 9);
        let r = evaluate_case(&bench, &SapConfig::default());
        assert_eq!(r.optimal, Some(4));
        assert_eq!(r.real_rank, 4);
        assert!(r.rank_exact);
    }

    #[test]
    fn evaluate_gap_case_exceeds_rank() {
        // Gap instances are built so that r_B > rank_ℝ (usually).
        let bench = gap_benchmark(8, 8, 3, 5);
        let r = evaluate_case(&bench, &SapConfig::default());
        let rb = r.optimal.expect("small case must be certified");
        assert!(rb >= r.real_rank);
    }

    #[test]
    fn aggregate_percentages() {
        let (bench, _) = known_optimal_benchmark(6, 6, 3, 1);
        let r = evaluate_case(&bench, &SapConfig::default());
        let row = aggregate("test", &[r]);
        assert_eq!(row.cases, 1);
        assert_eq!(row.proved, 1);
        assert_eq!(row.rank_pct, 100.0);
        // Known-optimal family: even the trivial heuristic succeeds (paper
        // Observation 2).
        assert_eq!(row.trivial_pct, 100.0);
    }

    #[test]
    fn render_table_contains_sets() {
        let (bench, _) = known_optimal_benchmark(6, 6, 2, 2);
        let r = evaluate_case(&bench, &SapConfig::default());
        let row = aggregate("10x10, opt", &[r]);
        let s = render_table1(&[row]);
        assert!(s.contains("10x10, opt"));
        assert!(s.contains("100%"));
    }

    #[test]
    fn render_figure4_sorts_by_time() {
        let mk = |t: f64| CaseResult {
            params: "p".into(),
            seed: 0,
            optimal: Some(1),
            real_rank: 1,
            rank_exact: true,
            trivial: 1,
            packing: vec![1; 4],
            packing_seconds: t / 2.0,
            sat_seconds: t / 2.0,
            sat_queries: 1,
        };
        let mut cases = vec![("a".to_string(), mk(0.1)), ("b".to_string(), mk(0.5))];
        let s = render_figure4(&mut cases, 2);
        let a_pos = s.find("a #0").unwrap();
        let b_pos = s.find("b #0").unwrap();
        assert!(b_pos < a_pos, "slower case must be listed first");
    }

    #[test]
    fn mini_table1_runs_end_to_end() {
        let (rows, cases) = run_table1(1, 2, Some(50_000), None, 10);
        assert_eq!(rows.len(), 9);
        assert!(!cases.is_empty());
        // The known-optimal set must be fully certified and 100% everywhere.
        let opt_row = rows.iter().find(|r| r.set == "10x10, opt").unwrap();
        assert_eq!(opt_row.proved, opt_row.cases);
        assert_eq!(opt_row.trivial_pct, 100.0);
        assert_eq!(*opt_row.packing_pct.last().unwrap(), 100.0);
    }
}
