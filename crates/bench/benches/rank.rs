//! Criterion bench: the lower-bound machinery — exact rational rank
//! (Bareiss), GF(p) rank, GF(2) rank and the greedy fooling set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{greedy_fooling_set, rank_gf2, rank_gfp, rank_rational, PRIMES_61};

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank");
    for size in [10usize, 30, 100] {
        let m = ebmf::gen::random_benchmark(size, size, 0.5, 21).matrix;
        if size <= 40 {
            group.bench_with_input(BenchmarkId::new("bareiss", size), &m, |b, m| {
                b.iter(|| rank_rational(m).unwrap());
            });
        }
        group.bench_with_input(BenchmarkId::new("gfp", size), &m, |b, m| {
            b.iter(|| rank_gfp(m, PRIMES_61[0]));
        });
        group.bench_with_input(BenchmarkId::new("gf2", size), &m, |b, m| {
            b.iter(|| rank_gf2(m));
        });
    }
    group.finish();
}

fn bench_fooling(c: &mut Criterion) {
    let m = ebmf::gen::random_benchmark(10, 10, 0.3, 13).matrix;
    c.bench_function("greedy_fooling_set/10x10@30%", |b| {
        b.iter(|| greedy_fooling_set(&m));
    });
}

criterion_group!(benches, bench_ranks, bench_fooling);
criterion_main!(benches);
