//! Criterion bench: pattern → AOD schedule compilation at the atom-array
//! technology limit (100×100, paper §IV-A) and schedule verification.

use criterion::{criterion_group, criterion_main, Criterion};
use qaddress::{compile, Pulse, QubitArray, Strategy};

fn bench_compile(c: &mut Criterion) {
    let array = QubitArray::new(100, 100);
    let pattern = ebmf::gen::random_benchmark(100, 100, 0.05, 17).matrix;
    let mut group = c.benchmark_group("compile_100x100@5%");
    group.sample_size(20);
    for (name, strat) in [
        ("individual", Strategy::Individual),
        ("trivial", Strategy::Trivial),
        ("packing5", Strategy::Packing(5)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| compile(&array, &pattern, strat, Pulse::X).unwrap());
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let array = QubitArray::new(100, 100);
    let pattern = ebmf::gen::random_benchmark(100, 100, 0.05, 17).matrix;
    let schedule = compile(&array, &pattern, Strategy::Packing(5), Pulse::X).unwrap();
    c.bench_function("verify_100x100@5%", |b| {
        b.iter(|| schedule.verify(&array, &pattern).unwrap());
    });
}

criterion_group!(benches, bench_compile, bench_verify);
criterion_main!(benches);
