//! Criterion bench: row-packing heuristic scaling (paper §III-B claims
//! `O(n³k)`; the 100×100 point is the paper's technology-limit scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebmf::{row_packing, trivial_partition, PackingConfig};
use rect_addr_bench::packing_progression;

fn bench_row_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_packing");
    for (size, occ) in [
        (10usize, 0.5),
        (20, 0.5),
        (50, 0.2),
        (100, 0.05),
        (100, 0.2),
    ] {
        let bench = ebmf::gen::random_benchmark(size, size, occ, 42);
        let m = bench.matrix;
        group.bench_with_input(
            BenchmarkId::new("trials10", format!("{size}x{size}@{:.0}%", occ * 100.0)),
            &m,
            |b, m| {
                b.iter(|| row_packing(m, &PackingConfig::with_trials(10)));
            },
        );
    }
    group.finish();
}

fn bench_trivial(c: &mut Criterion) {
    let bench = ebmf::gen::random_benchmark(100, 100, 0.1, 7);
    c.bench_function("trivial_partition/100x100@10%", |b| {
        b.iter(|| trivial_partition(&bench.matrix));
    });
}

fn bench_progression(c: &mut Criterion) {
    let bench = ebmf::gen::gap_benchmark(10, 10, 4, 3);
    c.bench_function("packing_progression/10x10gap4/100trials", |b| {
        b.iter(|| packing_progression(&bench.matrix, &[1, 10, 100], 1));
    });
}

criterion_group!(benches, bench_row_packing, bench_trivial, bench_progression);
criterion_main!(benches);
