//! Criterion bench: the exact (SAT) EBMF phase — satisfiable descents and
//! the UNSAT proofs that the paper's Figure 4 identifies as the dominant
//! cost.

use bitmatrix::BitMatrix;
use criterion::{criterion_group, criterion_main, Criterion};
use ebmf::{sap, EbmfEncoder, SapConfig};

fn fig1b() -> BitMatrix {
    "101100\n010011\n101010\n010101\n111000\n000111"
        .parse()
        .unwrap()
}

fn bench_sap_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sap");
    let cases = [
        ("fig1b_6x6", fig1b()),
        (
            "gap_10x10_k3",
            ebmf::gen::gap_benchmark(10, 10, 3, 11).matrix,
        ),
        (
            "rand_10x10_50",
            ebmf::gen::random_benchmark(10, 10, 0.5, 5).matrix,
        ),
    ];
    for (name, m) in cases {
        group.bench_function(name, |b| {
            b.iter(|| sap(&m, &SapConfig::with_trials(10)));
        });
    }
    group.finish();
}

fn bench_unsat_proof(c: &mut Criterion) {
    // Proving r_B(I_6) > 5: the pigeonhole-flavoured UNSAT core of the
    // descent loop, with and without symmetry breaking.
    let m = BitMatrix::identity(6);
    let mut group = c.benchmark_group("unsat_proof_identity6_b5");
    group.bench_function("with_symmetry_breaking", |b| {
        b.iter(|| {
            let mut enc = EbmfEncoder::with_options(&m, None, 5, true);
            assert!(enc.solve().is_unsat());
        });
    });
    group.bench_function("without_symmetry_breaking", |b| {
        b.iter(|| {
            let mut enc = EbmfEncoder::with_options(&m, None, 5, false);
            assert!(enc.solve().is_unsat());
        });
    });
    group.finish();
}

fn bench_encoding_construction(c: &mut Criterion) {
    let m = ebmf::gen::random_benchmark(10, 20, 0.5, 9).matrix;
    c.bench_function("encode_10x20@50%_b9", |b| {
        b.iter(|| EbmfEncoder::new(&m, 9));
    });
}

criterion_group!(
    benches,
    bench_sap_end_to_end,
    bench_unsat_proof,
    bench_encoding_construction
);
criterion_main!(benches);
