//! Criterion bench: the dancing-links exact-cover substrate used by the
//! §VI packing upgrade.

use criterion::{criterion_group, criterion_main, Criterion};
use exactcover::DlxBuilder;

/// Exact-cover formulation of n×n Latin squares.
fn latin_square_builder(n: usize) -> DlxBuilder {
    let cell = |r: usize, c: usize| r * n + c;
    let rowsym = |r: usize, s: usize| n * n + r * n + s;
    let colsym = |c: usize, s: usize| 2 * n * n + c * n + s;
    let mut b = DlxBuilder::new(3 * n * n, 0);
    for r in 0..n {
        for c in 0..n {
            for s in 0..n {
                b.add_row(&[cell(r, c), rowsym(r, s), colsym(c, s)]);
            }
        }
    }
    b
}

fn bench_latin_squares(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlx_latin_squares");
    for n in [3usize, 4] {
        let builder = latin_square_builder(n);
        group.bench_function(format!("count_{n}x{n}"), |b| {
            b.iter(|| builder.build().count_solutions());
        });
    }
    group.finish();
}

fn bench_first_solution(c: &mut Criterion) {
    let builder = latin_square_builder(5);
    c.bench_function("dlx_first_solution_5x5", |b| {
        b.iter(|| builder.build().first_solution().unwrap());
    });
}

criterion_group!(benches, bench_latin_squares, bench_first_solution);
criterion_main!(benches);
