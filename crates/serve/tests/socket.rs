//! The socket front-end, end to end over real sockets: the v2 protocol
//! (handshake → capabilities, priority, cancel round-trip, busy
//! backpressure, stats frame, versioned summary) on TCP; N concurrent
//! clients multiplexed onto one shared engine with exactly-shared cache
//! stats; and a Unix-domain pump smoke.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::{distinct_job, gated_engine, Gate};
use engine::protocol::{
    CancelAck, ErrorKind, HelloAck, JobRequest, JobResponse, StatsFrame, SummaryFrame,
};
use engine::EngineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rect_addr_serve::{pump, serve_socket, BindAddr, LineClient, Service, ServiceConfig};

#[test]
fn bind_addr_classification() {
    assert_eq!(
        BindAddr::parse("/tmp/x.sock"),
        BindAddr::Unix("/tmp/x.sock".into())
    );
    assert_eq!(
        BindAddr::parse("rect.sock"),
        BindAddr::Unix("rect.sock".into())
    );
    assert_eq!(
        BindAddr::parse("unix:relative-path"),
        BindAddr::Unix("relative-path".into())
    );
    assert_eq!(
        BindAddr::parse("127.0.0.1:7070"),
        BindAddr::Tcp("127.0.0.1:7070".to_string())
    );
    assert_eq!(
        BindAddr::parse("tcp:localhost:0"),
        BindAddr::Tcp("localhost:0".to_string())
    );
    assert_eq!(
        BindAddr::parse("/tmp/x.sock").to_string(),
        "unix:/tmp/x.sock"
    );
}

/// The full v2 session over a real TCP socket: handshake unlocks
/// capabilities, priority and deadline fields, cancel frames, busy
/// responses at the queue bound, the stats frame, and a v2 summary.
#[test]
fn v2_session_over_tcp() {
    let gate = Gate::new();
    let service = Arc::new(Service::new(
        gated_engine(&gate, 1),
        ServiceConfig {
            workers: 1,
            queue_depth: 2,
            persist: None,
        },
    ));
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    let ack: HelloAck = client.handshake().unwrap();
    assert_eq!(ack.protocol, 2);
    assert!(ack.server.starts_with("rect-addr/"), "{}", ack.server);
    assert_eq!(ack.capabilities.queue_depth, 2);
    assert_eq!(ack.capabilities.workers, 1);

    // Occupy the worker, then fill the queue of 2.
    client.send_job(&distinct_job("running", 0)).unwrap();
    gate.wait_started(1);
    client
        .send_job(&distinct_job("low", 1).with_priority(-1))
        .unwrap();
    client
        .send_job(&distinct_job("high", 2).with_priority(9))
        .unwrap();

    // Queue full → the next job bounces with a busy error, v2-shaped.
    client.send_job(&distinct_job("bounced", 3)).unwrap();
    let busy = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!(busy.id, "bounced");
    assert_eq!(busy.error_kind(), Some(ErrorKind::Busy));

    // Cancel the queued low-priority job: its canceled response is
    // delivered first, then the ack (see `CancelAck` docs).
    client.send_line("{\"cancel\": \"low\"}").unwrap();
    let canceled = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!(canceled.id, "low");
    assert_eq!(canceled.error_kind(), Some(ErrorKind::Canceled));
    let ack = CancelAck::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!((ack.id.as_str(), ack.done), ("low", true));

    // Canceling a finished/unknown id is acked as not-done.
    client.send_line("{\"cancel\": \"nope\"}").unwrap();
    let ack = CancelAck::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert!(!ack.done);

    // Stats frame: one job running, one queued.
    client.send_line("{\"stats\": true}").unwrap();
    let stats = StatsFrame::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!(stats.queue_depth, 2);
    assert_eq!(stats.queue_len, 1, "high is queued behind running");

    gate.open();
    client.finish_jobs().unwrap();

    // Drain: remaining responses (completion order: running, then high),
    // then the v2 summary, then EOF.
    let mut remaining = Vec::new();
    while let Some(line) = client.recv_line().unwrap() {
        remaining.push(line);
    }
    assert_eq!(remaining.len(), 3, "{remaining:?}");
    let running = JobResponse::parse_line(&remaining[0]).unwrap();
    assert_eq!(running.id, "running");
    assert!(running.ok);
    let high = JobResponse::parse_line(&remaining[1]).unwrap();
    assert_eq!(high.id, "high");
    let summary_line = &remaining[2];
    assert!(SummaryFrame::is_summary_line(summary_line));
    assert!(summary_line.contains("\"protocol\": 2"), "{summary_line}");
    let summary = SummaryFrame::parse_line(summary_line).unwrap();
    assert_eq!(summary.solved, 2);
    assert_eq!(summary.canceled, 1);
    assert_eq!(summary.busy, 1);
    assert_eq!(summary.failed, 0);

    server.shutdown();
}

/// N clients × M jobs against one service: responses correlate per
/// client by id, and the canonical cache is *exactly shared* — every
/// distinct permutation class misses once across all clients, everything
/// else hits (flight waits included), with nothing double-counted.
#[test]
fn concurrent_clients_share_one_cache() {
    const CLIENTS: usize = 4;
    const JOBS: usize = 8;
    const CLASSES: usize = 4;

    let service = Arc::new(Service::with_engine_config(
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    ));
    let engine = service.engine().clone();
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();
    let addr = server.local_addr().clone();

    // Every client submits permuted duplicates of the same CLASSES bases.
    let bases: Vec<bitmatrix::BitMatrix> = (0..CLASSES)
        .map(|i| ebmf::gen::random_benchmark(6, 6, 0.4, 500 + i as u64).matrix)
        .collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let bases = bases.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(c as u64);
                let mut client = LineClient::connect(&addr).unwrap();
                if c % 2 == 0 {
                    // Half the clients speak v2; the cache is shared either way.
                    client.handshake().unwrap();
                }
                for j in 0..JOBS {
                    let base = &bases[j % CLASSES];
                    let rp = bitmatrix::random_permutation(base.nrows(), &mut rng);
                    let cp = bitmatrix::random_permutation(base.ncols(), &mut rng);
                    let req = JobRequest::new(format!("c{c}-j{j}"), base.submatrix(&rp, &cp));
                    client.send_job(&req).unwrap();
                }
                client.finish_jobs().unwrap();

                let mut responses = BTreeMap::new();
                let mut summary = None;
                while let Some(line) = client.recv_line().unwrap() {
                    if SummaryFrame::is_summary_line(&line) {
                        summary = Some(SummaryFrame::parse_line(&line).unwrap());
                        continue;
                    }
                    let resp = JobResponse::parse_line(&line).unwrap();
                    assert!(resp.ok, "job {} failed: {:?}", resp.id, resp.error);
                    // Per-client correlation: only this client's ids arrive.
                    assert!(
                        resp.id.starts_with(&format!("c{c}-")),
                        "foreign id {} on client {c}",
                        resp.id
                    );
                    responses.insert(resp.id.clone(), resp);
                }
                let summary = summary.expect("summary frame before EOF");
                assert_eq!(summary.solved as usize, JOBS);
                assert_eq!(responses.len(), JOBS, "every job answered exactly once");
                responses.len()
            })
        })
        .collect();
    for handle in clients {
        handle.join().unwrap();
    }

    // Exactly-shared cache: CLIENTS × JOBS lookups total, one miss per
    // distinct class across *all* clients, and hits counted once each.
    let stats = engine.cache_stats();
    assert_eq!(stats.misses as usize, CLASSES, "one miss per class");
    assert_eq!(
        stats.hits as usize,
        CLIENTS * JOBS - CLASSES,
        "every other lookup is a shared hit"
    );
    assert_eq!(stats.entries as usize, CLASSES);

    server.shutdown();
}

/// Shutting the listener down while a client is connected but idle must
/// not hang: the server half-closes the connection's read side, the
/// connection drains (here: nothing in flight) and still delivers its
/// summary frame before the socket closes.
#[test]
fn shutdown_unblocks_idle_connections_and_still_summarizes() {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig::default(),
        ServiceConfig::default(),
    ));
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();
    let mut client = LineClient::connect(server.local_addr()).unwrap();
    client.send_job(&distinct_job("only", 0)).unwrap();
    let first = client.recv_line().unwrap().expect("job answered");
    assert!(JobResponse::parse_line(&first).unwrap().ok);

    // Client now idles with the socket open; shutdown must complete.
    let done = std::sync::mpsc::channel();
    let closer = std::thread::spawn(move || {
        server.shutdown();
        done.0.send(()).unwrap();
    });
    done.1
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown must not hang on an idle connection");
    closer.join().unwrap();

    // The forced EOF still drained: the summary frame reaches the client.
    let summary = client.recv_line().unwrap().expect("summary before close");
    assert!(SummaryFrame::is_summary_line(&summary), "{summary}");
    assert!(summary.contains("\"solved\": 1"), "{summary}");
    assert_eq!(client.recv_line().unwrap(), None, "then EOF");
}

#[test]
fn unix_socket_pump_roundtrip() {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig::default(),
        ServiceConfig::default(),
    ));
    let path = std::env::temp_dir().join(format!("rect-addr-test-{}.sock", std::process::id()));
    let addr = BindAddr::Unix(path.clone());
    let mut server = serve_socket(service, &addr).unwrap();

    let jobs = "{\"id\": \"a\", \"matrix\": \"10;01\"}\n\
                {\"id\": \"b\", \"matrix\": \"01;10\"}\n\
                {\"id\": \"c\", \"matrix\": \"11;11\"}\n";
    let mut out = Vec::new();
    let lines = pump(&addr, jobs.as_bytes(), &mut out).unwrap();
    assert_eq!(lines, 4, "3 responses + summary");
    let text = String::from_utf8(out).unwrap();
    let last = text.lines().last().unwrap();
    assert!(SummaryFrame::is_summary_line(last), "{text}");
    assert!(last.contains("\"solved\": 3"), "{text}");
    assert!(last.contains("\"cache_hits\": 1"), "b permutes a: {text}");

    server.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// Binding onto an existing *non-socket* path must refuse, not delete
/// the user's file.
#[test]
fn binding_onto_a_regular_file_refuses_instead_of_deleting() {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig::default(),
        ServiceConfig::default(),
    ));
    let path = std::env::temp_dir().join(format!("rect-addr-notsock-{}", std::process::id()));
    std::fs::write(&path, "precious data").unwrap();

    let err = serve_socket(service, &BindAddr::Unix(path.clone())).unwrap_err();
    assert!(err.to_string().contains("not a socket"), "{err}");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        "precious data",
        "existing file untouched"
    );
    let _ = std::fs::remove_file(&path);
}
