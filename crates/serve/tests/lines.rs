//! Protocol-v1 connection semantics over in-memory streams: the legacy
//! `run_batch` contract (every job answered, errors carried, truncated
//! and unreadable input handled, flush per response), the README's exact
//! v1 lines as a back-compat regression, and the graceful-drain ordering
//! guarantee (every in-flight response precedes the summary trailer).

mod common;

use std::io::Write;

use common::{distinct_job, gated_engine, Gate};
use engine::protocol::{JobResponse, SummaryFrame};
use engine::EngineConfig;
use proto::WireVersion;
use rect_addr_serve::{serve_connection, Service, ServiceConfig};

fn service() -> Service {
    Service::with_engine_config(
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    )
}

#[test]
fn answers_every_job_and_reports_errors() {
    let service = service();
    let input = "\
{\"id\": \"a\", \"matrix\": [\"10\", \"01\"]}\n\
\n\
{\"id\": \"bad\", \"matrix\": [\"10\", \"0\"]}\n\
{\"id\": \"b\", \"matrix\": \"11;11\"}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 2);
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.version, WireVersion::V1);

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "3 responses + summary:\n{text}");
    let responses: Vec<JobResponse> = lines[..3]
        .iter()
        .map(|l| JobResponse::parse_line(l).unwrap())
        .collect();
    let by_id = |id: &str| responses.iter().find(|r| r.id == id).unwrap();
    assert!(by_id("a").ok && by_id("a").depth == 2);
    assert!(by_id("b").ok && by_id("b").depth == 1);
    assert!(!by_id("bad").ok);
    assert!(by_id("bad")
        .error_message()
        .unwrap()
        .contains("invalid matrix"));
    let trailer = SummaryFrame::parse_line(lines[3]).unwrap();
    assert_eq!((trailer.solved, trailer.failed), (2, 1));
}

#[test]
fn survives_truncated_final_line() {
    // EOF mid-line: the partial JSON is reported as a protocol error,
    // earlier jobs still solve, and the stream ends cleanly.
    let service = service();
    let input = "{\"id\": \"whole\", \"matrix\": \"1\"}\n{\"id\": \"cut\", \"mat";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.failed, 1);
    let text = String::from_utf8(out).unwrap();
    let failed = text
        .lines()
        .take(2)
        .map(|l| JobResponse::parse_line(l).unwrap())
        .find(|r| !r.ok)
        .expect("truncated line must answer");
    assert_eq!(failed.id, "job-2");
}

#[test]
fn reports_unreadable_input_as_protocol_error() {
    // Invalid UTF-8 on the job stream: one error response, clean end, no
    // Err bubbling up to tear down the connection.
    let service = service();
    let input: &[u8] = b"{\"id\": \"ok\", \"matrix\": \"1\"}\n\xff\xfe garbage\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input, &mut out).unwrap();
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.failed, 1);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("input read error"), "{text}");
}

#[test]
fn flushes_after_every_response() {
    /// Write sink counting flushes.
    struct CountingSink {
        bytes: Vec<u8>,
        flushes: usize,
    }
    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }
    let service = service();
    let input = "{\"id\": \"a\", \"matrix\": \"1\"}\n{\"id\": \"b\", \"matrix\": \"10;01\"}\n";
    let mut sink = CountingSink {
        bytes: Vec::new(),
        flushes: 0,
    };
    let summary = serve_connection(&service, input.as_bytes(), &mut sink).unwrap();
    assert_eq!(summary.solved, 2);
    assert!(
        sink.flushes >= 3,
        "every response plus the summary must flush, saw {} flushes",
        sink.flushes
    );
}

/// The exact quickstart lines from README.md must work unchanged through
/// the Service stack and be answered in v1 shape — the wire-level
/// back-compat criterion of the protocol split.
#[test]
fn readme_v1_lines_regression() {
    // One worker: l0 completes before l1 starts, so l1 is deterministically
    // the cache hit (with more workers, l1 may *lead* the single flight).
    let service = Service::with_engine_config(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    );
    let input = "{\"id\": \"l0\", \"matrix\": [\"101\", \"010\"], \"budget_ms\": 500}\n\
                 {\"id\": \"l1\", \"matrix\": \"010;101\"}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 2);
    assert_eq!(summary.failed, 0);

    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");

    for line in &lines[..2] {
        let resp = JobResponse::parse_line(line).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.depth, 2);
        assert!(resp.proved_optimal);
        // v1 field set, verbatim key spelling.
        for field in [
            "\"ok\": true",
            "\"depth\": 2",
            "\"proved_optimal\": true",
            "\"provenance\": ",
            "\"cache_hit\": ",
            "\"millis\": ",
            "\"conflicts\": ",
            "\"partition\": [",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    // l1 is l0 with rows swapped: the shared cache answers it.
    let l1 = lines[..2]
        .iter()
        .map(|l| JobResponse::parse_line(l).unwrap())
        .find(|r| r.id == "l1")
        .unwrap();
    assert!(l1.cache_hit);
    assert_eq!(l1.provenance, "cache");

    // The trailer is the v1 shape: no v2-only keys.
    let trailer = lines[2];
    assert!(trailer.starts_with("{\"summary\": true, \"solved\": 2, \"failed\": 0"));
    for v2_only in ["\"protocol\"", "\"canceled\"", "\"busy\""] {
        assert!(!trailer.contains(v2_only), "v2 key {v2_only} in {trailer}");
    }
    for field in [
        "\"cache_hits\": 1",
        "\"cache_entries\": 1",
        "\"cache_evictions\": 0",
        "\"flight_waits\": ",
        "\"warm_sessions\": ",
        "\"canon_complete\": 2",
        "\"canon_heuristic\": 0",
    ] {
        assert!(trailer.contains(field), "missing {field} in {trailer}");
    }
}

/// A malformed handshake attempt (a first line with a `hello` key that
/// does not parse) answers its protocol error instead of being misread
/// as a v1 job, and the connection stays v1.
#[test]
fn malformed_hello_reports_a_protocol_error() {
    let service = service();
    let input = "{\"hello\": \"two\"}\n{\"id\": \"j\", \"matrix\": \"1\"}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.version, WireVersion::V1, "failed hello stays v1");

    let text = String::from_utf8(out).unwrap();
    let bad = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .find(|r| !r.ok)
        .expect("protocol error response");
    assert!(
        bad.error_message().unwrap().contains("hello"),
        "the hello-specific error, not a generic matrix error: {:?}",
        bad.error
    );
}

/// A legacy first job line that happens to carry a `hello` field is a
/// job (unknown fields were always ignored), not a hijacked handshake.
#[test]
fn first_job_line_with_stray_hello_field_stays_a_v1_job() {
    let service = service();
    let input = "{\"id\": \"x\", \"matrix\": \"1\", \"hello\": 5, \"priority\": true}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 1, "{}", String::from_utf8(out).unwrap());
    assert_eq!(summary.version, WireVersion::V1);
}

/// On a handshaked v2 connection, a job line carrying a stray
/// control-marker-named field (`stats`, `cancel`) is still a job — it
/// must be solved, not silently consumed as a control frame.
#[test]
fn v2_job_lines_with_stray_marker_fields_stay_jobs() {
    let service = service();
    let input = "{\"hello\": 2}\n\
                 {\"id\": \"s\", \"matrix\": \"10;01\", \"stats\": true}\n\
                 {\"id\": \"c\", \"matrix\": \"1\", \"cancel\": \"s\"}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(summary.version, WireVersion::V2);
    assert_eq!(summary.solved, 2, "both jobs must run:\n{text}");
    assert_eq!(summary.canceled, 0);
    let ids: Vec<String> = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .filter(|r| r.ok)
        .map(|r| r.id)
        .collect();
    assert!(ids.contains(&"s".to_string()) && ids.contains(&"c".to_string()));
    // No stats frame or cancel ack was emitted for those lines.
    assert!(!text.contains("\"stats\": true"), "{text}");
    assert!(!text.contains("\"done\":"), "{text}");
}

/// A v2 connection that opts into `timing` at handshake gets a stage
/// trace on every response; the trace is internally consistent (each
/// stage bounded by the total) and round-trips through the parser.
#[test]
fn timing_opt_in_puts_stage_traces_on_v2_responses() {
    let service = service();
    let input = "{\"hello\": 2, \"timing\": true}\n\
                 {\"id\": \"t0\", \"matrix\": \"10;01\"}\n\
                 {\"id\": \"t1\", \"matrix\": \"01;10\"}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.version, WireVersion::V2);
    assert_eq!(summary.solved, 2);

    let text = String::from_utf8(out).unwrap();
    assert!(
        text.contains("\"timing\": true"),
        "hello ack must advertise the capability:\n{text}"
    );
    let responses: Vec<JobResponse> = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .filter(|r| r.ok)
        .collect();
    assert_eq!(responses.len(), 2, "{text}");
    for resp in &responses {
        let timing = resp
            .timing
            .unwrap_or_else(|| panic!("opted-in response must carry timing: {}", resp.id));
        for stage in [
            timing.queue_us,
            timing.canon_us,
            timing.cache_us,
            timing.race_us,
        ] {
            assert!(
                stage <= timing.total_us,
                "stage {stage} exceeds total {} for {}",
                timing.total_us,
                resp.id
            );
        }
    }
}

/// Without the handshake flag, v2 responses stay timing-free — the trace
/// exists server-side but never reaches the wire uninvited. Same for v1,
/// whose byte shape is frozen.
#[test]
fn timing_stays_off_the_wire_unless_opted_in() {
    for input in [
        "{\"hello\": 2}\n{\"id\": \"q\", \"matrix\": \"1\"}\n", // v2, no flag
        "{\"id\": \"q\", \"matrix\": \"1\"}\n",                 // v1
    ] {
        let service = service();
        let mut out = Vec::new();
        let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.solved, 1);
        let text = String::from_utf8(out).unwrap();
        for line in text.lines().filter(|l| l.contains("\"id\": \"q\"")) {
            assert!(!line.contains("\"timing\""), "uninvited timing in {line}");
        }
    }
}

/// A v2 connection that opts into `certificate` at handshake gets the
/// self-contained (DIMACS, DRAT) refutation on certified UNSAT-proved
/// answers, and the standalone checker accepts it straight off the wire.
#[test]
fn certificate_opt_in_puts_proofs_on_v2_responses() {
    let service = service();
    // Fig. 1b: depth 5 over a rank floor of 4, so optimality rests on an
    // UNSAT answer — the one case a certificate exists for.
    let input = "{\"hello\": 2, \"certificate\": true}\n\
                 {\"id\": \"c0\", \"matrix\": \"101100;010011;101010;010101;111000;000111\", \
                  \"certify\": true}\n";
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.version, WireVersion::V2);
    assert_eq!(summary.solved, 1);

    let text = String::from_utf8(out).unwrap();
    assert!(
        text.contains("\"certificate\": true"),
        "hello ack must advertise the capability:\n{text}"
    );
    let resp = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .find(|r| r.ok)
        .unwrap_or_else(|| panic!("solved response expected:\n{text}"));
    assert!(resp.proved_optimal && resp.depth == 5);
    let cert = resp
        .certificate
        .unwrap_or_else(|| panic!("opted-in certify response must carry a certificate:\n{text}"));
    assert_eq!(cert.bound + 1, resp.depth, "refutes the bound below");
    certcheck::check_certificate(&cert.cnf, &cert.drat)
        .expect("wire-delivered certificate must pass the standalone checker");
}

/// Without the handshake flag the proof never reaches the wire — and the
/// `certify` request flag is dropped at the reader so the solver does not
/// pay for proof logging nobody can receive. v1 is frozen and never
/// carries it either.
#[test]
fn certificates_stay_off_the_wire_unless_opted_in() {
    for input in [
        // v2 without the flag.
        "{\"hello\": 2}\n{\"id\": \"q\", \"matrix\": \
         \"101100;010011;101010;010101;111000;000111\", \"certify\": true}\n",
        // v1: certify is not even a v1 request field.
        "{\"id\": \"q\", \"matrix\": \"101100;010011;101010;010101;111000;000111\", \
         \"certify\": true}\n",
    ] {
        let service = service();
        let mut out = Vec::new();
        let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.solved, 1);
        let text = String::from_utf8(out).unwrap();
        for line in text.lines().filter(|l| l.contains("\"id\": \"q\"")) {
            assert!(
                !line.contains("\"certificate\""),
                "uninvited certificate in {line}"
            );
        }
    }
}

/// An oversized line (no newline in sight) answers one protocol error
/// and closes the connection — with the summary trailer still emitted —
/// instead of buffering the line without bound.
#[test]
fn oversized_lines_answer_protocol_error_and_close() {
    let service = service();
    let mut input = Vec::from(&b"{\"id\": \"ok\", \"matrix\": \"1\"}\n"[..]);
    input.extend(std::iter::repeat_n(b'x', proto::MAX_LINE_BYTES + 1));
    let mut out = Vec::new();
    let summary = serve_connection(&service, &input[..], &mut out).unwrap();
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.failed, 1);
    let text = String::from_utf8(out).unwrap();
    let failed = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .find(|r| !r.ok)
        .expect("oversized line must answer");
    assert_eq!(failed.id, "job-2");
    assert!(
        failed.error_message().unwrap().contains("exceeds"),
        "{:?}",
        failed.error
    );
    assert!(
        SummaryFrame::is_summary_line(text.lines().last().unwrap()),
        "trailer still closes the stream:\n{text}"
    );
}

/// A deeply nested JSON bomb (one line of repeated `[`/`{`) is a parse
/// error response, not a parser stack overflow that aborts the process;
/// the connection keeps serving afterwards.
#[test]
fn nesting_bomb_is_a_parse_error_not_a_crash() {
    let service = service();
    let bomb = "[".repeat(100_000);
    let input = format!("{bomb}\n{{\"id\": \"after\", \"matrix\": \"1\"}}\n");
    let mut out = Vec::new();
    let summary = serve_connection(&service, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.failed, 1);
    let text = String::from_utf8(out).unwrap();
    let after = text
        .lines()
        .filter_map(|l| JobResponse::parse_line(l).ok())
        .find(|r| r.id == "after")
        .expect("connection must keep serving after the bomb");
    assert!(after.ok);
}

/// The lowest expressible priority must sort last, not panic or jump the
/// queue (i64::MIN negation saturates).
#[test]
fn extreme_priorities_are_ordered_not_overflowed() {
    use engine::protocol::JobRequest;
    let gate = Gate::new();
    let engine = gated_engine(&gate, 1);
    let service = Service::new(
        engine,
        rect_addr_serve::ServiceConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let (tx, rx) = std::sync::mpsc::channel();
    service
        .submit_to(distinct_job("running", 0), tx.clone())
        .unwrap();
    gate.wait_started(1);
    let lowest = JobRequest::new("lowest", common::distinct_matrix(1)).with_priority(i64::MIN);
    service.submit_to(lowest, tx.clone()).unwrap();
    service
        .submit_to(distinct_job("normal", 2), tx.clone())
        .unwrap();
    drop(tx);
    gate.open();
    let order: Vec<String> = rx
        .iter()
        .map(|event| match event {
            rect_addr_serve::OutEvent::Response(resp) => resp.id,
            rect_addr_serve::OutEvent::Control(line) => panic!("unexpected control {line}"),
        })
        .collect();
    assert_eq!(order, ["running", "normal", "lowest"]);
}

/// Graceful drain: end-of-input with jobs still queued/running must
/// answer every one of them *before* the summary trailer — never drop
/// the trailer, never emit it early.
#[test]
fn drains_in_flight_jobs_before_the_summary() {
    let gate = Gate::new();
    let engine = gated_engine(&gate, 2);
    let service = std::sync::Arc::new(Service::new(
        engine,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));

    let mut input = String::new();
    for i in 0..5 {
        input.push_str(&distinct_job(&format!("d{i}"), i).to_json_line());
        input.push('\n');
    }

    let conn_service = service.clone();
    let conn = std::thread::spawn(move || {
        let mut out = Vec::new();
        let summary = serve_connection(&conn_service, input.as_bytes(), &mut out).unwrap();
        (summary, String::from_utf8(out).unwrap())
    });

    // Both workers are now holding the gate (EOF on input was reached
    // immediately — the remaining jobs sit in the queue), yet nothing has
    // been answered.
    gate.wait_started(2);
    gate.open();

    let (summary, text) = conn.join().unwrap();
    assert_eq!(summary.solved, 5, "{text}");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "5 responses + summary:\n{text}");
    for line in &lines[..5] {
        assert!(
            JobResponse::parse_line(line).unwrap().ok,
            "response expected before the trailer: {line}"
        );
    }
    assert!(
        SummaryFrame::is_summary_line(lines[5]),
        "summary must be the final line: {}",
        lines[5]
    );
}
