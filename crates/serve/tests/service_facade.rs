//! The `Service` facade contract: submit/wait, cancel-while-queued,
//! busy backpressure at the queue bound, priority ordering, queue
//! deadlines, stats, and shutdown draining.

mod common;

use std::sync::mpsc;
use std::sync::Arc;

use common::{distinct_job, gated_engine, Gate};
use engine::protocol::{ErrorKind, JobRequest};
use engine::EngineConfig;
use rect_addr_serve::{OutEvent, Service, ServiceConfig, SubmitError};

fn gated_service(gate: &Arc<Gate>, workers: usize, queue_depth: usize) -> Service {
    Service::new(
        gated_engine(gate, workers),
        ServiceConfig {
            workers,
            queue_depth,
            persist: None,
        },
    )
}

#[test]
fn submit_and_wait_solves_through_the_engine() {
    let service = Service::with_engine_config(EngineConfig::default(), ServiceConfig::default());
    let handle = service
        .submit(JobRequest::new("j", "110\n011\n111".parse().unwrap()))
        .unwrap();
    assert_eq!(handle.id(), "j");
    let resp = handle.wait();
    assert!(resp.ok);
    assert_eq!(resp.depth, 3);
    assert!(resp.proved_optimal);
}

#[test]
fn cancel_removes_queued_jobs_but_not_running_ones() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 64);

    let running = service.submit(distinct_job("running", 0)).unwrap();
    gate.wait_started(1); // the single worker is now holding "running"
    let queued = service.submit(distinct_job("queued", 1)).unwrap();

    // A running job cannot be canceled; a queued one can, exactly once.
    assert!(!service.cancel(running.ticket()));
    assert!(service.cancel(queued.ticket()));
    assert!(!service.cancel(queued.ticket()), "cancel is not idempotent");
    assert!(!service.cancel(9_999_999), "unknown tickets answer false");

    let canceled = queued.wait();
    assert!(!canceled.ok);
    assert_eq!(canceled.error_kind(), Some(ErrorKind::Canceled));
    assert_eq!(canceled.id, "queued");

    gate.open();
    let ran = running.wait();
    assert!(ran.ok, "the running job still completes: {:?}", ran.error);
}

#[test]
fn full_queue_rejects_with_busy_and_recovers() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 1);

    let running = service.submit(distinct_job("running", 0)).unwrap();
    gate.wait_started(1); // worker busy; queue empty again
    let queued = service.submit(distinct_job("queued", 1)).unwrap();

    // Queue is at its bound of 1: the next submit is rejected, not queued.
    match service.submit(distinct_job("rejected", 2)) {
        Err(SubmitError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    let err = SubmitError::Busy.to_job_error(service.queue_depth());
    assert_eq!(err.kind, ErrorKind::Busy);
    assert!(err.message.contains("depth 1"), "{}", err.message);

    gate.open();
    assert!(running.wait().ok);
    assert!(queued.wait().ok);

    // Space freed: submissions are accepted again.
    assert!(service.submit(distinct_job("later", 3)).unwrap().wait().ok);
}

#[test]
fn higher_priority_jobs_run_first_fifo_within_a_tier() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 64);
    let (tx, rx) = mpsc::channel();

    // Occupy the single worker, then queue under distinct priorities.
    service
        .submit_to(distinct_job("running", 0), tx.clone())
        .unwrap();
    gate.wait_started(1);
    for (i, (id, priority)) in [("low-a", 0), ("high", 5), ("low-b", 0), ("mid", 3)]
        .into_iter()
        .enumerate()
    {
        service
            .submit_to(distinct_job(id, i + 1).with_priority(priority), tx.clone())
            .unwrap();
    }
    drop(tx);
    gate.open();

    let order: Vec<String> = rx
        .iter()
        .map(|event| match event {
            OutEvent::Response(resp) => {
                assert!(resp.ok);
                resp.id
            }
            OutEvent::Control(line) => panic!("unexpected control frame {line}"),
        })
        .collect();
    assert_eq!(order, ["running", "high", "mid", "low-a", "low-b"]);
}

#[test]
fn expired_queue_deadline_answers_deadline_error() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 64);

    let running = service.submit(distinct_job("running", 0)).unwrap();
    gate.wait_started(1);
    let doomed = service
        .submit(distinct_job("doomed", 1).with_deadline_ms(1))
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    gate.open();

    assert!(running.wait().ok);
    let resp = doomed.wait();
    assert!(!resp.ok);
    assert_eq!(resp.error_kind(), Some(ErrorKind::Deadline));
    assert!(
        resp.error_message().unwrap().contains("deadline of 1ms"),
        "{:?}",
        resp.error
    );
}

#[test]
fn stats_report_queue_occupancy() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 8);

    let a = service.submit(distinct_job("a", 0)).unwrap();
    gate.wait_started(1);
    let b = service.submit(distinct_job("b", 1)).unwrap();

    let stats = service.stats();
    assert_eq!(stats.queue_depth, 8);
    assert_eq!(stats.queue_len, 1, "one job queued behind the running one");
    assert_eq!(stats.cache.misses, 1, "only the running job looked up");

    gate.open();
    assert!(a.wait().ok && b.wait().ok);
    assert_eq!(service.stats().queue_len, 0);
}

#[test]
fn shutdown_answers_every_accepted_job() {
    let gate = Gate::new();
    let service = gated_service(&gate, 2, 64);
    let handles: Vec<_> = (0..6)
        .map(|i| service.submit(distinct_job(&format!("s{i}"), i)).unwrap())
        .collect();
    gate.open();
    service.shutdown(); // drains the queue, joins workers
    for handle in handles {
        assert!(handle.wait().ok, "accepted jobs are answered before exit");
    }
    // After shutdown, new submissions are refused.
    match service.submit(distinct_job("late", 7)) {
        Err(SubmitError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn cancel_group_abandons_only_that_groups_queued_jobs() {
    let gate = Gate::new();
    let service = gated_service(&gate, 1, 64);
    let (tx, rx) = mpsc::channel();

    let mine = service.new_group();
    let other = service.new_group();
    service
        .submit_grouped(distinct_job("running", 0), tx.clone(), mine, false)
        .unwrap();
    gate.wait_started(1);
    service
        .submit_grouped(distinct_job("mine-a", 1), tx.clone(), mine, false)
        .unwrap();
    service
        .submit_grouped(distinct_job("theirs", 2), tx.clone(), other, false)
        .unwrap();
    service
        .submit_grouped(distinct_job("mine-b", 3), tx.clone(), mine, false)
        .unwrap();

    // Only the two queued jobs of `mine` go; "running" and "theirs" stay.
    assert_eq!(service.cancel_group(mine), 2);
    assert_eq!(service.cancel_group(mine), 0, "second sweep finds nothing");
    assert_eq!(service.cancel_group(0), 0, "ungrouped never matches");

    gate.open();
    drop(tx);
    let mut canceled = Vec::new();
    let mut solved = Vec::new();
    for event in rx {
        if let OutEvent::Response(resp) = event {
            if resp.error_kind() == Some(ErrorKind::Canceled) {
                canceled.push(resp.id);
            } else {
                assert!(resp.ok);
                solved.push(resp.id);
            }
        }
    }
    canceled.sort();
    solved.sort();
    assert_eq!(canceled, ["mine-a", "mine-b"]);
    assert_eq!(solved, ["running", "theirs"]);
}

#[test]
fn capabilities_reflect_configuration() {
    let service = Service::with_engine_config(
        EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        },
        ServiceConfig {
            queue_depth: 17,
            workers: 3,
            persist: None,
        },
    );
    let caps = service.capabilities();
    assert_eq!(caps.queue_depth, 17);
    assert_eq!(caps.workers, 3);
    assert!(caps.strategies.contains(&"sap".to_string()));
    assert!(caps.strategies.contains(&"trivial".to_string()));
    assert_eq!(caps.shards, EngineConfig::default().cache_shards as u64);
    assert_eq!(
        caps.canon_budget,
        EngineConfig::default().canon.max_branches as u64
    );
}
