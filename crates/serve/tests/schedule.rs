//! Multi-layer `schedule` frames over a real socket: sequential layer
//! execution against one warm service (cross-layer cache reuse), streamed
//! per-layer responses with a trailing summary, cancel-with-partial-
//! results, per-layer deadlines measured from acceptance, and the
//! schedule counters in stats frames and the v2 session summary.

mod common;

use std::sync::Arc;
use std::time::Duration;

use bitmatrix::BitMatrix;
use common::{distinct_matrix, gated_engine, Gate};
use engine::protocol::{
    CancelAck, ErrorKind, HelloAck, JobResponse, ScheduleRequest, ScheduleSummary, StatsFrame,
    SummaryFrame,
};
use engine::EngineConfig;
use rect_addr_serve::{serve_socket, BindAddr, LineClient, Service, ServiceConfig};

/// Row stripes of period 2, phase `k % 2` — the vertical-pairing masks of
/// a nearest-neighbor circuit round. Layer `k` repeats layer `k - 2`
/// byte-for-byte, so a 3-layer schedule is guaranteed one cache hit.
fn stripe_layer(k: usize) -> BitMatrix {
    BitMatrix::from_fn(6, 6, move |r, _| r % 2 == k % 2)
}

/// The tentpole, end to end: a v2 client submits one 3-layer schedule
/// over TCP; the server streams the layer responses in order (layer 2
/// answered by the canonical cache that layer 0 warmed), trails them
/// with the aggregated schedule summary, and the schedule counters show
/// up in the stats frame and the session summary.
#[test]
fn schedule_streams_layers_and_reuses_cache_over_tcp() {
    let service = Arc::new(Service::with_engine_config(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
    ));
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    let ack: HelloAck = client.handshake().unwrap();
    assert!(ack.capabilities.schedule, "server must advertise schedules");

    let req = ScheduleRequest::new("circ", (0..3).map(stripe_layer).collect());
    client.send_line(&req.to_json_line()).unwrap();

    // The three layer responses stream back in schedule order.
    let mut layers = Vec::new();
    for k in 0..3 {
        let resp = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
        assert_eq!(resp.id, ScheduleRequest::layer_id("circ", k));
        assert!(resp.ok, "layer {k} failed: {:?}", resp.error);
        assert_eq!(resp.depth, 1, "a stripe mask is one rank-1 rectangle");
        layers.push(resp);
    }
    // Layer 2 repeats layer 0 exactly; solved sequentially against one
    // shared cache, it must be answered without solving.
    assert!(
        layers[2].cache_hit,
        "layer 2 must hit layer 0's cache entry"
    );
    assert_eq!(layers[2].provenance, "cache");

    // The summary trails the batch and aggregates it.
    let summary_line = client.recv_line().unwrap().unwrap();
    assert!(
        ScheduleSummary::is_summary_line(&summary_line),
        "{summary_line}"
    );
    let summary = ScheduleSummary::parse_line(&summary_line).unwrap();
    assert_eq!(summary.id, "circ");
    assert_eq!((summary.layers, summary.solved), (3, 3));
    assert_eq!((summary.failed, summary.canceled), (0, 0));
    assert_eq!(summary.total_depth, 3);
    assert!(summary.cache_hits >= 1, "cross-layer reuse: {summary:?}");
    assert_eq!(summary.provenance.len(), 3);
    assert_eq!(summary.provenance[2], "cache");

    // Stats frame (requested after the summary, so nothing is racing the
    // writer): both schedule counters moved.
    client.send_line("{\"stats\": true}").unwrap();
    let stats = StatsFrame::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert!(stats.schedule_jobs >= 1, "{stats:?}");
    assert!(stats.schedule_layers >= 3, "{stats:?}");

    client.finish_jobs().unwrap();
    let mut last = None;
    while let Some(line) = client.recv_line().unwrap() {
        last = Some(line);
    }
    let session = SummaryFrame::parse_line(&last.expect("summary before EOF")).unwrap();
    assert_eq!(session.schedule_jobs, 1);
    assert_eq!(session.schedule_layers, 3);
    assert_eq!(session.solved, 3, "layers count into the session tallies");

    server.shutdown();
}

/// The satellite: canceling a schedule mid-flight keeps partial results.
/// The gated strategy holds layer 0 "running"; the cancel ack comes back
/// done immediately, the in-flight layer still completes (started work is
/// never interrupted), the remaining layers answer `canceled`, and the
/// trailing summary records the split. A duplicate schedule id submitted
/// while the first is in flight bounces with a protocol error.
#[test]
fn cancel_mid_schedule_keeps_partial_results() {
    let gate = Gate::new();
    let service = Arc::new(Service::new(
        gated_engine(&gate, 1),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            persist: None,
        },
    ));
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    client.handshake().unwrap();

    let req = ScheduleRequest::new("batch", (0..3).map(distinct_matrix).collect());
    client.send_line(&req.to_json_line()).unwrap();
    gate.wait_started(1); // layer 0 occupies the worker

    // Same id while in flight → protocol error, original undisturbed.
    client.send_line(&req.to_json_line()).unwrap();
    let dup = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!(dup.id, "batch");
    assert_eq!(dup.error_kind(), Some(ErrorKind::Protocol));

    // Cancel the schedule: the ack is immediate (the runner is still
    // blocked inside layer 0, so no layer response can precede it).
    client.send_line("{\"cancel\": \"batch\"}").unwrap();
    let ack = CancelAck::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert_eq!((ack.id.as_str(), ack.done), ("batch", true));

    gate.open();
    client.finish_jobs().unwrap();

    let mut responses = Vec::new();
    let mut sched_summary = None;
    let mut session = None;
    while let Some(line) = client.recv_line().unwrap() {
        if ScheduleSummary::is_summary_line(&line) {
            sched_summary = Some(ScheduleSummary::parse_line(&line).unwrap());
        } else if SummaryFrame::is_summary_line(&line) {
            session = Some(SummaryFrame::parse_line(&line).unwrap());
        } else {
            responses.push(JobResponse::parse_line(&line).unwrap());
        }
    }

    // Partial results: layer 0 completed, layers 1 and 2 canceled.
    assert_eq!(responses.len(), 3, "{responses:?}");
    assert_eq!(responses[0].id, "batch/L0");
    assert!(responses[0].ok, "{:?}", responses[0].error);
    for (k, resp) in responses.iter().enumerate().skip(1) {
        assert_eq!(resp.id, ScheduleRequest::layer_id("batch", k));
        assert_eq!(resp.error_kind(), Some(ErrorKind::Canceled));
    }

    let summary = sched_summary.expect("schedule summary still emitted");
    assert_eq!(
        (summary.solved, summary.canceled, summary.failed),
        (1, 2, 0)
    );
    assert_eq!(summary.provenance[1], "canceled");

    let session = session.expect("session summary before EOF");
    assert_eq!(session.schedule_jobs, 1, "the duplicate was never accepted");
    assert_eq!(session.schedule_layers, 3);
    assert_eq!(session.canceled, 2);

    server.shutdown();
}

/// Per-layer deadlines are measured from schedule *acceptance*: a layer
/// whose clock runs out while its predecessors solve fails with
/// `deadline` without occupying a worker, and the schedule carries on.
#[test]
fn layer_deadlines_run_from_schedule_acceptance() {
    let gate = Gate::new();
    let service = Arc::new(Service::new(
        gated_engine(&gate, 1),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            persist: None,
        },
    ));
    let mut server = serve_socket(service, &BindAddr::parse("127.0.0.1:0")).unwrap();

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    client.handshake().unwrap();

    let mut req = ScheduleRequest::new("dl", vec![distinct_matrix(1), distinct_matrix(2)]);
    req.deadline_ms = vec![None, Some(40)];
    client.send_line(&req.to_json_line()).unwrap();

    // Hold layer 0 on the worker until layer 1's 40ms budget is long gone.
    gate.wait_started(1);
    std::thread::sleep(Duration::from_millis(120));
    gate.open();
    client.finish_jobs().unwrap();

    let mut responses = Vec::new();
    let mut sched_summary = None;
    while let Some(line) = client.recv_line().unwrap() {
        if ScheduleSummary::is_summary_line(&line) {
            sched_summary = Some(ScheduleSummary::parse_line(&line).unwrap());
        } else if !SummaryFrame::is_summary_line(&line) {
            responses.push(JobResponse::parse_line(&line).unwrap());
        }
    }

    assert_eq!(responses.len(), 2, "{responses:?}");
    assert!(responses[0].ok, "{:?}", responses[0].error);
    assert_eq!(responses[1].id, "dl/L1");
    assert_eq!(responses[1].error_kind(), Some(ErrorKind::Deadline));

    let summary = sched_summary.expect("schedule summary still emitted");
    assert_eq!((summary.solved, summary.failed), (1, 1));
    assert_eq!(summary.provenance[1], "deadline");

    server.shutdown();
}
