//! Service-level persistence: restart warm-start via `--state-dir`
//! semantics, periodic flush, stats plumbing, and corrupt-snapshot
//! fallback — the in-process version of the CI kill/restart smoke.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use engine::{Engine, EngineConfig};
use proto::{JobRequest, StatsFrame};
use rect_addr_serve::{serve_connection, PersistConfig, Service, ServiceConfig};

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rect-addr-serve-persist-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_at(dir: &Path, snapshot_every: Option<u64>) -> Service {
    Service::new(
        Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        })),
        ServiceConfig {
            queue_depth: 64,
            workers: 1,
            persist: Some(PersistConfig {
                state_dir: dir.to_path_buf(),
                snapshot_every,
                lease: None,
            }),
        },
    )
}

fn hard_job(id: &str) -> JobRequest {
    // Seed 2's rank-gap instance is known to need a real SAT descent.
    JobRequest::new(id, ebmf::gen::gap_benchmark(10, 10, 3, 2).matrix)
}

#[test]
fn restarted_service_warm_starts_from_the_state_dir() {
    let dir = state_dir("restart");

    // First boot: cold dir, one SAT-hard job, drain.
    let first = service_at(&dir, None);
    assert_eq!(first.stats().persisted_sessions, 0, "day-zero cold");
    let resp = first.submit(hard_job("a")).unwrap().wait();
    assert!(resp.ok);
    let first_conflicts = resp.conflicts;
    assert!(first_conflicts > 0, "hard job must spend conflicts");
    first.shutdown(); // writes the drain snapshot

    // "Restart": a brand-new service + engine over the same directory.
    let second = service_at(&dir, None);
    let stats = second.stats();
    assert!(
        stats.persisted_sessions >= 1,
        "restored sessions must be reported: {stats:?}"
    );
    let resp = second.submit(hard_job("b")).unwrap().wait();
    assert!(resp.ok);
    assert!(
        resp.conflicts < first_conflicts,
        "restarted solve must resume the descent: {} vs {first_conflicts}",
        resp.conflicts
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_flush_writes_without_a_drain() {
    let dir = state_dir("periodic");
    let service = service_at(&dir, Some(1));
    let resp = service.submit(hard_job("p")).unwrap().wait();
    assert!(resp.ok);
    // Snapshot-every-1: the flush happened on job completion, before any
    // shutdown. Poll briefly — the flush runs on the worker thread.
    let path = dir.join("engine.snapshot");
    let mut found = false;
    for _ in 0..100 {
        if path.exists() {
            found = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(found, "periodic flush must write the snapshot");
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_frame_reports_persisted_sessions_over_the_wire() {
    let dir = state_dir("wire");
    let first = service_at(&dir, None);
    assert!(first.submit(hard_job("w")).unwrap().wait().ok);
    first.shutdown();

    let second = service_at(&dir, None);
    let input = "{\"hello\": 2}\n{\"stats\": true}\n";
    let mut out = Vec::new();
    serve_connection(&second, input.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let stats_line = text
        .lines()
        .find(|l| l.starts_with("{\"stats\": true"))
        .expect("stats frame in output");
    let frame = StatsFrame::parse_line(stats_line).unwrap();
    assert!(
        frame.persisted_sessions >= 1,
        "wire stats must carry the restored count: {stats_line}"
    );
    // A clean load (valid snapshot) is not a load failure.
    assert_eq!(frame.snapshot_load_failures, 0, "{stats_line}");
    // The latency section reports the process-wide histograms; at least
    // the end-to-end job histogram has recorded by now (job "w" above),
    // and its percentiles are ordered.
    let job = frame
        .latency
        .get("job_us")
        .unwrap_or_else(|| panic!("job_us latency in stats: {stats_line}"));
    assert!(job.count >= 1);
    assert!(job.p50 <= job.p99 && job.p99 <= job.max, "{job:?}");
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_cold_starts_without_failing_construction() {
    let dir = state_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("engine.snapshot"),
        b"rect-addr-snapshot 1\ngarbage",
    )
    .unwrap();
    let service = service_at(&dir, None);
    assert_eq!(service.stats().persisted_sessions, 0);
    // The rejected load is counted — a corrupt snapshot is data, not
    // just a stderr line (a *missing* one would not count).
    assert_eq!(service.stats().snapshot_load_failures, 1);
    // Still fully functional.
    let resp = service
        .submit(JobRequest::new("c", "10\n01".parse().unwrap()))
        .unwrap()
        .wait();
    assert!(resp.ok);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
