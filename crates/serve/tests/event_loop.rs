//! Edge cases of the event-driven socket front-end
//! ([`serve_socket_event`]) and of the multi-process writer lease:
//! frames arriving a byte at a time, slow readers hitting the outbound
//! cap, mid-frame disconnects, and lease takeover with snapshot
//! generation adoption.

mod common;

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use engine::persist::{save_snapshot_gen, DEFAULT_MAX_CORE_CLAUSES};
use engine::{Engine, EngineConfig};
use proto::{JobResponse, StatsFrame, SummaryFrame};
use rect_addr_serve::{
    connect, serve_socket_event, serve_socket_event_with, BindAddr, EventLoopConfig, LineClient,
    PersistConfig, Service, ServiceConfig,
};

use common::{distinct_job, distinct_matrix};

fn event_service(workers: usize) -> Arc<Service> {
    Arc::new(Service::with_engine_config(
        EngineConfig::default(),
        ServiceConfig {
            workers,
            queue_depth: 64,
            persist: None,
        },
    ))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A v1 job written one byte at a time still reassembles into one frame,
/// and the final unterminated line is served at EOF.
#[test]
fn byte_at_a_time_v1_job_solves() {
    let service = event_service(1);
    let mut server =
        serve_socket_event(Arc::clone(&service), &BindAddr::parse("tcp:127.0.0.1:0")).unwrap();

    let mut stream = connect(server.local_addr()).unwrap();
    // Two jobs: the first newline-terminated, the second left
    // unterminated so EOF has to finish the line.
    let lines = format!(
        "{}\n{}",
        distinct_job("drip-0", 0).to_json_line(),
        distinct_job("drip-1", 0).to_json_line()
    );
    for byte in lines.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    stream.shutdown_write().unwrap();

    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    let mut lines = body.lines();
    for id in ["drip-0", "drip-1"] {
        let response = JobResponse::parse_line(lines.next().unwrap()).unwrap();
        assert_eq!(response.id, id);
        assert!(response.error.is_none(), "job failed: {response:?}");
    }
    let summary = SummaryFrame::parse_line(lines.next().unwrap()).unwrap();
    assert_eq!(summary.solved, 2);
    assert_eq!(summary.failed, 0);

    server.shutdown();
    server.join().unwrap();
}

/// Idle connections are counted in `open_connections` and reported in
/// the v2 stats frame; exercised on the portable `poll` backend.
#[test]
fn idle_connections_counted_on_poll_backend() {
    let service = event_service(1);
    let mut server = serve_socket_event_with(
        Arc::clone(&service),
        &BindAddr::parse("tcp:127.0.0.1:0"),
        EventLoopConfig {
            force_poll: true,
            ..EventLoopConfig::default()
        },
    )
    .unwrap();

    let idle: Vec<_> = (0..8)
        .map(|_| connect(server.local_addr()).unwrap())
        .collect();
    assert!(
        wait_until(Duration::from_secs(5), || service.open_connections() >= 8),
        "idle connections never registered: {}",
        service.open_connections()
    );

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    client.handshake().unwrap();
    client.send_job(&distinct_job("poll-0", 0)).unwrap();
    let response = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert!(response.error.is_none());
    client.send_line("{\"stats\": true}").unwrap();
    let stats = StatsFrame::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert!(
        stats.open_connections >= 9,
        "stats frame missed idle connections: {}",
        stats.open_connections
    );

    drop(idle);
    assert!(
        wait_until(Duration::from_secs(5), || service.open_connections() <= 1),
        "idle disconnects never reaped: {}",
        service.open_connections()
    );

    client.finish_jobs().unwrap();
    server.shutdown();
    server.join().unwrap();
}

/// A reader that never drains its socket is disconnected once its
/// outbound queue exceeds the cap — the loop must not buffer without
/// bound — and the server keeps serving other clients.
#[test]
fn slow_reader_is_disconnected_not_buffered() {
    let service = event_service(1);
    let mut server = serve_socket_event_with(
        Arc::clone(&service),
        &BindAddr::parse("tcp:127.0.0.1:0"),
        EventLoopConfig {
            // Below one serialized solve response (~260 bytes), so the
            // very first completed job tips the connection over the cap
            // without having to fill kernel socket buffers first.
            outbound_cap: 200,
            ..EventLoopConfig::default()
        },
    )
    .unwrap();

    let mut slow = connect(server.local_addr()).unwrap();
    // The 4x4 identity's partition has four rectangles, so its response
    // line (~260 bytes) exceeds the cap on its own; the near-empty
    // `distinct_matrix` answers would fit under it.
    let diagonal =
        proto::JobRequest::new("slow-0", bitmatrix::BitMatrix::from_fn(4, 4, |r, c| r == c));
    slow.write_all(format!("{}\n", diagonal.to_json_line()).as_bytes())
        .unwrap();
    // Never read. The response overflows the 16-byte cap and the server
    // abandons the connection: our next read observes the teardown
    // instead of blocking forever on a byte that never comes.
    let mut sink = [0u8; 256];
    match slow.read(&mut sink) {
        Ok(0) => {}
        Ok(n) => {
            // A prefix may have been flushed before the cap tripped;
            // the connection must still be closed right behind it.
            assert!(n <= sink.len());
            loop {
                match slow.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }
        Err(_) => {} // reset is as good as EOF here
    }

    assert!(
        wait_until(Duration::from_secs(5), || service.open_connections() == 0),
        "abandoned connection still counted"
    );

    // The loop itself is unharmed: a well-behaved client whose response
    // lines fit under the cap (a short v1 parse error, then the summary
    // once the error has drained) completes a full conversation.
    let mut client = connect(server.local_addr()).unwrap();
    client.write_all(b"not json\n").unwrap();
    client.flush().unwrap();
    let mut error_line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert_eq!(client.read(&mut byte).unwrap(), 1, "server hung up early");
        if byte[0] == b'\n' {
            break;
        }
        error_line.push(byte[0]);
    }
    let error = JobResponse::parse_line(std::str::from_utf8(&error_line).unwrap()).unwrap();
    assert!(error.error.is_some(), "garbage line answered ok");
    client.shutdown_write().unwrap();
    let mut rest = String::new();
    client.read_to_string(&mut rest).unwrap();
    let summary = SummaryFrame::parse_line(rest.lines().next().unwrap()).unwrap();
    assert_eq!(summary.failed, 1);

    server.shutdown();
    server.join().unwrap();
}

/// A client that dies mid-frame (partial line, no newline, then a hard
/// drop) must not wedge the loop or leak the connection slot.
#[test]
fn mid_frame_disconnect_keeps_server_healthy() {
    let service = event_service(1);
    let mut server =
        serve_socket_event(Arc::clone(&service), &BindAddr::parse("tcp:127.0.0.1:0")).unwrap();

    {
        let mut dying = connect(server.local_addr()).unwrap();
        dying
            .write_all(b"{\"id\": \"torn\", \"matrix\": [\"10\"")
            .unwrap();
        dying.flush().unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || service.open_connections() == 1),
            "connection never registered"
        );
        // Dropped here with the frame still open.
    }

    assert!(
        wait_until(Duration::from_secs(5), || service.open_connections() == 0),
        "torn connection never reaped"
    );

    let mut client = LineClient::connect(server.local_addr()).unwrap();
    client.handshake().unwrap();
    client.send_job(&distinct_job("after-torn", 3)).unwrap();
    let response = JobResponse::parse_line(&client.recv_line().unwrap().unwrap()).unwrap();
    assert!(response.error.is_none());
    client.finish_jobs().unwrap();

    server.shutdown();
    server.join().unwrap();
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

/// Writes a lease held by a foreign (dead) process expiring `ttl_ms`
/// from now, as if a writer was killed mid-heartbeat.
fn plant_foreign_lease(state_dir: &std::path::Path, ttl_ms: u64) {
    std::fs::create_dir_all(state_dir).unwrap();
    std::fs::write(
        engine::lease::lease_path(state_dir),
        format!("rect-addr-lease deadbeef {} 1\n", now_unix_ms() + ttl_ms),
    )
    .unwrap();
}

/// A reader sharing the state dir adopts newer snapshot generations
/// while the writer lives, then takes the lease over once the holder
/// dies (stops refreshing), and its own flushes stay monotonic past
/// everything on disk.
#[test]
fn lease_takeover_adopts_generation_and_promotes_reader() {
    let dir = std::env::temp_dir().join(format!("rect-addr-lease-takeover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // "Process A" flushed generation 3 and then got SIGKILLed holding a
    // lease with ~600ms left on the clock.
    let donor = Engine::new(EngineConfig::default());
    donor.solve(&distinct_matrix(0));
    save_snapshot_gen(&dir, &donor, DEFAULT_MAX_CORE_CLAUSES, 3).unwrap();
    plant_foreign_lease(&dir, 600);

    // "Process B" starts while A's lease is still live: it must come up
    // as a reader on A's snapshot.
    let service = Service::with_engine_config(
        EngineConfig::default(),
        ServiceConfig {
            workers: 1,
            queue_depth: 8,
            persist: Some(PersistConfig {
                snapshot_every: None,
                ..PersistConfig::shared(&dir, Duration::from_millis(150))
            }),
        },
    );
    assert!(!service.is_snapshot_writer(), "reader grabbed a live lease");
    assert_eq!(service.snapshot_generation(), 3);

    // A's final flush lands generation 4; B's coordinator adopts it.
    save_snapshot_gen(&dir, &donor, DEFAULT_MAX_CORE_CLAUSES, 4).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || service.snapshot_generation()
            == 4),
        "reader never adopted generation 4 (at {})",
        service.snapshot_generation()
    );

    // A never refreshes again; once the lease expires B must take over.
    assert!(
        wait_until(Duration::from_secs(5), || service.is_snapshot_writer()),
        "reader never took over the expired lease"
    );
    let held = engine::lease::peek(&dir).expect("lease file after takeover");
    assert_ne!(held.token, "deadbeef");
    assert_eq!(held.pid, std::process::id());

    // The new writer's flush advances past everything on disk.
    service.snapshot_now().expect("writer flush");
    assert!(service.snapshot_generation() >= 5);
    assert_eq!(
        engine::persist::snapshot_generation(&dir),
        Some(service.snapshot_generation())
    );

    service.shutdown();
    // Releasing on shutdown leaves the directory lease-free for the
    // next contender.
    assert!(engine::lease::peek(&dir).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
