//! Shared test harness: a gate strategy that blocks every solve until the
//! test releases it — the deterministic way to hold jobs "in flight" or
//! "queued" while asserting queue behaviour (cancel, busy, priority,
//! drain ordering).
#![allow(dead_code)] // each test binary uses a different subset

use std::sync::{Arc, Condvar, Mutex};

use engine::protocol::JobRequest;
use engine::{
    CancelToken, Engine, EngineConfig, Provenance, SolveJob, Strategy, StrategyBudget,
    StrategyOutcome,
};

/// Blocks every `run` until [`Gate::open`]; counts started runs.
#[derive(Debug, Default)]
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    open: bool,
    started: usize,
}

impl Gate {
    /// A closed gate.
    pub fn new() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Releases every waiting (and future) run.
    pub fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    /// Blocks until `n` runs have started (i.e. are holding the gate).
    pub fn wait_started(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.started < n {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn pass(&self) {
        let mut state = self.state.lock().unwrap();
        state.started += 1;
        self.cv.notify_all();
        while !state.open {
            state = self.cv.wait(state).unwrap();
        }
    }
}

/// The strategy wrapper around a [`Gate`].
#[derive(Debug)]
pub struct GateStrategy(pub Arc<Gate>);

impl Strategy for GateStrategy {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn provenance(&self) -> Provenance {
        Provenance::Trivial
    }

    fn estimate(&self, _job: &SolveJob<'_>) -> f64 {
        1.0
    }

    fn run(
        &self,
        job: &SolveJob<'_>,
        _budget: &StrategyBudget,
        _cancel: &CancelToken,
    ) -> StrategyOutcome {
        self.0.pass();
        StrategyOutcome {
            partition: ebmf::trivial_partition(job.matrix),
            proved_optimal: false,
            conflicts: 0,
            certificate: None,
        }
    }
}

/// An engine whose only strategy is the gate (deterministic blocking).
pub fn gated_engine(gate: &Arc<Gate>, workers: usize) -> Arc<Engine> {
    let config = EngineConfig {
        workers,
        adaptive: false,
        ..EngineConfig::default()
    };
    Arc::new(Engine::with_strategies(
        config,
        vec![Arc::new(GateStrategy(gate.clone()))],
    ))
}

/// The i-th of a family of distinct small matrices. Distinct weights ⇒
/// distinct permutation classes, so no two jobs coalesce into one
/// single-flight cache race.
pub fn distinct_matrix(i: usize) -> bitmatrix::BitMatrix {
    let n = 4;
    bitmatrix::BitMatrix::from_fn(n, n, |r, c| (r * n + c) < (i % (n * n)) + 1)
}

/// A job over [`distinct_matrix`].
pub fn distinct_job(id: &str, i: usize) -> JobRequest {
    JobRequest::new(id, distinct_matrix(i))
}
