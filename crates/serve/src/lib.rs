//! The `rect-addr` serving layer: a [`Service`] facade over the
//! portfolio engine plus the transports that speak the versioned wire
//! protocol (`rect-addr-proto`) over it.
//!
//! The engine solves one job at a time; production serving needs a
//! programmable surface between the protocol and the solver. This crate
//! provides the three layers the old monolithic batch loop fused
//! together:
//!
//! * [`Service`] — submission façade: a **bounded, priority-ordered
//!   queue** with a worker pool over one shared
//!   [`Engine`](engine::Engine). [`Service::submit`] hands back a
//!   [`JobHandle`]; [`Service::cancel`] removes still-queued jobs; a full
//!   queue signals backpressure ([`SubmitError::Busy`] → `busy`
//!   responses); [`Service::stats`] exposes cache/queue observability
//!   including the hot heuristic-canonization keys.
//! * [`serve_connection`] — one protocol connection over any
//!   `BufRead`/`Write` pair: v1 JSON lines by default, protocol v2
//!   (handshake, cancel, priority/deadline, stats, busy) after a `hello`
//!   first line. Drains in-flight jobs and emits the summary trailer on
//!   end-of-input.
//! * [`serve_socket`] — a Unix-domain/TCP listener fanning many
//!   concurrent client connections into one shared service, so the
//!   canonical cache, warm SAP sessions and adaptive scheduler are shared
//!   across clients; [`LineClient`]/[`pump`] are the matching client
//!   side.
//!
//! # Examples
//!
//! ```
//! use rect_addr_serve::{serve_connection, Service, ServiceConfig};
//! use engine::EngineConfig;
//!
//! let service = Service::with_engine_config(EngineConfig::default(), ServiceConfig::default());
//! let jobs = "{\"id\": \"l0\", \"matrix\": [\"10\", \"01\"]}\n\
//!             {\"id\": \"l1\", \"matrix\": [\"01\", \"10\"]}\n";
//! let mut out = Vec::new();
//! let summary = serve_connection(&service, jobs.as_bytes(), &mut out)?;
//! assert_eq!(summary.solved, 2);
//! // l1 is l0 with rows swapped: answered from the canonical-form cache.
//! assert_eq!(service.engine().cache_stats().hits, 1);
//! # Ok::<(), std::io::Error>(())
//! ```

mod client;
mod connection;
mod event;
mod schedule;
mod service;
mod socket;
pub mod sys;

pub use client::{pump, LineClient};
pub use connection::{serve_connection, stats_frame, ConnectionSummary};
pub use event::{serve_socket_event, serve_socket_event_with, EventLoopConfig};
pub use schedule::MAX_ACTIVE_SCHEDULES;
pub use service::{
    GroupId, JobHandle, OutEvent, PersistConfig, ResponseSink, Service, ServiceConfig,
    ServiceStats, SubmitError, Ticket, DEFAULT_QUEUE_DEPTH, DEFAULT_SNAPSHOT_EVERY,
};
pub use socket::{connect, serve_socket, BindAddr, SocketServer, SocketStream, WRITE_TIMEOUT};
