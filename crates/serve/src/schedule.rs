//! Server-side execution of multi-layer `schedule` frames.
//!
//! A schedule's layers are solved **sequentially** against the shared
//! [`Service`] — layer `k+1` is submitted only after layer `k`'s answer
//! arrived, so consecutive layers reuse the warm `SapSession` chain and
//! the canonical cache the earlier layers populated (the whole point of
//! submitting a circuit as one unit instead of racing its layers against
//! each other). Each layer's ordinary response streams to the peer as it
//! completes; the aggregated [`ScheduleSummary`] trails the batch.
//!
//! Each schedule runs on its own thread inside the connection's scope and
//! owns a private cancellation group, so a `cancel` frame naming the
//! schedule abandons *its* still-queued layer without touching the
//! connection's other jobs: the already-solved layers were delivered, the
//! in-flight layer finishes (started work is never interrupted), and the
//! remaining layers answer [`ErrorKind::Canceled`] — partial results by
//! construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use proto::{ErrorKind, JobError, JobResponse, ScheduleRequest, ScheduleSummary};

use crate::service::{GroupId, OutEvent, ResponseSink, Service};

/// Bound on schedules a single connection may have in flight; one past it
/// answers `busy` (same backpressure contract as a full queue).
pub const MAX_ACTIVE_SCHEDULES: usize = 64;

/// Cancellation handle of one in-flight schedule, registered under its
/// wire id for `cancel` frames and connection teardown.
pub struct ScheduleHandle {
    /// Set by a cancel frame (or teardown); the runner stops submitting.
    pub canceled: Arc<AtomicBool>,
    /// The schedule's private cancellation group: canceling it abandons
    /// the still-queued layer without touching sibling jobs.
    pub group: GroupId,
}

/// Per-connection schedule state shared between the reader (accepting and
/// canceling schedules) and the runner threads (completing them).
#[derive(Default)]
pub struct ScheduleShared {
    /// In-flight schedules by wire id.
    pub registry: Mutex<HashMap<String, ScheduleHandle>>,
    /// Schedules accepted on this connection (summary trailer tally).
    pub jobs: AtomicU64,
    /// Layers answered on this connection's behalf (summary tally).
    pub layers: AtomicU64,
}

impl ScheduleShared {
    /// Flags every in-flight schedule canceled and abandons their queued
    /// layers — connection teardown (peer hung up mid-stream).
    pub fn cancel_all(&self, service: &Service) {
        let registry = self.registry.lock().expect("schedule registry poisoned");
        for handle in registry.values() {
            handle.canceled.store(true, Ordering::Relaxed);
            service.cancel_group(handle.group);
        }
    }

    /// Routes a `cancel` frame naming `id` to its schedule. Returns
    /// `false` when no schedule by that id is in flight.
    pub fn cancel(&self, service: &Service, id: &str) -> bool {
        let registry = self.registry.lock().expect("schedule registry poisoned");
        match registry.get(id) {
            Some(handle) => {
                handle.canceled.store(true, Ordering::Relaxed);
                service.cancel_group(handle.group);
                true
            }
            None => false,
        }
    }
}

/// Runs one accepted schedule to completion: solves the layers in order,
/// forwards each layer's response to the connection writer, and trails
/// the batch with the aggregated summary frame. Deregisters the schedule
/// on the way out.
pub fn run_schedule(
    service: &Service,
    req: ScheduleRequest,
    out: Arc<dyn ResponseSink>,
    canceled: Arc<AtomicBool>,
    group: GroupId,
    shared: &ScheduleShared,
) {
    let accepted = Instant::now();
    let mut summary = ScheduleSummary {
        id: req.id.clone(),
        layers: req.layers.len() as u64,
        solved: 0,
        failed: 0,
        canceled: 0,
        total_depth: 0,
        proved_optimal: 0,
        cache_hits: 0,
        certified: 0,
        conflicts: 0,
        millis: 0.0,
        provenance: Vec::with_capacity(req.layers.len()),
    };
    for mut job in req.to_jobs() {
        let response = if canceled.load(Ordering::Relaxed) {
            JobResponse::failure(
                job.id.clone(),
                JobError::new(ErrorKind::Canceled, "schedule canceled"),
            )
        } else if let Some(expired) = expire(&mut job.deadline_ms, accepted) {
            // Per-layer deadlines run from schedule *acceptance*: a layer
            // whose clock ran out while its predecessors solved fails
            // without ever occupying a worker.
            JobResponse::failure(job.id.clone(), expired)
        } else {
            solve_layer(service, job, group)
        };
        match response.error_kind() {
            None => {
                summary.solved += 1;
                summary.total_depth += response.depth as u64;
                summary.proved_optimal += u64::from(response.proved_optimal);
                summary.cache_hits += u64::from(response.cache_hit);
                summary.certified += u64::from(response.certificate.is_some());
                summary.conflicts += response.conflicts;
                summary.provenance.push(response.provenance.clone());
            }
            Some(ErrorKind::Canceled) => {
                summary.canceled += 1;
                summary.provenance.push(ErrorKind::Canceled.to_string());
            }
            Some(kind) => {
                summary.failed += 1;
                summary.provenance.push(kind.to_string());
            }
        }
        obs::registry().counter(obs::names::SCHEDULE_LAYERS).inc();
        shared.layers.fetch_add(1, Ordering::Relaxed);
        // A closed writer (connection torn down) just discards the rest.
        if !out.deliver(OutEvent::Response(response)) {
            break;
        }
    }
    summary.millis = accepted.elapsed().as_secs_f64() * 1000.0;
    let _ = out.deliver(OutEvent::Control(summary.to_json_line()));
    shared
        .registry
        .lock()
        .expect("schedule registry poisoned")
        .remove(&req.id);
}

/// Clamps a layer deadline to the time remaining since `accepted`;
/// returns the deadline failure when it already expired.
fn expire(deadline_ms: &mut Option<u64>, accepted: Instant) -> Option<JobError> {
    let deadline = (*deadline_ms)?;
    let elapsed = accepted.elapsed().as_millis().min(u64::MAX as u128) as u64;
    match deadline.checked_sub(elapsed).filter(|r| *r > 0) {
        Some(remaining) => {
            *deadline_ms = Some(remaining);
            None
        }
        None => {
            obs::registry().counter(obs::names::ERR_DEADLINE).inc();
            Some(JobError::new(
                ErrorKind::Deadline,
                format!("layer deadline of {deadline}ms expired {elapsed}ms into the schedule"),
            ))
        }
    }
}

/// Submits one layer (blocking on queue space — sequential layers are
/// natural backpressure) and waits for its response.
fn solve_layer(service: &Service, job: proto::JobRequest, group: GroupId) -> JobResponse {
    let id = job.id.clone();
    let (tx, rx) = mpsc::channel();
    match service.submit_grouped(job, tx, group, true) {
        Ok(_ticket) => match rx.recv() {
            Ok(OutEvent::Response(resp)) => resp,
            Ok(OutEvent::Control(_)) | Err(_) => JobResponse::failure(
                id,
                JobError::new(ErrorKind::Internal, "service dropped the layer"),
            ),
        },
        Err(e) => JobResponse::failure(id, e.to_job_error(service.queue_depth())),
    }
}
