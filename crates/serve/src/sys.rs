//! Zero-dependency readiness polling: thin `extern "C"` bindings to the
//! libc the standard library already links (`epoll` on Linux, portable
//! `poll(2)` everywhere), wrapped in a safe [`Poller`].
//!
//! The workspace deliberately carries no external crates, so the
//! event-driven acceptor cannot lean on `libc`/`mio`; declaring the half
//! dozen syscall wrappers it needs resolves them against the C library
//! `std` links anyway. Both backends expose the same level-triggered
//! interface: register a file descriptor under a caller-chosen token,
//! wait, and get back `(token, readable, writable)` triples.
//!
//! The `poll(2)` backend is not dead fallback code — it is
//! runtime-selectable (see [`Poller::new_with`]) and exercised by the
//! event-loop tests on every platform, so a regression in either backend
//! fails CI on Linux rather than only on the platform that uses it.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Reading would not block (includes EOF and errors: a read will
    /// return 0 or the error rather than blocking).
    pub readable: bool,
    /// Writing would not block.
    pub writable: bool,
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

// ---------------------------------------------------------------------
// Raw bindings. Linux-only symbols live behind cfg(target_os = "linux");
// poll(2) and the rlimit pair are POSIX.
// ---------------------------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn close(fd: i32) -> i32;
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;

    // Matches the kernel ABI: packed on x86-64 (the one architecture
    // whose kernel struct is unaligned), natural alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Raises the process's soft open-file limit to its hard limit, returning
/// the resulting soft limit. Tens of thousands of connections need tens
/// of thousands of descriptors; the default soft limit (often 1024) is
/// the first wall an event-driven server hits.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: lim is a valid, writable Rlimit the call fills in.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(last_os_error());
    }
    if lim.rlim_cur < lim.rlim_max {
        let raised = Rlimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: raised is a valid Rlimit for the call's whole duration.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
            // Keeping the old soft limit is not fatal; report what stands.
            return Ok(lim.rlim_cur);
        }
        return Ok(raised.rlim_cur);
    }
    Ok(lim.rlim_cur)
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        /// Registered interests, kept for [`Poller::wait`]'s capacity and
        /// for re-registration bookkeeping parity with the poll backend.
        interests: HashMap<u64, (RawFd, Interest)>,
    },
    Poll {
        /// token → (fd, interest); materialized into a `pollfd` array per
        /// wait. O(n) per wait against epoll's O(ready) — which is exactly
        /// why epoll is the Linux default and this the portable fallback.
        interests: HashMap<u64, (RawFd, Interest)>,
    },
}

/// A level-triggered readiness poller over one of the two backends.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// The platform-preferred backend: epoll on Linux, poll elsewhere.
    pub fn new() -> io::Result<Poller> {
        Poller::new_with(false)
    }

    /// `force_poll` selects the portable `poll(2)` backend even where
    /// epoll is available — how the tests keep the fallback honest on
    /// Linux CI.
    pub fn new_with(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if !force_poll {
            // SAFETY: plain syscall; a negative return is the error case.
            let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            return Ok(Poller {
                backend: Backend::Epoll {
                    epfd,
                    interests: HashMap::new(),
                },
            });
        }
        let _ = force_poll;
        Ok(Poller {
            backend: Backend::Poll {
                interests: HashMap::new(),
            },
        })
    }

    /// Whether this poller runs the portable `poll(2)` backend.
    pub fn is_poll_backend(&self) -> bool {
        matches!(self.backend, Backend::Poll { .. })
    }

    /// Registers `fd` under `token`. Tokens must be unique per poller;
    /// re-registering a live token is a logic error the epoll backend
    /// reports as `EEXIST`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, interests } => {
                let mut ev = epoll_sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token,
                };
                // SAFETY: ev is valid for the call; epfd/fd are live fds.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, fd, &mut ev) }
                    != 0
                {
                    return Err(last_os_error());
                }
                interests.insert(token, (fd, interest));
                Ok(())
            }
            Backend::Poll { interests } => {
                interests.insert(token, (fd, interest));
                Ok(())
            }
        }
    }

    /// Updates the interest of a registered token (e.g. adding WRITE when
    /// a connection's outbound queue becomes non-empty).
    pub fn modify(&mut self, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, interests } => {
                let Some((fd, slot)) = interests.get_mut(&token).map(|(fd, i)| (*fd, i)) else {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("token {token} is not registered"),
                    ));
                };
                let mut ev = epoll_sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token,
                };
                // SAFETY: as in register; MOD on a registered fd.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_MOD, fd, &mut ev) }
                    != 0
                {
                    return Err(last_os_error());
                }
                *slot = interest;
                Ok(())
            }
            Backend::Poll { interests } => match interests.get_mut(&token) {
                Some((_, slot)) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("token {token} is not registered"),
                )),
            },
        }
    }

    /// Removes a token's registration. Call *before* closing the fd —
    /// epoll deregisters by descriptor.
    pub fn deregister(&mut self, token: u64) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, interests } => {
                let Some((fd, _)) = interests.remove(&token) else {
                    return Ok(()); // idempotent
                };
                // SAFETY: DEL ignores the event argument on modern kernels
                // but a valid pointer keeps pre-2.6.9 semantics happy.
                let mut ev = epoll_sys::EpollEvent { events: 0, data: 0 };
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, fd, &mut ev) }
                    != 0
                {
                    return Err(last_os_error());
                }
                Ok(())
            }
            Backend::Poll { interests } => {
                interests.remove(&token);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready (or the
    /// timeout lapses — `None` waits forever), appending readiness
    /// reports to `events` (cleared first). Interrupted waits (`EINTR`)
    /// report zero events rather than erroring.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, interests } => {
                let cap = interests.len().clamp(1, 1024) as i32;
                let mut buf = vec![epoll_sys::EpollEvent { events: 0, data: 0 }; cap as usize];
                // SAFETY: buf holds `cap` writable events for the call.
                let n = unsafe { epoll_sys::epoll_wait(*epfd, buf.as_mut_ptr(), cap, timeout_ms) };
                if n < 0 {
                    let e = last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let (bits, data) = (ev.events, ev.data);
                    let err = bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0;
                    events.push(Event {
                        token: data,
                        // Errors/hangups surface as readable: the next read
                        // returns 0 or the error instead of blocking.
                        readable: bits & epoll_sys::EPOLLIN != 0 || err,
                        writable: bits & epoll_sys::EPOLLOUT != 0 || err,
                    });
                }
                Ok(())
            }
            Backend::Poll { interests } => {
                let mut order: Vec<u64> = interests.keys().copied().collect();
                order.sort_unstable(); // deterministic service order
                let mut fds: Vec<PollFd> = order
                    .iter()
                    .map(|token| {
                        let (fd, interest) = interests[token];
                        PollFd {
                            fd,
                            events: (if interest.readable { POLLIN } else { 0 })
                                | (if interest.writable { POLLOUT } else { 0 }),
                            revents: 0,
                        }
                    })
                    .collect();
                if fds.is_empty() {
                    // Nothing to watch: honor the timeout as a plain sleep
                    // so callers cannot spin.
                    if let Some(t) = timeout {
                        std::thread::sleep(t);
                    }
                    return Ok(());
                }
                // SAFETY: fds is a valid array of fds.len() entries.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let e = last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for (token, pfd) in order.iter().zip(&fds) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let err = pfd.revents & (POLLERR | POLLHUP) != 0;
                    events.push(Event {
                        token: *token,
                        readable: pfd.revents & POLLIN != 0 || err,
                        writable: pfd.revents & POLLOUT != 0 || err,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    (if interest.readable {
        epoll_sys::EPOLLIN
    } else {
        0
    }) | (if interest.writable {
        epoll_sys::EPOLLOUT
    } else {
        0
    })
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            // SAFETY: epfd was created by epoll_create1 and is only closed
            // here.
            unsafe {
                close(*epfd);
            }
        }
        // Silence the unused-import warning for `close` on non-Linux.
        let _ = close as unsafe extern "C" fn(i32) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd as _;
    use std::os::unix::net::UnixStream;

    fn backend_roundtrip(force_poll: bool) {
        let mut poller = Poller::new_with(force_poll).expect("poller");
        assert_eq!(
            poller.is_poll_backend(),
            force_poll || cfg!(not(target_os = "linux"))
        );
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(a.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing written yet: a short wait reports no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "idle socket must not report readiness");

        b.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: the byte is still there, so readiness repeats
        // until it is consumed.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 1);

        // Write interest on an empty kernel buffer reports writable.
        poller.modify(7, Interest::READ_WRITE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(7).unwrap();
        b.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd must stay silent");
    }

    #[test]
    fn default_backend_reports_readiness() {
        backend_roundtrip(false);
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        backend_roundtrip(true);
    }

    #[test]
    fn peer_hangup_reports_readable() {
        for force_poll in [false, true] {
            let mut poller = Poller::new_with(force_poll).unwrap();
            let (a, b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(b);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "hangup must wake the reader (backend force_poll={force_poll})"
            );
        }
    }

    #[test]
    fn nofile_limit_is_reported() {
        let soft = raise_nofile_limit().expect("rlimit");
        assert!(soft > 0);
    }
}
