//! The event-driven socket front-end: one readiness loop owning every
//! connection, a fixed thread count regardless of connection count.
//!
//! [`serve_socket`](crate::serve_socket) spends a thread per connection —
//! honest at tens of clients, hopeless at tens of thousands of mostly
//! idle ones. [`serve_socket_event`] keeps the same wire behavior (v1/v2
//! protocol, graceful drain, summary trailers, schedule frames) on a
//! different execution model:
//!
//! * a single **readiness loop** (epoll on Linux, `poll(2)` fallback —
//!   see [`crate::sys`]) owns the listener and every connection socket,
//!   all nonblocking;
//! * inbound bytes accumulate per connection into a bounded line buffer
//!   (the [`MAX_LINE_BYTES`] cap of the blocking transport, enforced
//!   incrementally); complete frames dispatch to the shared
//!   [`Service`]'s worker pool exactly like the blocking front-end;
//! * workers answer through a [`ResponseSink`] that pushes completions
//!   onto the loop's queue and wakes it via a socketpair — no
//!   per-connection writer thread;
//! * responses flow out through per-connection **outbound queues** with
//!   partial-write handling; a peer that stops reading accumulates bytes
//!   only up to [`EventLoopConfig::outbound_cap`] and is then
//!   disconnected (queued jobs canceled) instead of growing the heap.
//!
//! Idle connections cost one registered descriptor and a few hundred
//! bytes of state — the scaling bench holds thousands of them against a
//! worker pool sized to the CPU.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use proto::{
    CancelAck, ClientFrame, ErrorKind, HelloAck, JobError, JobRequest, JobResponse, SummaryFrame,
    WireVersion, MAX_LINE_BYTES, MAX_RESPONSE_LINE_BYTES, PROTOCOL_VERSION,
};

use crate::connection::{
    accept_schedule, engine_snapshot, load_version, parse_failure, remember, stats_frame,
    WireState, CANCEL_MAP_CAP,
};
use crate::schedule::{run_schedule, ScheduleShared};
use crate::service::{GroupId, OutEvent, ResponseSink, Service, Ticket};
use crate::socket::{bind_listener, BindAddr, Listener, SocketServer, SocketStream, WRITE_TIMEOUT};
use crate::sys::{Interest, Poller};

/// Tuning of the event-driven front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLoopConfig {
    /// Bound on one connection's outbound queue, in bytes. A reader
    /// slower than its responses accumulates up to this much and is then
    /// disconnected (its queued jobs canceled) — backpressure by eviction
    /// rather than by unbounded buffering. The default admits any single
    /// legal response line ([`MAX_RESPONSE_LINE_BYTES`]).
    pub outbound_cap: usize,
    /// Force the portable `poll(2)` backend even where epoll exists; the
    /// tests use this to exercise the fallback on Linux.
    pub force_poll: bool,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            outbound_cap: MAX_RESPONSE_LINE_BYTES,
            force_poll: false,
        }
    }
}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Whether a completion came from a direct job submission or a schedule
/// runner — the two decrement different drain counters (a connection's
/// trailer must trail both every job response *and* every schedule
/// summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Job,
    Sched,
}

struct Completion {
    conn: u64,
    kind: SinkKind,
    event: OutEvent,
}

/// The worker-facing side of the loop: a completion queue plus the write
/// end of the wake socketpair.
struct LoopShared {
    queue: Mutex<VecDeque<Completion>>,
    waker: UnixStream,
}

impl LoopShared {
    fn wake(&self) {
        // Nonblocking one-byte nudge; a full pipe means a wake is already
        // pending, which is all we need.
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// [`ResponseSink`] delivering into the loop's completion queue.
struct LoopSink {
    shared: Arc<LoopShared>,
    conn: u64,
    kind: SinkKind,
    /// Set when the connection is torn down: late completions still
    /// enqueue harmlessly (the loop drops unknown connection ids), but
    /// schedule runners use the `false` return to stop early.
    closed: Arc<AtomicBool>,
}

impl ResponseSink for LoopSink {
    fn deliver(&self, event: OutEvent) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        self.shared
            .queue
            .lock()
            .expect("completion queue poisoned")
            .push_back(Completion {
                conn: self.conn,
                kind: self.kind,
                event,
            });
        self.shared.wake();
        true
    }
}

/// Everything the loop knows about one connection.
struct Conn {
    stream: SocketStream,
    wire: WireState,
    /// Partial inbound line (bounded by [`MAX_LINE_BYTES`]).
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already known to be newline-free, so repeated
    /// scans of a slowly arriving long line stay linear overall.
    scanned: usize,
    /// Outbound bytes not yet accepted by the kernel.
    out: VecDeque<u8>,
    tickets: HashMap<String, Ticket>,
    ticket_order: VecDeque<(String, Ticket)>,
    group: GroupId,
    sched: Arc<ScheduleShared>,
    closed: Arc<AtomicBool>,
    job_sink: Arc<LoopSink>,
    sched_sink: Arc<LoopSink>,
    awaiting_handshake: bool,
    line_no: usize,
    /// Peer EOF seen, or input abandoned after a protocol/read error.
    read_closed: bool,
    /// Input abandoned (oversized line, bad UTF-8, read error): the error
    /// was answered once and no further frames dispatch.
    stop_reading: bool,
    /// Direct submissions dispatched but not yet answered.
    inflight: usize,
    /// Schedule runners whose summary has not yet arrived.
    active_schedules: usize,
    /// A v1 job parked on a full queue — v1 peers must see backpressure
    /// as a stall, never a `busy` frame, so the loop pauses this
    /// connection's reads and retries as responses free queue space.
    pending_v1: Option<JobRequest>,
    /// [`EventLoopConfig::outbound_cap`].
    outbound_cap: usize,
    solved: usize,
    failed_jobs: usize,
    canceled: usize,
    busy: usize,
    summary_sent: bool,
    /// Write error or outbound overflow: tear down without a trailer.
    failed: bool,
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.read_closed && !self.stop_reading && self.pending_v1.is_none(),
            writable: !self.out.is_empty(),
        }
    }
}

/// [`serve_socket_event_with`] with default tuning.
pub fn serve_socket_event(service: Arc<Service>, addr: &BindAddr) -> io::Result<SocketServer> {
    serve_socket_event_with(service, addr, EventLoopConfig::default())
}

/// Binds `addr` and serves it with the event-driven front-end (module
/// docs). Returns immediately; the readiness loop runs on one background
/// thread and reuses [`SocketServer`]'s shutdown/join contract — shutdown
/// stops accepting, drains every live connection (responses + trailer)
/// bounded by [`WRITE_TIMEOUT`], then returns.
pub fn serve_socket_event_with(
    service: Arc<Service>,
    addr: &BindAddr,
    config: EventLoopConfig,
) -> io::Result<SocketServer> {
    let (listener, local, unix_path) = bind_listener(addr)?;
    listener.set_nonblocking(true)?;
    let (waker_rx, waker_tx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;
    let shared = Arc::new(LoopShared {
        queue: Mutex::new(VecDeque::new()),
        waker: waker_tx,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = stop.clone();
        std::thread::spawn(move || run_loop(service, listener, waker_rx, shared, stop, config))
    };
    Ok(SocketServer::from_parts(local, stop, acceptor, unix_path))
}

#[allow(clippy::too_many_lines)]
fn run_loop(
    service: Arc<Service>,
    listener: Listener,
    waker_rx: UnixStream,
    shared: Arc<LoopShared>,
    stop: Arc<AtomicBool>,
    config: EventLoopConfig,
) -> Option<io::Error> {
    use std::os::unix::io::AsRawFd as _;
    let mut poller = match Poller::new_with(config.force_poll) {
        Ok(p) => p,
        Err(e) => return Some(e),
    };
    if let Err(e) = poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ) {
        return Some(e);
    }
    if let Err(e) = poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ) {
        return Some(e);
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();
    let fatal: Option<io::Error> = loop {
        if stop.load(Ordering::Relaxed) && !draining {
            // Shutdown: stop accepting, half-close every peer's read side
            // (idle peers cannot stall the drain), and give in-flight work
            // a bounded window to answer and flush.
            draining = true;
            drain_deadline = Instant::now() + WRITE_TIMEOUT;
            for conn in conns.values_mut() {
                let _ = conn.stream.shutdown_read();
                conn.read_closed = true;
            }
        }
        if draining && (conns.is_empty() || Instant::now() >= drain_deadline) {
            break None;
        }
        let timeout = if draining {
            Some(
                drain_deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(100)),
            )
        } else {
            None
        };
        if let Err(e) = poller.wait(&mut events, timeout) {
            break Some(e);
        }

        let mut touched: Vec<u64> = Vec::new();
        for event in events.drain(..) {
            match event.token {
                LISTENER_TOKEN => {
                    if stop.load(Ordering::Relaxed) {
                        // Accept and drop the shutdown wake-up connection
                        // (and any stragglers racing the shutdown).
                        while listener.accept().is_ok() {}
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok(stream) => {
                                if let Err(e) = stream.set_nonblocking(true) {
                                    eprintln!("rect-addr: accepted socket unusable: {e}");
                                    continue;
                                }
                                let token = next_token;
                                next_token += 1;
                                let conn =
                                    new_conn(stream, token, &service, &shared, config.outbound_cap);
                                let interest = conn.interest;
                                if poller
                                    .register(conn.stream.as_raw_fd(), token, interest)
                                    .is_err()
                                {
                                    service.connection_closed();
                                    continue;
                                }
                                service.connection_opened();
                                conns.insert(token, conn);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => {
                                // Transient accept failures (EMFILE under
                                // load) must not spin the loop hot: back
                                // off briefly and retry on next readiness.
                                eprintln!("rect-addr: accept failed: {e}");
                                std::thread::sleep(Duration::from_millis(10));
                                break;
                            }
                        }
                    }
                }
                WAKER_TOKEN => {
                    let mut buf = [0u8; 256];
                    while matches!((&waker_rx).read(&mut buf), Ok(n) if n > 0) {}
                }
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if event.readable {
                            conn_read(conn, &service);
                        }
                        if event.writable && !flush_out(conn) {
                            conn.failed = true;
                        }
                        touched.push(token);
                    }
                }
            }
        }

        // Deliver worker completions into their connections' outbound
        // queues and drain counters.
        let completions: Vec<Completion> = {
            let mut queue = shared.queue.lock().expect("completion queue poisoned");
            queue.drain(..).collect()
        };
        let had_completions = !completions.is_empty();
        for completion in completions {
            let Some(conn) = conns.get_mut(&completion.conn) else {
                continue; // connection torn down; answer discarded
            };
            match (&completion.kind, &completion.event) {
                (SinkKind::Job, OutEvent::Response(_)) => {
                    conn.inflight = conn.inflight.saturating_sub(1);
                }
                (SinkKind::Sched, OutEvent::Control(_)) => {
                    // A schedule's one Control event is its summary
                    // trailer: the runner is done.
                    conn.active_schedules = conn.active_schedules.saturating_sub(1);
                }
                _ => {}
            }
            queue_event(conn, completion.event);
            touched.push(completion.conn);
        }
        // Freed queue space: retry every parked v1 submission (space is
        // service-wide, so any completion may have unblocked any parked
        // job).
        if had_completions {
            for (&token, conn) in conns.iter_mut() {
                if conn.pending_v1.is_some() {
                    retry_pending_v1(conn, &service);
                    touched.push(token);
                }
            }
        }
        if draining {
            touched.extend(conns.keys().copied());
        }

        // Per-connection post-processing: trailer emission, opportunistic
        // flush, teardown, interest reconciliation.
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            // 0 = keep, 1 = abandon (write error/overflow), 2 = graceful
            // close (trailer flushed).
            let outcome = {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                if !conn.failed {
                    maybe_finish(conn, &service);
                    if !flush_out(conn) {
                        conn.failed = true;
                    }
                }
                if conn.failed {
                    1
                } else if conn.summary_sent && conn.out.is_empty() {
                    2
                } else {
                    let desired = conn.desired_interest();
                    if desired != conn.interest && poller.modify(token, desired).is_ok() {
                        conn.interest = desired;
                    }
                    0
                }
            };
            if outcome != 0 {
                // Fully drained (2): every response and the trailer
                // reached the kernel; closing signals EOF to the peer.
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(token);
                    teardown(conn, &service, outcome == 1);
                }
            }
        }
    };

    // Loop exit: force-close whatever is left (drain deadline expired or
    // fatal poller error), canceling abandoned work.
    for (_, conn) in conns.drain() {
        teardown(conn, &service, true);
    }
    fatal
}

fn new_conn(
    stream: SocketStream,
    token: u64,
    service: &Arc<Service>,
    shared: &Arc<LoopShared>,
    outbound_cap: usize,
) -> Conn {
    let closed = Arc::new(AtomicBool::new(false));
    let job_sink = Arc::new(LoopSink {
        shared: shared.clone(),
        conn: token,
        kind: SinkKind::Job,
        closed: closed.clone(),
    });
    let sched_sink = Arc::new(LoopSink {
        shared: shared.clone(),
        conn: token,
        kind: SinkKind::Sched,
        closed: closed.clone(),
    });
    let conn = Conn {
        stream,
        wire: WireState::new(),
        rbuf: Vec::new(),
        scanned: 0,
        out: VecDeque::new(),
        tickets: HashMap::new(),
        ticket_order: VecDeque::new(),
        group: service.new_group(),
        sched: Arc::new(ScheduleShared::default()),
        closed,
        job_sink,
        sched_sink,
        awaiting_handshake: true,
        line_no: 0,
        read_closed: false,
        stop_reading: false,
        inflight: 0,
        active_schedules: 0,
        pending_v1: None,
        outbound_cap,
        solved: 0,
        failed_jobs: 0,
        canceled: 0,
        busy: 0,
        summary_sent: false,
        failed: false,
        interest: Interest::READ,
    };
    debug_assert!(conn.desired_interest() == Interest::READ);
    conn
}

/// Releases a connection's resources. `abandoned` marks the write-error /
/// overflow / deadline paths, where still-queued work is canceled so the
/// shared workers move on; the graceful path has nothing left to cancel.
fn teardown(conn: Conn, service: &Arc<Service>, abandoned: bool) {
    conn.closed.store(true, Ordering::Relaxed);
    if abandoned {
        service.cancel_group(conn.group);
        conn.sched.cancel_all(service);
    }
    service.connection_closed();
    // conn.stream drops here, closing the descriptor (after deregister).
}

/// Emits the summary trailer once everything preceding it has been
/// answered: input ended, no direct job in flight, no schedule mid-run,
/// no parked v1 submission.
fn maybe_finish(conn: &mut Conn, service: &Arc<Service>) {
    if conn.summary_sent
        || !conn.read_closed
        || conn.inflight > 0
        || conn.active_schedules > 0
        || conn.pending_v1.is_some()
        || (!conn.rbuf.is_empty() && !conn.stop_reading)
    {
        return;
    }
    let frame = SummaryFrame {
        solved: conn.solved as u64,
        failed: conn.failed_jobs as u64,
        canceled: conn.canceled as u64,
        busy: conn.busy as u64,
        schedule_jobs: conn.sched.jobs.load(Ordering::Relaxed),
        schedule_layers: conn.sched.layers.load(Ordering::Relaxed),
        snapshot: engine_snapshot(service),
    };
    let line = frame.to_json_line(load_version(&conn.wire.version));
    queue_line(conn, line);
    conn.summary_sent = true;
}

/// Serializes one outbound event onto the connection's queue, applying
/// the same wire gating as the blocking writer (version, timing and
/// certificate opt-ins) and counting it into the trailer tallies.
fn queue_event(conn: &mut Conn, event: OutEvent) {
    let line = match event {
        OutEvent::Response(mut resp) => {
            match resp.error_kind() {
                None => conn.solved += 1,
                Some(ErrorKind::Canceled) => conn.canceled += 1,
                Some(ErrorKind::Busy) => conn.busy += 1,
                Some(_) => conn.failed_jobs += 1,
            }
            if !conn.wire.timing.load(Ordering::Relaxed) {
                resp.timing = None;
            }
            if !conn.wire.certificate.load(Ordering::Relaxed) {
                resp.certificate = None;
            }
            resp.to_json_line_v(load_version(&conn.wire.version))
        }
        OutEvent::Control(line) => line,
    };
    queue_line(conn, line);
}

fn queue_line(conn: &mut Conn, line: String) {
    if conn.failed {
        return; // dead stream: discard, like the blocking writer's drain
    }
    conn.out.extend(line.as_bytes());
    conn.out.push_back(b'\n');
    if conn.out.len() > conn.outbound_cap {
        // The peer is reading slower than it is being answered, past the
        // configured bound: disconnect instead of buffering without
        // limit. Backpressure for well-behaved clients is the submission
        // queue; this bound is for peers that stopped reading entirely.
        conn.failed = true;
    }
}

/// Writes queued bytes until the kernel stops accepting them. Returns
/// `false` on a dead peer.
fn flush_out(conn: &mut Conn) -> bool {
    while !conn.out.is_empty() {
        let (front, _) = conn.out.as_slices();
        match conn.stream.write(front) {
            Ok(0) => return false,
            Ok(n) => {
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Reads whatever the socket has, slicing complete lines out of the
/// connection's buffer and dispatching them.
fn conn_read(conn: &mut Conn, service: &Arc<Service>) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        if conn.read_closed || conn.stop_reading || conn.pending_v1.is_some() {
            break;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                drain_rbuf(conn, service);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Same shape as the blocking reader: answer the read error
                // once, then end the stream cleanly (drain + trailer).
                conn.line_no += 1;
                let id = format!("job-{}", conn.line_no);
                queue_event(
                    conn,
                    OutEvent::Response(JobResponse::failure(
                        id,
                        JobError::new(ErrorKind::Io, format!("input read error: {e}")),
                    )),
                );
                conn.stop_reading = true;
                conn.read_closed = true;
                break;
            }
        }
    }
    if conn.read_closed {
        // EOF with a final unterminated line: process it (the
        // `BufRead::lines` convention the blocking transport follows).
        drain_rbuf(conn, service);
    }
}

/// Slices complete lines out of `rbuf` and dispatches them, stopping when
/// input is exhausted, the line cap trips, or a v1 submission parks.
fn drain_rbuf(conn: &mut Conn, service: &Arc<Service>) {
    loop {
        if conn.stop_reading || conn.pending_v1.is_some() {
            return;
        }
        let nl = conn.rbuf[conn.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| conn.scanned + i);
        let line_bytes = match nl {
            Some(pos) => {
                if pos > MAX_LINE_BYTES {
                    return line_overflow(conn);
                }
                let mut line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                line.pop(); // the newline
                conn.scanned = 0;
                line
            }
            None => {
                conn.scanned = conn.rbuf.len();
                if conn.rbuf.len() > MAX_LINE_BYTES {
                    return line_overflow(conn);
                }
                if conn.read_closed && !conn.rbuf.is_empty() {
                    conn.scanned = 0;
                    std::mem::take(&mut conn.rbuf)
                } else {
                    return;
                }
            }
        };
        let mut line_bytes = line_bytes;
        if line_bytes.last() == Some(&b'\r') {
            line_bytes.pop();
        }
        conn.line_no += 1;
        let line = match String::from_utf8(line_bytes) {
            Ok(line) => line,
            Err(_) => {
                // Parity with the blocking reader, whose bounded read
                // surfaces bad UTF-8 as an IO error: answer once, close.
                let id = format!("job-{}", conn.line_no);
                queue_event(
                    conn,
                    OutEvent::Response(JobResponse::failure(
                        id,
                        JobError::new(
                            ErrorKind::Io,
                            "input read error: stream did not contain valid UTF-8",
                        ),
                    )),
                );
                conn.stop_reading = true;
                conn.read_closed = true;
                return;
            }
        };
        dispatch_line(conn, service, &line);
    }
}

fn line_overflow(conn: &mut Conn) {
    conn.line_no += 1;
    let id = format!("job-{}", conn.line_no);
    queue_event(
        conn,
        OutEvent::Response(JobResponse::failure(
            id,
            JobError::new(
                ErrorKind::Protocol,
                format!("line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
            ),
        )),
    );
    conn.stop_reading = true;
    conn.read_closed = true;
}

/// One complete wire line: the same dispatch as the blocking
/// `reader_loop`, submitting through the loop sinks instead of channels.
fn dispatch_line(conn: &mut Conn, service: &Arc<Service>, line: &str) {
    if line.trim().is_empty() {
        return;
    }
    if conn.awaiting_handshake {
        conn.awaiting_handshake = false;
        let is_hello_attempt = proto::parse_json(line)
            .is_ok_and(|json| json.get("hello").is_some() && json.get("matrix").is_none());
        if is_hello_attempt {
            let event = match ClientFrame::parse_line(line, conn.line_no) {
                Ok(ClientFrame::Hello {
                    version: requested,
                    timing: wants_timing,
                    certificate: wants_certificate,
                }) => {
                    let granted = requested.clamp(1, PROTOCOL_VERSION);
                    conn.wire.version.store(granted as u8, Ordering::Relaxed);
                    if granted >= 2 && wants_timing {
                        conn.wire.timing.store(true, Ordering::Relaxed);
                    }
                    if granted >= 2 && wants_certificate {
                        conn.wire.certificate.store(true, Ordering::Relaxed);
                    }
                    let ack = HelloAck {
                        protocol: granted,
                        server: format!("rect-addr/{}", env!("CARGO_PKG_VERSION")),
                        capabilities: service.capabilities(),
                    };
                    OutEvent::Control(ack.to_json_line())
                }
                Err((id, err)) => parse_failure(id, err),
                Ok(_) => OutEvent::Response(JobResponse::failure(
                    "hello".to_string(),
                    JobError::new(ErrorKind::Protocol, "malformed handshake"),
                )),
            };
            queue_event(conn, event);
            return;
        }
    }
    match load_version(&conn.wire.version) {
        WireVersion::V1 => match JobRequest::parse_line_in(line, conn.line_no, WireVersion::V1) {
            Ok(req) => submit_v1(conn, service, req),
            Err((id, err)) => {
                let event = parse_failure(id, err);
                queue_event(conn, event);
            }
        },
        WireVersion::V2 => {
            let event = match ClientFrame::parse_line(line, conn.line_no) {
                Ok(ClientFrame::Hello { .. }) => OutEvent::Response(JobResponse::failure(
                    "hello".to_string(),
                    JobError::new(
                        ErrorKind::Protocol,
                        "handshake is only valid as the first line",
                    ),
                )),
                Ok(ClientFrame::Job(mut req)) => {
                    req.certify = req.certify && conn.wire.certificate.load(Ordering::Relaxed);
                    let id = req.id.clone();
                    match service.submit_sink(req, conn.job_sink.clone(), conn.group, false) {
                        Ok(ticket) => {
                            conn.inflight += 1;
                            remember(
                                &mut conn.tickets,
                                &mut conn.ticket_order,
                                id,
                                ticket,
                                CANCEL_MAP_CAP,
                            );
                            return;
                        }
                        Err(e) => OutEvent::Response(JobResponse::failure(
                            id,
                            e.to_job_error(service.queue_depth()),
                        )),
                    }
                }
                Ok(ClientFrame::Cancel { id }) => {
                    let done = conn
                        .tickets
                        .get(&id)
                        .is_some_and(|ticket| service.cancel(*ticket))
                        || conn.sched.cancel(service, &id);
                    OutEvent::Control(CancelAck { id, done }.to_json_line())
                }
                Ok(ClientFrame::Stats) => OutEvent::Control(stats_frame(service).to_json_line()),
                Ok(ClientFrame::Schedule(mut req)) => {
                    req.certify = req.certify && conn.wire.certificate.load(Ordering::Relaxed);
                    match accept_schedule(service, &conn.sched, &req) {
                        Ok((canceled, sched_group)) => {
                            obs::registry().counter(obs::names::SCHEDULE_JOBS).inc();
                            conn.sched.jobs.fetch_add(1, Ordering::Relaxed);
                            conn.active_schedules += 1;
                            let service = Arc::clone(service);
                            let sink = conn.sched_sink.clone();
                            let shared = conn.sched.clone();
                            std::thread::spawn(move || {
                                run_schedule(&service, req, sink, canceled, sched_group, &shared);
                            });
                            return;
                        }
                        Err(err) => OutEvent::Response(JobResponse::failure(req.id.clone(), err)),
                    }
                }
                Err((id, err)) => parse_failure(id, err),
            };
            queue_event(conn, event);
        }
    }
}

/// v1 submission: non-blocking against the service; a full queue parks
/// the job (pausing this connection's reads) instead of answering `busy`,
/// preserving the v1 stall-only backpressure contract.
fn submit_v1(conn: &mut Conn, service: &Arc<Service>, req: JobRequest) {
    match service.submit_sink_reclaim(req, conn.job_sink.clone(), conn.group) {
        Ok(_ticket) => conn.inflight += 1,
        Err((crate::service::SubmitError::Busy, req)) => {
            conn.pending_v1 = Some(req);
        }
        Err((e, req)) => {
            let err = e.to_job_error(service.queue_depth());
            queue_event(conn, OutEvent::Response(JobResponse::failure(req.id, err)));
        }
    }
}

/// Retries a parked v1 submission after responses freed queue space;
/// success resumes the connection's buffered input.
fn retry_pending_v1(conn: &mut Conn, service: &Arc<Service>) {
    let Some(req) = conn.pending_v1.take() else {
        return;
    };
    submit_v1(conn, service, req);
    if conn.pending_v1.is_none() {
        // Unparked: lines buffered behind the parked job dispatch now.
        drain_rbuf(conn, service);
    }
}
