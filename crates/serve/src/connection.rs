//! One protocol connection: JSON-lines in, responses + trailer out.
//!
//! [`serve_connection`] drives any `BufRead`/`Write` pair — the CLI's
//! stdin/stdout, a Unix-domain stream, a TCP stream — through the
//! versioned protocol against a shared [`Service`]:
//!
//! * **v1** (no handshake): every line is a job; parse failures answer
//!   `ok: false`; a full queue stalls the reader (blocking submit) instead
//!   of rejecting, so legacy streams never observe `busy`.
//! * **v2** (`{"hello": 2}` first line): capabilities ack, per-job
//!   `priority`/`deadline_ms`, `cancel` frames (acked, canceled jobs
//!   answer `ErrorKind::Canceled`), `stats` frames, and `busy` responses
//!   once the submission queue is full.
//!
//! Responses stream back in **completion order** with a flush after every
//! line. On end-of-input the connection *drains*: every dispatched job is
//! answered before the final summary frame is emitted — client EOF (or a
//! closing listener) never drops in-flight work or the trailer.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;

use proto::{
    read_line_bounded, CancelAck, ClientFrame, EngineSnapshot, ErrorKind, HelloAck, JobError,
    JobRequest, JobResponse, LineRead, StatsFrame, SummaryFrame, WireVersion, MAX_LINE_BYTES,
    PROTOCOL_VERSION,
};

use crate::schedule::{run_schedule, ScheduleHandle, ScheduleShared, MAX_ACTIVE_SCHEDULES};
use crate::service::{OutEvent, Service, Ticket};

/// Totals of one drained connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectionSummary {
    /// Jobs answered successfully.
    pub solved: usize,
    /// Jobs answered with a non-cancel, non-busy error.
    pub failed: usize,
    /// Jobs canceled while queued (v2).
    pub canceled: usize,
    /// Submissions rejected with `busy` (v2).
    pub busy: usize,
    /// Multi-layer `schedule` frames accepted (v2).
    pub schedule_jobs: usize,
    /// Layers answered on behalf of those schedules (v2). Each layer's
    /// response also counts into `solved`/`failed`/`canceled` above, like
    /// any job answered on the connection.
    pub schedule_layers: usize,
    /// The protocol version the connection ended in.
    pub version: WireVersion,
}

/// Bound on the id→ticket correlation map kept for `cancel` frames; when
/// exceeded the oldest mappings are forgotten (their jobs have almost
/// certainly completed — cancel only ever lands on queued jobs anyway).
pub(crate) const CANCEL_MAP_CAP: usize = 16_384;

pub(crate) fn load_version(version: &AtomicU8) -> WireVersion {
    if version.load(Ordering::Relaxed) >= 2 {
        WireVersion::V2
    } else {
        WireVersion::V1
    }
}

/// Per-connection negotiated wire state: the granted protocol version and
/// the handshake opt-ins. The reader sets it while handling the hello
/// frame; the writer gates serialization on it.
pub(crate) struct WireState {
    pub(crate) version: AtomicU8,
    /// Peer opted into per-job `timing` objects.
    pub(crate) timing: AtomicBool,
    /// Peer opted into `certificate` objects on certified responses.
    pub(crate) certificate: AtomicBool,
}

impl WireState {
    pub(crate) fn new() -> WireState {
        WireState {
            version: AtomicU8::new(1),
            timing: AtomicBool::new(false),
            certificate: AtomicBool::new(false),
        }
    }
}

/// The single mapping from engine cache counters to a wire
/// [`EngineSnapshot`] — shared by the summary trailer and the stats
/// frame so the two can never drift apart field-by-field.
fn snapshot_of(cache: &engine::CacheStats, warm_sessions: u64) -> EngineSnapshot {
    EngineSnapshot {
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_entries: cache.entries,
        cache_evictions: cache.evictions,
        flight_waits: cache.flight_waits,
        warm_sessions,
        canon_complete: cache.canon_complete,
        canon_heuristic: cache.canon_heuristic,
    }
}

/// The service-wide engine counters embedded in summary and stats
/// frames. Reads plain counters only — cheap enough for every
/// connection's summary trailer (unlike [`Service::stats`], which also
/// collects and sorts the hot heuristic keys).
pub(crate) fn engine_snapshot(service: &Service) -> EngineSnapshot {
    snapshot_of(
        &service.engine().cache_stats(),
        service.engine().warm_sessions() as u64,
    )
}

/// The v2 `stats` frame for the service's current state (one
/// [`Service::stats`] collection; the cache counters inside it are reused
/// rather than fetched twice).
pub fn stats_frame(service: &Service) -> StatsFrame {
    let stats = service.stats();
    StatsFrame {
        snapshot: snapshot_of(&stats.cache, stats.warm_sessions as u64),
        queue_depth: stats.queue_depth as u64,
        queue_len: stats.queue_len as u64,
        persisted_sessions: stats.persisted_sessions,
        budget_skips: stats.budget_skips,
        certified_jobs: stats.certified_jobs,
        schedule_jobs: stats.schedule_jobs,
        schedule_layers: stats.schedule_layers,
        canon_heuristic_hot: stats
            .hot_heuristic_keys
            .iter()
            .map(|(key, count)| proto::HotKey {
                key: key.clone(),
                count: *count,
            })
            .collect(),
        snapshot_load_failures: stats.snapshot_load_failures,
        open_connections: stats.open_connections,
        snapshot_generation: stats.snapshot_generation,
        latency: obs::registry()
            .histogram_summaries()
            .into_iter()
            .map(|(name, s)| {
                (
                    name,
                    proto::LatencySummary {
                        count: s.count,
                        p50: s.p50,
                        p90: s.p90,
                        p99: s.p99,
                        max: s.max,
                    },
                )
            })
            .collect(),
    }
}

/// A parse/protocol failure response, counted into the error-class
/// registry on its way out — every arm that answers a malformed line
/// funnels through here so the counter can never drift from the wire.
pub(crate) fn parse_failure(id: String, err: JobError) -> OutEvent {
    obs::registry().counter(obs::names::ERR_PARSE).inc();
    OutEvent::Response(JobResponse::failure(id, err))
}

/// Reader half: parses lines, dispatches frames, submits jobs. Runs on
/// its own thread; everything it emits goes through `tx` so the writer
/// stays the single owner of the output stream. Accepted `schedule`
/// frames each spawn a runner thread onto the connection's `scope` —
/// the runner holds a `tx` clone, so the writer's drain naturally waits
/// for every in-flight schedule.
#[allow(clippy::too_many_arguments)]
fn reader_loop<'scope, R: BufRead>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    service: &'scope Service,
    mut input: R,
    tx: Sender<OutEvent>,
    wire: &WireState,
    abort: &AtomicBool,
    // Every submission is tagged with the connection's cancellation
    // group, so a peer that hangs up mid-stream (write error → abort)
    // does not leave minutes of abandoned work occupying the shared
    // worker pool: the writer cancels the group on its first write
    // error, and the sweep below catches jobs submitted after that.
    group: crate::service::GroupId,
    sched: &'scope ScheduleShared,
) {
    let mut tickets: HashMap<String, Ticket> = HashMap::new();
    let mut ticket_order: std::collections::VecDeque<(String, Ticket)> =
        std::collections::VecDeque::new();
    let mut awaiting_handshake = true;
    let mut line_no = 0usize;
    loop {
        if abort.load(Ordering::Relaxed) {
            break; // consumer gone: stop dispatching
        }
        line_no += 1;
        // Bounded read: a peer that streams bytes without a newline must
        // not grow this connection's memory without limit.
        let line = match read_line_bounded(&mut input, MAX_LINE_BYTES) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                // The stream is mid-line and no longer framed: answer once
                // and close the connection.
                let _ = tx.send(OutEvent::Response(JobResponse::failure(
                    format!("job-{line_no}"),
                    JobError::new(
                        ErrorKind::Protocol,
                        format!("line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
                    ),
                )));
                break;
            }
            Err(e) => {
                // Read errors (e.g. invalid UTF-8) answer once and end the
                // stream cleanly — the output must stay a valid JSON-lines
                // stream to the very end.
                let _ = tx.send(OutEvent::Response(JobResponse::failure(
                    format!("job-{line_no}"),
                    JobError::new(ErrorKind::Io, format!("input read error: {e}")),
                )));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }

        // The handshake is only valid as the first non-blank line; its
        // absence locks the connection into v1, where control frames do
        // not exist and every line parses under v1 job rules. A *failed*
        // handshake attempt (a line carrying a "hello" key that does not
        // parse) is answered with its protocol error — not reinterpreted
        // as a v1 job — and the connection stays v1.
        if awaiting_handshake {
            awaiting_handshake = false;
            // A handshake attempt carries a "hello" key and is *not* a job
            // (no "matrix") — a legacy v1 job line with a stray "hello"
            // field keeps solving as a job, as unknown fields always did.
            let is_hello_attempt = proto::parse_json(&line)
                .is_ok_and(|json| json.get("hello").is_some() && json.get("matrix").is_none());
            if is_hello_attempt {
                let event = match ClientFrame::parse_line(&line, line_no) {
                    Ok(ClientFrame::Hello {
                        version: requested,
                        timing: wants_timing,
                        certificate: wants_certificate,
                    }) => {
                        let granted = requested.clamp(1, PROTOCOL_VERSION);
                        wire.version.store(granted as u8, Ordering::Relaxed);
                        // Timing and certificates are opt-in *and* v2-only:
                        // a v1-granted handshake ignores both flags.
                        if granted >= 2 && wants_timing {
                            wire.timing.store(true, Ordering::Relaxed);
                        }
                        if granted >= 2 && wants_certificate {
                            wire.certificate.store(true, Ordering::Relaxed);
                        }
                        let ack = HelloAck {
                            protocol: granted,
                            server: format!("rect-addr/{}", env!("CARGO_PKG_VERSION")),
                            capabilities: service.capabilities(),
                        };
                        OutEvent::Control(ack.to_json_line())
                    }
                    Err((id, err)) => parse_failure(id, err),
                    // Unreachable: a line with a "hello" key parses as
                    // Hello or errors, but stay total.
                    Ok(_) => OutEvent::Response(JobResponse::failure(
                        "hello".to_string(),
                        JobError::new(ErrorKind::Protocol, "malformed handshake"),
                    )),
                };
                if tx.send(event).is_err() {
                    break;
                }
                continue;
            }
        }

        match load_version(&wire.version) {
            WireVersion::V1 => {
                // Exactly the legacy rules: every line is a job line, and
                // v2-only fields are ignored like any unknown extra.
                match JobRequest::parse_line_in(&line, line_no, WireVersion::V1) {
                    Ok(req) => {
                        // Blocking submit: a full queue stalls this reader
                        // (and so the peer) instead of rejecting — v1 has
                        // no busy frame. No ticket bookkeeping either:
                        // v1 has no cancel frame to spend tickets on.
                        let id = req.id.clone();
                        match service.submit_grouped(req, tx.clone(), group, true) {
                            Ok(_ticket) => {}
                            Err(e) => {
                                let err = e.to_job_error(service.queue_depth());
                                if tx
                                    .send(OutEvent::Response(JobResponse::failure(id, err)))
                                    .is_err()
                                {
                                    break;
                                }
                            }
                        }
                    }
                    Err((id, err)) => {
                        if tx.send(parse_failure(id, err)).is_err() {
                            break;
                        }
                    }
                }
            }
            WireVersion::V2 => {
                let event = match ClientFrame::parse_line(&line, line_no) {
                    Ok(ClientFrame::Hello { .. }) => OutEvent::Response(JobResponse::failure(
                        "hello".to_string(),
                        JobError::new(
                            ErrorKind::Protocol,
                            "handshake is only valid as the first line",
                        ),
                    )),
                    Ok(ClientFrame::Job(mut req)) => {
                        // Proof logging is pure cost unless the peer opted
                        // into receiving certificates at handshake: strip
                        // the flag before the job reaches a worker.
                        req.certify = req.certify && wire.certificate.load(Ordering::Relaxed);
                        let id = req.id.clone();
                        match service.submit_grouped(req, tx.clone(), group, false) {
                            Ok(ticket) => {
                                remember(
                                    &mut tickets,
                                    &mut ticket_order,
                                    id,
                                    ticket,
                                    CANCEL_MAP_CAP,
                                );
                                continue;
                            }
                            // Full queue → busy response: v2 backpressure.
                            Err(e) => OutEvent::Response(JobResponse::failure(
                                id,
                                e.to_job_error(service.queue_depth()),
                            )),
                        }
                    }
                    Ok(ClientFrame::Cancel { id }) => {
                        // Job tickets first (ids are connection-scoped for
                        // both namespaces), then in-flight schedules.
                        let done = tickets
                            .get(&id)
                            .is_some_and(|ticket| service.cancel(*ticket))
                            || sched.cancel(service, &id);
                        OutEvent::Control(CancelAck { id, done }.to_json_line())
                    }
                    Ok(ClientFrame::Stats) => {
                        OutEvent::Control(stats_frame(service).to_json_line())
                    }
                    Ok(ClientFrame::Schedule(mut req)) => {
                        // Same opt-in gate jobs get: proof logging is pure
                        // cost unless the peer asked for certificates.
                        req.certify = req.certify && wire.certificate.load(Ordering::Relaxed);
                        match accept_schedule(service, sched, &req) {
                            Ok((canceled, sched_group)) => {
                                obs::registry().counter(obs::names::SCHEDULE_JOBS).inc();
                                sched.jobs.fetch_add(1, Ordering::Relaxed);
                                let runner_tx = Arc::new(tx.clone());
                                scope.spawn(move || {
                                    run_schedule(
                                        service,
                                        req,
                                        runner_tx,
                                        canceled,
                                        sched_group,
                                        sched,
                                    );
                                });
                                continue;
                            }
                            Err(err) => {
                                OutEvent::Response(JobResponse::failure(req.id.clone(), err))
                            }
                        }
                    }
                    Err((id, err)) => parse_failure(id, err),
                };
                if tx.send(event).is_err() {
                    break;
                }
            }
        }
    }
    if abort.load(Ordering::Relaxed) {
        // The peer is gone (write error): abandon this connection's
        // still-queued jobs so the shared workers move on to live work.
        // Their canceled responses go into the (discarding) writer drain.
        service.cancel_group(group);
        sched.cancel_all(service);
    }
    // `tx` drops here; the writer's drain ends once every submitted job's
    // sink clone has delivered its response. Schedule runners hold their
    // own clones, so the drain also waits for every in-flight schedule.
}

/// Registers a schedule for execution: enforces the per-connection
/// in-flight cap and id uniqueness, and hands back the runner's
/// cancellation handles.
pub(crate) fn accept_schedule(
    service: &Service,
    sched: &ScheduleShared,
    req: &proto::ScheduleRequest,
) -> Result<(Arc<AtomicBool>, crate::service::GroupId), JobError> {
    let mut registry = sched.registry.lock().expect("schedule registry poisoned");
    if registry.len() >= MAX_ACTIVE_SCHEDULES {
        obs::registry().counter(obs::names::ERR_BUSY).inc();
        return Err(JobError::new(
            ErrorKind::Busy,
            format!("{MAX_ACTIVE_SCHEDULES} schedules already in flight; retry later"),
        ));
    }
    if registry.contains_key(&req.id) {
        return Err(JobError::new(
            ErrorKind::Protocol,
            format!("schedule id {:?} is already in flight", req.id),
        ));
    }
    let canceled = Arc::new(AtomicBool::new(false));
    // A private cancellation group per schedule: canceling one schedule
    // must not abandon the connection's other queued work.
    let sched_group = service.new_group();
    registry.insert(
        req.id.clone(),
        ScheduleHandle {
            canceled: Arc::clone(&canceled),
            group: sched_group,
        },
    );
    Ok((canceled, sched_group))
}

pub(crate) fn remember(
    tickets: &mut HashMap<String, Ticket>,
    order: &mut std::collections::VecDeque<(String, Ticket)>,
    id: String,
    ticket: Ticket,
    cap: usize,
) {
    tickets.insert(id.clone(), ticket);
    // Eviction is by insertion, so a reused id gets a fresh queue entry;
    // the stale entry's eviction below becomes a no-op instead of
    // forgetting the id's newest (possibly still-queued) ticket.
    order.push_back((id, ticket));
    while order.len() > cap {
        if let Some((old_id, old_ticket)) = order.pop_front() {
            if tickets.get(&old_id) == Some(&old_ticket) {
                tickets.remove(&old_id);
            }
        }
    }
}

/// Drives one connection end-to-end; see the module docs. Returns once
/// the input reached end-of-stream, every dispatched job was answered,
/// and the final summary frame was written — the graceful-drain
/// guarantee. On a write error (peer hung up) the remaining responses are
/// drained and discarded and the error is returned; no summary is
/// emitted into a dead stream.
pub fn serve_connection<R: BufRead + Send, W: Write>(
    service: &Service,
    input: R,
    output: &mut W,
) -> std::io::Result<ConnectionSummary> {
    let (tx, rx) = mpsc::channel::<OutEvent>();
    let wire = WireState::new();
    let wire = &wire;
    let abort = AtomicBool::new(false);
    let abort = &abort;
    // This connection's cancellation group: a dead peer must not leave
    // its queued jobs occupying the shared worker pool.
    let group = service.new_group();
    let sched = ScheduleShared::default();
    let sched = &sched;
    let mut summary = ConnectionSummary::default();

    let write_error = std::thread::scope(|scope| {
        let reader_tx = tx;
        scope.spawn(move || {
            reader_loop(scope, service, input, reader_tx, wire, abort, group, sched)
        });

        // Writer: single owner of the output stream, draining responses in
        // completion order with a flush per line. On a write error keep
        // draining (the reader may sit in a blocking read; an early return
        // would deadlock the scope join) but stop writing, tell the reader
        // to stop dispatching, and abandon this connection's queued jobs —
        // the common disconnect path is reader-EOF *then* writer-EPIPE, so
        // the writer (not only the reader) must trigger the cleanup.
        let mut write_error: Option<std::io::Error> = None;
        for event in rx {
            let line = match event {
                OutEvent::Response(mut resp) => {
                    match resp.error_kind() {
                        None => summary.solved += 1,
                        Some(ErrorKind::Canceled) => summary.canceled += 1,
                        Some(ErrorKind::Busy) => summary.busy += 1,
                        Some(_) => summary.failed += 1,
                    }
                    // The timing object reaches the wire only for a v2
                    // peer that opted in at handshake (the serializer
                    // independently refuses to emit it on v1 lines).
                    if !wire.timing.load(Ordering::Relaxed) {
                        resp.timing = None;
                    }
                    // Same gate for certificates: they are large, so only
                    // a peer that asked for them at handshake pays the
                    // bytes (the serializer independently refuses v1).
                    if !wire.certificate.load(Ordering::Relaxed) {
                        resp.certificate = None;
                    }
                    resp.to_json_line_v(load_version(&wire.version))
                }
                OutEvent::Control(line) => line,
            };
            if write_error.is_none() {
                let attempt = writeln!(output, "{line}").and_then(|()| output.flush());
                if let Err(e) = attempt {
                    write_error = Some(e);
                    abort.store(true, Ordering::Relaxed);
                    service.cancel_group(group);
                    sched.cancel_all(service);
                }
            }
        }
        write_error
    });
    summary.version = load_version(&wire.version);
    summary.schedule_jobs = sched.jobs.load(Ordering::Relaxed) as usize;
    summary.schedule_layers = sched.layers.load(Ordering::Relaxed) as usize;

    if let Some(e) = write_error {
        return Err(e);
    }

    // Drain complete: every response precedes the trailer by construction.
    let frame = SummaryFrame {
        solved: summary.solved as u64,
        failed: summary.failed as u64,
        canceled: summary.canceled as u64,
        busy: summary.busy as u64,
        schedule_jobs: summary.schedule_jobs as u64,
        schedule_layers: summary.schedule_layers as u64,
        snapshot: engine_snapshot(service),
    };
    writeln!(output, "{}", frame.to_json_line(summary.version))?;
    output.flush()?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_map_eviction_survives_id_reuse() {
        let mut tickets = HashMap::new();
        let mut order = std::collections::VecDeque::new();
        let cap = 3;
        remember(&mut tickets, &mut order, "a".to_string(), 1, cap);
        remember(&mut tickets, &mut order, "b".to_string(), 2, cap);
        // "a" reused: its mapping must track the newest ticket and must
        // not be evicted on its *old* insertion's turn.
        remember(&mut tickets, &mut order, "a".to_string(), 3, cap);
        assert_eq!(tickets.get("a"), Some(&3));
        // Pushes past the cap: the first eviction pops ("a", 1), a stale
        // entry — "a" still maps to 3.
        remember(&mut tickets, &mut order, "c".to_string(), 4, cap);
        assert_eq!(tickets.get("a"), Some(&3), "stale eviction must be a no-op");
        assert_eq!(tickets.get("b"), Some(&2));
        // Next eviction pops ("b", 2), a live entry — "b" is forgotten.
        remember(&mut tickets, &mut order, "d".to_string(), 5, cap);
        assert_eq!(tickets.get("b"), None);
        assert_eq!(tickets.get("a"), Some(&3));
        assert!(order.len() <= cap);
        assert!(tickets.len() <= cap, "map is bounded by the queue");
    }
}
