//! The [`Service`] facade: a bounded, priority-ordered submission queue
//! and a worker pool in front of one shared [`Engine`].
//!
//! Every transport (the stdin/stdout loop, each socket connection, a
//! library consumer calling [`Service::submit`]) multiplexes onto the same
//! service, so the canonical-form cache, the warm SAP sessions and the
//! adaptive scheduler are shared across all of them — a duplicate
//! submitted by client A is a cache hit for client B.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use engine::lease::Lease;
use engine::persist::{
    load_snapshot, save_snapshot_gen, snapshot_generation, SnapshotError, SnapshotStats,
    DEFAULT_MAX_CORE_CLAUSES,
};
use engine::{CacheStats, Engine, EngineConfig};
use obs::JobTrace;
use proto::{Capabilities, ErrorKind, JobError, JobRequest, JobResponse, Timing};

/// Where and how often a [`Service`] spills the engine's warm state (the
/// session store's learnt-clause cores and the scheduler's bucket
/// statistics) to disk. See `engine::persist` for the snapshot format and
/// its corruption/versioning guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding the snapshot (created on first save). Loaded at
    /// service construction: a valid snapshot warm-starts the engine, a
    /// missing/corrupt/foreign-schema one cold-starts it.
    pub state_dir: PathBuf,
    /// Also snapshot after every `N` completed jobs (`None` = only on
    /// [`Service::shutdown`]). A periodic flush is what survives an
    /// unclean kill — `SIGKILL` runs no destructor.
    pub snapshot_every: Option<u64>,
    /// Multi-process coordination: `Some(ttl)` makes this service contend
    /// for the state dir's snapshot-writer lease instead of assuming it
    /// owns the directory. The lease holder flushes snapshots (bumping
    /// the generation); every other process is a **reader** that polls
    /// the on-disk generation and adopts newer snapshots into its live
    /// engine, and takes the lease over if the holder dies (no refresh
    /// for `ttl`). `None` (the default) keeps the single-process
    /// behavior: this process always writes.
    pub lease: Option<Duration>,
}

impl PersistConfig {
    /// Persistence at `state_dir` with the default
    /// [`DEFAULT_SNAPSHOT_EVERY`] flush cadence.
    pub fn at(state_dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            state_dir: state_dir.into(),
            snapshot_every: Some(DEFAULT_SNAPSHOT_EVERY),
            lease: None,
        }
    }

    /// [`PersistConfig::at`] with lease-based multi-process coordination
    /// at the given time-to-live.
    pub fn shared(state_dir: impl Into<PathBuf>, ttl: Duration) -> Self {
        PersistConfig {
            lease: Some(ttl),
            ..PersistConfig::at(state_dir)
        }
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bound of the submission queue. A non-blocking submit against a full
    /// queue is rejected with [`SubmitError::Busy`] — the backpressure
    /// signal v2 connections forward as `busy` responses.
    pub queue_depth: usize,
    /// Worker threads solving jobs. `0` means
    /// [`EngineConfig::effective_workers`].
    pub workers: usize,
    /// Warm-state persistence (`None` = in-memory only, the default).
    pub persist: Option<PersistConfig>,
}

/// Default bound of the submission queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Default periodic-flush cadence of [`PersistConfig::at`], in completed
/// jobs.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 32;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: DEFAULT_QUEUE_DEPTH,
            workers: 0,
            persist: None,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full; retry after draining some responses.
    Busy,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl SubmitError {
    /// The wire error this rejection maps to.
    pub fn to_job_error(self, queue_depth: usize) -> JobError {
        match self {
            SubmitError::Busy => JobError::new(
                ErrorKind::Busy,
                format!("submission queue full (depth {queue_depth}); retry later"),
            ),
            SubmitError::ShuttingDown => {
                JobError::new(ErrorKind::Internal, "service is shutting down")
            }
        }
    }
}

/// Opaque identity of one accepted submission, scoped to the service.
/// Wire-level `cancel` frames name the client-chosen job id; transports
/// map those to tickets, so same-id jobs from different connections never
/// cancel each other.
pub type Ticket = u64;

/// Identity of a cancellation group — typically one per connection, from
/// [`Service::new_group`] — letting a transport abandon every job it still
/// has queued in one call ([`Service::cancel_group`]) when its peer hangs
/// up. `0` means ungrouped.
pub type GroupId = u64;

/// Where a submission's events go. The service pushes a job's
/// [`OutEvent::Response`] (and cancellation notices) through this; the
/// blanket impl for [`Sender<OutEvent>`] keeps channel-based transports
/// working unchanged, while the event-driven acceptor implements it to
/// route completions back into its readiness loop without a thread per
/// connection.
pub trait ResponseSink: Send + Sync {
    /// Delivers one event. Returns `false` when the receiver is gone (the
    /// submitter hung up) — senders may use that to stop early, and must
    /// tolerate the event being discarded.
    fn deliver(&self, event: OutEvent) -> bool;
}

impl ResponseSink for Sender<OutEvent> {
    fn deliver(&self, event: OutEvent) -> bool {
        self.send(event).is_ok()
    }
}

/// One event delivered to a submission's response sink. Control frames
/// ([`OutEvent::Control`]) are pre-serialized lines a connection injects
/// into its own writer channel so they interleave cleanly with responses;
/// the service itself only ever sends [`OutEvent::Response`].
// The size gap is real (a response with a certificate dwarfs a control
// line) but each event lives only for one trip through a bounded channel
// before the writer consumes it; boxing would buy transient channel bytes
// at the cost of an allocation per response on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum OutEvent {
    /// A job's single response.
    Response(JobResponse),
    /// A pre-serialized control frame line (hello ack, cancel ack, stats).
    Control(String),
}

/// Point-in-time service observability, the payload of the v2 `stats`
/// frame.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Canonical-form cache counters of the shared engine.
    pub cache: CacheStats,
    /// Warm SAP sessions currently parked.
    pub warm_sessions: usize,
    /// Configured queue bound.
    pub queue_depth: usize,
    /// Jobs currently queued (not yet taken by a worker).
    pub queue_len: usize,
    /// Warm sessions restored from the disk snapshot at startup.
    pub persisted_sessions: u64,
    /// Races whose SAT phase the budget-aware scheduler skipped.
    pub budget_skips: u64,
    /// Hottest heuristic-labeled cache keys (canonizer-aware admission
    /// candidates), hottest first.
    pub hot_heuristic_keys: Vec<(String, u64)>,
    /// Jobs answered with a self-contained DRAT certificate attached.
    pub certified_jobs: u64,
    /// Multi-layer `schedule` frames accepted service-wide.
    pub schedule_jobs: u64,
    /// Layers answered on behalf of `schedule` frames, whatever the
    /// outcome (solved, failed, deadline-expired or canceled).
    pub schedule_layers: u64,
    /// Snapshot loads rejected at startup for a reason *other than* the
    /// snapshot simply not existing yet (corruption, foreign schema, IO).
    /// A first boot is not a failure; a silently ignored warm state is.
    pub snapshot_load_failures: u64,
    /// Transport connections currently open against this process (the
    /// socket layers call [`Service::connection_opened`]/`_closed`).
    pub open_connections: u64,
    /// Generation of the newest snapshot this process wrote or adopted
    /// (`0` = none yet). Under a shared state dir this is how an operator
    /// sees reader processes tracking the writer.
    pub snapshot_generation: u64,
}

/// Queue ordering: higher priority first, FIFO within a priority.
type OrderKey = (i64, u64); // (-priority, seq): BTreeMap pops the minimum

struct Queued {
    ticket: Ticket,
    group: GroupId,
    req: JobRequest,
    sink: Arc<dyn ResponseSink>,
    submitted: Instant,
    /// Per-job stage trace, born at submission so its total spans queue
    /// wait plus solve. The engine fills the canon/cache/race stages; the
    /// worker stamps queue wait and the total.
    trace: Arc<JobTrace>,
}

#[derive(Default)]
struct QueueState {
    by_order: BTreeMap<OrderKey, Queued>,
    by_ticket: HashMap<Ticket, OrderKey>,
    seq: u64,
    stop: bool,
}

struct Inner {
    engine: Arc<Engine>,
    state: Mutex<QueueState>,
    /// Signals workers that work (or stop) is available.
    work: Condvar,
    /// Signals blocking submitters that queue space freed up.
    space: Condvar,
    queue_depth: usize,
    next_ticket: AtomicU64,
    next_group: AtomicU64,
    /// Warm-state persistence, when configured.
    persist: Option<PersistConfig>,
    /// Jobs completed since startup (drives the periodic flush).
    jobs_done: AtomicU64,
    /// Serializes snapshot writes; `try_lock` skips a flush another
    /// worker is already performing rather than queueing behind it.
    snapshot_gate: Mutex<()>,
    /// Startup snapshot loads rejected for a reason other than
    /// [`SnapshotError::Missing`] (see [`ServiceStats`]).
    snapshot_load_failures: AtomicU64,
    /// Generation of the newest snapshot written *or adopted* by this
    /// process (0 = none yet).
    snapshot_generation: AtomicU64,
    /// The snapshot-writer lease, when [`PersistConfig::lease`] is set and
    /// this process currently holds it. `None` in lease mode means this
    /// process is a reader.
    lease: Mutex<Option<Lease>>,
    /// [`PersistConfig::lease`], hoisted for cheap "is lease mode on"
    /// checks without re-borrowing persist.
    lease_ttl: Option<Duration>,
    /// Transport connections currently open (socket layers report
    /// open/close through the [`Service`] facade).
    open_connections: AtomicU64,
}

impl Inner {
    /// Writes a snapshot now (when persistence is configured). Errors are
    /// reported on stderr and swallowed: a failed flush must never take
    /// down serving. With `skip_if_busy`, a flush already in progress on
    /// another worker makes this one a no-op instead of queueing.
    fn flush_snapshot(&self, skip_if_busy: bool) -> Option<SnapshotStats> {
        let persist = self.persist.as_ref()?;
        // In lease mode only the elected writer flushes; readers adopt the
        // writer's snapshots through the coordinator instead.
        if self.lease_ttl.is_some() && !self.is_writer() {
            return None;
        }
        let _gate = if skip_if_busy {
            self.snapshot_gate.try_lock().ok()?
        } else {
            self.snapshot_gate.lock().expect("snapshot gate poisoned")
        };
        let flush_start = Instant::now();
        // Generations stay monotonic across processes: continue from
        // whichever is newer, the on-disk header (a previous lease holder
        // may have written since we last did) or our local counter.
        let disk_gen = snapshot_generation(&persist.state_dir).unwrap_or(0);
        let generation = disk_gen.max(self.snapshot_generation.load(Ordering::Relaxed)) + 1;
        match save_snapshot_gen(
            &persist.state_dir,
            &self.engine,
            DEFAULT_MAX_CORE_CLAUSES,
            generation,
        ) {
            Ok(stats) => {
                self.snapshot_generation
                    .store(generation, Ordering::Relaxed);
                obs::registry()
                    .histogram(obs::names::SNAPSHOT_FLUSH_US)
                    .record_duration(flush_start.elapsed());
                Some(stats)
            }
            Err(e) => {
                eprintln!(
                    "rect-addr: snapshot to {} failed: {e}",
                    persist.state_dir.display()
                );
                None
            }
        }
    }

    /// Whether this process may write snapshots right now: always outside
    /// lease mode, and only while actually holding the lease inside it.
    /// Verified against the file (one small read), not just the cached
    /// claim, so a holder stolen from between heartbeats stops writing at
    /// its next flush rather than its next heartbeat.
    fn is_writer(&self) -> bool {
        if self.lease_ttl.is_none() {
            return true;
        }
        self.lease
            .lock()
            .expect("lease slot poisoned")
            .as_ref()
            .is_some_and(|l| l.held())
    }

    /// The periodic flush hook, called once per completed job. The flush
    /// itself runs on a detached thread so the worker goes straight back
    /// to serving — session-core serialization and the file write happen
    /// off the job path. The gate's `try_lock` dedups overlapping fires;
    /// a flush still mid-write at process exit can at worst leave a stale
    /// `.tmp` sibling (the atomic rename protects the live snapshot).
    fn note_job_done(self: &Arc<Self>) {
        let done = self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
        obs::registry().counter(obs::names::JOBS_COMPLETED).inc();
        let Some(every) = self.persist.as_ref().and_then(|p| p.snapshot_every) else {
            return;
        };
        if every > 0 && done.is_multiple_of(every) {
            let inner = Arc::clone(self);
            std::thread::spawn(move || {
                inner.flush_snapshot(true);
            });
        }
    }
}

impl Inner {
    /// Solves one dequeued job, honoring its queue deadline: an expired
    /// deadline answers [`ErrorKind::Deadline`] without running, and a
    /// live one clamps the job's wall-clock budget to the time remaining.
    /// The deadline-free common path borrows the request as-is (no
    /// per-job matrix clone on the worker hot path).
    fn run_one(&self, job: &Queued) -> JobResponse {
        // Queue wait is recorded for *every* job, not only deadline ones —
        // the histogram is what reveals a saturated worker pool.
        let waited = job.submitted.elapsed();
        let waited_us = waited.as_micros().min(u64::MAX as u128) as u64;
        job.trace.set_queue_us(waited_us);
        obs::registry()
            .histogram(obs::names::QUEUE_WAIT_US)
            .record(waited_us);
        let Some(deadline_ms) = job.req.deadline_ms else {
            return self.engine.solve_job_traced(&job.req, &job.trace);
        };
        let waited_ms = waited.as_millis() as u64;
        let Some(remaining) = deadline_ms.checked_sub(waited_ms).filter(|r| *r > 0) else {
            obs::registry().counter(obs::names::ERR_DEADLINE).inc();
            return JobResponse::failure(
                job.req.id.clone(),
                JobError::new(
                    ErrorKind::Deadline,
                    format!("deadline of {deadline_ms}ms expired after {waited_ms}ms in queue"),
                ),
            );
        };
        let mut req = job.req.clone();
        req.budget_ms = Some(req.budget_ms.map_or(remaining, |b| b.min(remaining)));
        self.engine.solve_job_traced(&req, &job.trace)
    }
}

/// The lease coordinator: a single low-frequency thread (lease mode only)
/// that keeps this process's role honest. A **holder** heartbeats the
/// lease each tick and demotes itself to reader if the refresh reveals
/// the lease was lost. A **reader** adopts any newer on-disk snapshot
/// generation into the live engine (the writer's flushes propagate
/// without restarts) and then contends for the lease, taking over within
/// one TTL of the holder dying.
fn coordinator_loop(inner: Arc<Inner>, stop: Arc<AtomicBool>) {
    let Some(ttl) = inner.lease_ttl else { return };
    let Some(persist) = inner.persist.clone() else {
        return;
    };
    let tick = (ttl / 3).max(Duration::from_millis(20));
    while !stop.load(Ordering::Relaxed) {
        {
            let mut slot = inner.lease.lock().expect("lease slot poisoned");
            match slot.as_ref() {
                Some(lease) => {
                    if !lease.refresh() {
                        eprintln!(
                            "rect-addr: snapshot-writer lease on {} lost; demoting to reader",
                            persist.state_dir.display()
                        );
                        *slot = None;
                    }
                }
                None => {
                    // Reader: adopt a newer snapshot before contending, so
                    // a takeover starts from the dead writer's final state.
                    let local = inner.snapshot_generation.load(Ordering::Relaxed);
                    if let Some(disk_gen) = snapshot_generation(&persist.state_dir) {
                        if disk_gen > local {
                            // A failed load here is not a cold start: the
                            // writer may be mid-rename. Retry next tick.
                            if let Ok(restored) = load_snapshot(&persist.state_dir, &inner.engine) {
                                inner
                                    .snapshot_generation
                                    .store(restored.generation, Ordering::Relaxed);
                                eprintln!(
                                    "rect-addr: adopted snapshot generation {} ({} sessions) from {}",
                                    restored.generation,
                                    restored.sessions,
                                    persist.state_dir.display()
                                );
                            }
                        }
                    }
                    if let Ok(Some(lease)) = Lease::acquire(&persist.state_dir, ttl) {
                        eprintln!(
                            "rect-addr: acquired snapshot-writer lease on {}",
                            persist.state_dir.display()
                        );
                        *slot = Some(lease);
                    }
                }
            }
        }
        // Sleep in short slices so shutdown never waits a full tick.
        let deadline = Instant::now() + tick;
        while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("service queue poisoned");
            loop {
                if let Some((_, job)) = state.by_order.pop_first() {
                    state.by_ticket.remove(&job.ticket);
                    break job;
                }
                // Stop only once the queue is drained: shutdown answers
                // every accepted job before the workers exit.
                if state.stop {
                    return;
                }
                state = inner.work.wait(state).expect("service queue poisoned");
            }
        };
        inner.space.notify_one();
        let mut response = inner.run_one(&job);
        if response.certificate.is_some() {
            obs::registry().counter(obs::names::CERTIFIED_JOBS).inc();
        }
        job.trace.finish();
        obs::registry()
            .histogram(obs::names::JOB_US)
            .record(job.trace.total_us());
        // Every worker-answered response carries its stage trace; the
        // wire layer decides whether the peer actually sees it (v2 with
        // the `timing` opt-in only — v1 stays byte-identical).
        response.timing = Some(Timing {
            queue_us: job.trace.queue_us(),
            canon_us: job.trace.canon_us(),
            cache_us: job.trace.cache_us(),
            race_us: job.trace.race_us(),
            total_us: job.trace.total_us(),
        });
        // A closed sink (the submitter hung up) just discards the answer.
        let _ = job.sink.deliver(OutEvent::Response(response));
        inner.note_job_done();
    }
}

/// Handle to one accepted submission from [`Service::submit`].
#[derive(Debug)]
pub struct JobHandle {
    ticket: Ticket,
    id: String,
    rx: Receiver<OutEvent>,
}

impl JobHandle {
    /// The service-scoped ticket (pass to [`Service::cancel`]).
    pub fn ticket(&self) -> Ticket {
        self.ticket
    }

    /// The job's correlation id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Blocks until the job's response exists (solved, canceled, or
    /// deadline-expired). A service torn down before the job ran answers
    /// [`ErrorKind::Internal`].
    pub fn wait(self) -> JobResponse {
        match self.rx.recv() {
            Ok(OutEvent::Response(resp)) => resp,
            Ok(OutEvent::Control(_)) | Err(_) => JobResponse::failure(
                self.id,
                JobError::new(ErrorKind::Internal, "service dropped the job"),
            ),
        }
    }
}

/// The serving facade over one shared [`Engine`]; see the module docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use engine::{Engine, EngineConfig};
/// use proto::JobRequest;
/// use rect_addr_serve::{Service, ServiceConfig};
///
/// let engine = Arc::new(Engine::new(EngineConfig::default()));
/// let service = Service::new(engine, ServiceConfig::default());
/// let handle = service
///     .submit(JobRequest::new("l0", "10\n01".parse().unwrap()))
///     .expect("queue has room");
/// let resp = handle.wait();
/// assert!(resp.ok);
/// assert_eq!(resp.depth, 2);
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    /// The lease coordinator thread (lease mode only).
    coordinator: Mutex<Option<JoinHandle<()>>>,
    coord_stop: Arc<AtomicBool>,
}

impl Service {
    /// Spawns the worker pool over an existing (possibly shared) engine.
    /// With [`ServiceConfig::persist`] set, the state directory's snapshot
    /// is loaded first — a valid one warm-starts the engine (restored
    /// sessions rehydrate lazily per canonical class); a missing, corrupt
    /// or foreign-schema one is rejected wholesale and the engine
    /// cold-starts, with the rejection reason on stderr.
    pub fn new(engine: Arc<Engine>, config: ServiceConfig) -> Service {
        let mut load_failures = 0u64;
        let mut loaded_generation = 0u64;
        if let Some(persist) = &config.persist {
            match load_snapshot(&persist.state_dir, &engine) {
                Ok(restored) => {
                    loaded_generation = restored.generation;
                    if restored.sessions > 0 || restored.buckets > 0 {
                        eprintln!(
                            "rect-addr: restored {} warm sessions and {} scheduler buckets from {}",
                            restored.sessions,
                            restored.buckets,
                            persist.state_dir.display()
                        );
                    }
                }
                Err(SnapshotError::Missing) => {} // first boot: silent cold start
                Err(e) => {
                    // A cold start the operator did not ask for: the stderr
                    // line scrolls away, the counter does not.
                    load_failures += 1;
                    obs::registry()
                        .counter(obs::names::SNAPSHOT_LOAD_FAILURES)
                        .inc();
                    eprintln!(
                        "rect-addr: ignoring snapshot in {} ({e}); cold start",
                        persist.state_dir.display()
                    );
                }
            }
        }
        let worker_count = if config.workers == 0 {
            engine.config().effective_workers()
        } else {
            config.workers
        };
        let lease_ttl = config.persist.as_ref().and_then(|p| p.lease);
        // One acquisition attempt up front so a lone process is the writer
        // from its very first flush; the coordinator retries for readers.
        let initial_lease = match (&config.persist, lease_ttl) {
            (Some(persist), Some(ttl)) => match Lease::acquire(&persist.state_dir, ttl) {
                Ok(lease) => {
                    eprintln!(
                        "rect-addr: {} for snapshots in {}",
                        if lease.is_some() {
                            "elected writer"
                        } else {
                            "reader (writer lease held elsewhere)"
                        },
                        persist.state_dir.display()
                    );
                    lease
                }
                Err(e) => {
                    eprintln!(
                        "rect-addr: lease acquisition in {} failed ({e}); starting as reader",
                        persist.state_dir.display()
                    );
                    None
                }
            },
            _ => None,
        };
        let inner = Arc::new(Inner {
            engine,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            next_ticket: AtomicU64::new(1),
            next_group: AtomicU64::new(1),
            persist: config.persist,
            jobs_done: AtomicU64::new(0),
            snapshot_gate: Mutex::new(()),
            snapshot_load_failures: AtomicU64::new(load_failures),
            snapshot_generation: AtomicU64::new(loaded_generation),
            lease: Mutex::new(initial_lease),
            lease_ttl,
            open_connections: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        let coord_stop = Arc::new(AtomicBool::new(false));
        let coordinator = lease_ttl.map(|_| {
            let inner = inner.clone();
            let stop = coord_stop.clone();
            std::thread::spawn(move || coordinator_loop(inner, stop))
        });
        Service {
            inner,
            workers: Mutex::new(workers),
            worker_count,
            coordinator: Mutex::new(coordinator),
            coord_stop,
        }
    }

    /// Convenience constructor building the engine too.
    pub fn with_engine_config(engine: EngineConfig, config: ServiceConfig) -> Service {
        Service::new(Arc::new(Engine::new(engine)), config)
    }

    /// The shared engine (for direct solves or stats).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Worker threads solving jobs.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Configured bound of the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth
    }

    /// Submits a job, delivering its [`OutEvent::Response`] to `sink` on
    /// completion. Non-blocking: a full queue answers
    /// [`SubmitError::Busy`] immediately — the transport turns that into
    /// a `busy` response (v2 backpressure).
    pub fn submit_to(
        &self,
        req: JobRequest,
        sink: Sender<OutEvent>,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(req, Arc::new(sink), 0, false)
    }

    /// Like [`Service::submit_to`] but **blocks** for queue space instead
    /// of rejecting — natural backpressure for transports whose input can
    /// simply stall (the v1 stdin loop).
    pub fn submit_to_blocking(
        &self,
        req: JobRequest,
        sink: Sender<OutEvent>,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(req, Arc::new(sink), 0, true)
    }

    /// A fresh cancellation group for [`Service::submit_grouped`] —
    /// typically one per connection.
    pub fn new_group(&self) -> GroupId {
        self.inner.next_group.fetch_add(1, Ordering::Relaxed)
    }

    /// [`Service::submit_to`]/[`Service::submit_to_blocking`] with a
    /// cancellation-group tag, so the whole group's still-queued jobs can
    /// be abandoned at once when the submitter's peer disappears.
    pub fn submit_grouped(
        &self,
        req: JobRequest,
        sink: Sender<OutEvent>,
        group: GroupId,
        blocking: bool,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(req, Arc::new(sink), group, blocking)
    }

    /// [`Service::submit_grouped`] for sinks that are not channels — the
    /// event-driven acceptor's completion queue implements
    /// [`ResponseSink`] directly, so a worker finishing a job wakes the
    /// readiness loop instead of a per-connection writer thread.
    pub fn submit_sink(
        &self,
        req: JobRequest,
        sink: Arc<dyn ResponseSink>,
        group: GroupId,
        blocking: bool,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(req, sink, group, blocking)
    }

    /// Non-blocking [`Service::submit_sink`] that hands the request back
    /// on rejection — the event loop parks a rejected v1 job for retry
    /// instead of cloning every request on the off chance of a full
    /// queue. The large `Err` variant is the point: rejection must not
    /// allocate, so the request rides back by value.
    #[allow(clippy::result_large_err)]
    pub(crate) fn submit_sink_reclaim(
        &self,
        req: JobRequest,
        sink: Arc<dyn ResponseSink>,
        group: GroupId,
    ) -> Result<Ticket, (SubmitError, JobRequest)> {
        self.enqueue_inner(req, sink, group, false)
    }

    /// Submits a job and returns a [`JobHandle`] to wait on — the
    /// library-consumer entry point.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let id = req.id.clone();
        let ticket = self.submit_to(req, tx)?;
        Ok(JobHandle { ticket, id, rx })
    }

    fn enqueue(
        &self,
        req: JobRequest,
        sink: Arc<dyn ResponseSink>,
        group: GroupId,
        blocking: bool,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue_inner(req, sink, group, blocking)
            .map_err(|(e, _req)| e)
    }

    #[allow(clippy::result_large_err)] // rejection returns the request by value, no alloc
    fn enqueue_inner(
        &self,
        req: JobRequest,
        sink: Arc<dyn ResponseSink>,
        group: GroupId,
        blocking: bool,
    ) -> Result<Ticket, (SubmitError, JobRequest)> {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("service queue poisoned");
        while state.by_order.len() >= inner.queue_depth {
            if state.stop {
                return Err((SubmitError::ShuttingDown, req));
            }
            if !blocking {
                obs::registry().counter(obs::names::ERR_BUSY).inc();
                return Err((SubmitError::Busy, req));
            }
            state = inner.space.wait(state).expect("service queue poisoned");
        }
        if state.stop {
            return Err((SubmitError::ShuttingDown, req));
        }
        let ticket = inner.next_ticket.fetch_add(1, Ordering::Relaxed);
        state.seq += 1;
        // Negated priority: BTreeMap iteration order pops the minimum, so
        // higher priorities sort first and ties stay FIFO by sequence.
        // Saturating: -i64::MIN would overflow; saturating to MAX keeps the
        // lowest expressible priority sorting last instead of panicking.
        let key = (req.priority.saturating_neg(), state.seq);
        state.by_ticket.insert(ticket, key);
        state.by_order.insert(
            key,
            Queued {
                ticket,
                group,
                req,
                sink,
                submitted: Instant::now(),
                trace: Arc::new(JobTrace::new()),
            },
        );
        drop(state);
        inner.work.notify_one();
        Ok(ticket)
    }

    /// Cancels a **still-queued** job: removes it and delivers its
    /// [`ErrorKind::Canceled`] response through its sink. Returns `false`
    /// when the ticket is unknown, already running, or already answered —
    /// a started job is never interrupted, so every accepted job yields
    /// exactly one response.
    pub fn cancel(&self, ticket: Ticket) -> bool {
        let job = {
            let mut state = self.inner.state.lock().expect("service queue poisoned");
            let Some(key) = state.by_ticket.remove(&ticket) else {
                return false;
            };
            state.by_order.remove(&key).expect("ticket maps into queue")
        };
        self.inner.space.notify_one();
        obs::registry().counter(obs::names::ERR_CANCELED).inc();
        let response = JobResponse::failure(
            job.req.id.clone(),
            JobError::new(ErrorKind::Canceled, "canceled while queued"),
        );
        let _ = job.sink.deliver(OutEvent::Response(response));
        true
    }

    /// Cancels every **still-queued** job of `group` (running jobs finish
    /// normally), delivering each job's [`ErrorKind::Canceled`] response
    /// through its sink. Returns the number of jobs removed. Transports
    /// call this when their peer hangs up mid-stream, so abandoned work
    /// stops occupying the shared worker pool. Group `0` (ungrouped)
    /// never matches.
    pub fn cancel_group(&self, group: GroupId) -> usize {
        if group == 0 {
            return 0;
        }
        let victims: Vec<Queued> = {
            let mut state = self.inner.state.lock().expect("service queue poisoned");
            let keys: Vec<OrderKey> = state
                .by_order
                .iter()
                .filter(|(_, job)| job.group == group)
                .map(|(key, _)| *key)
                .collect();
            keys.into_iter()
                .map(|key| {
                    let job = state.by_order.remove(&key).expect("key just collected");
                    state.by_ticket.remove(&job.ticket);
                    job
                })
                .collect()
        };
        self.inner.space.notify_all();
        let count = victims.len();
        obs::registry()
            .counter(obs::names::ERR_CANCELED)
            .add(count as u64);
        for job in victims {
            let response = JobResponse::failure(
                job.req.id.clone(),
                JobError::new(ErrorKind::Canceled, "canceled: submitter hung up"),
            );
            let _ = job.sink.deliver(OutEvent::Response(response));
        }
        count
    }

    /// Current observability counters (the v2 `stats` frame payload).
    pub fn stats(&self) -> ServiceStats {
        let queue_len = self
            .inner
            .state
            .lock()
            .expect("service queue poisoned")
            .by_order
            .len();
        ServiceStats {
            cache: self.inner.engine.cache_stats(),
            warm_sessions: self.inner.engine.warm_sessions(),
            queue_depth: self.inner.queue_depth,
            queue_len,
            persisted_sessions: self.inner.engine.restored_sessions(),
            budget_skips: self.inner.engine.budget_skips(),
            hot_heuristic_keys: self.inner.engine.hot_heuristic_keys(8),
            certified_jobs: obs::registry().counter(obs::names::CERTIFIED_JOBS).get(),
            schedule_jobs: obs::registry().counter(obs::names::SCHEDULE_JOBS).get(),
            schedule_layers: obs::registry().counter(obs::names::SCHEDULE_LAYERS).get(),
            snapshot_load_failures: self.inner.snapshot_load_failures.load(Ordering::Relaxed),
            open_connections: self.inner.open_connections.load(Ordering::Relaxed),
            snapshot_generation: self.inner.snapshot_generation.load(Ordering::Relaxed),
        }
    }

    /// Records one transport connection opening (the socket layers call
    /// this; the count surfaces in [`ServiceStats::open_connections`]).
    pub fn connection_opened(&self) {
        self.inner.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transport connection closing.
    pub fn connection_closed(&self) {
        self.inner.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Transport connections currently open against this process.
    pub fn open_connections(&self) -> u64 {
        self.inner.open_connections.load(Ordering::Relaxed)
    }

    /// Generation of the newest snapshot this process wrote or adopted
    /// (`0` = none yet).
    pub fn snapshot_generation(&self) -> u64 {
        self.inner.snapshot_generation.load(Ordering::Relaxed)
    }

    /// Whether this process is currently the state dir's snapshot writer.
    /// Trivially true without a [`PersistConfig::lease`]; under one, true
    /// only while the lease is held.
    pub fn is_snapshot_writer(&self) -> bool {
        self.inner.is_writer()
    }

    /// Writes a warm-state snapshot immediately (no-op without a
    /// [`PersistConfig`]). Returns what was written, or `None` when
    /// persistence is off or the write failed (reported on stderr).
    pub fn snapshot_now(&self) -> Option<SnapshotStats> {
        self.inner.flush_snapshot(false)
    }

    /// What this service advertises in the v2 handshake ack.
    pub fn capabilities(&self) -> Capabilities {
        let cfg = self.inner.engine.config();
        let mut strategies = vec!["trivial".to_string(), "packing".to_string()];
        if cfg.portfolio.exact_cover {
            strategies.push("packing-dlx".to_string());
        }
        if cfg.portfolio.sap {
            strategies.push("sap".to_string());
        }
        Capabilities {
            shards: cfg.cache_shards as u64,
            strategies,
            canon_budget: cfg.canon.max_branches as u64,
            queue_depth: self.inner.queue_depth as u64,
            workers: self.worker_count as u64,
            timing: true,
            certificate: true,
            schedule: true,
        }
    }

    /// Stops accepting work, drains the queue (every accepted job is
    /// answered), joins the workers and — when persistence is configured —
    /// writes a final snapshot of the drained state. Called automatically
    /// on drop; idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("service queue poisoned");
            state.stop = true;
        }
        self.inner.work.notify_all();
        self.inner.space.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        let drained_any = !workers.is_empty();
        for handle in workers {
            let _ = handle.join();
        }
        // Snapshot exactly once (the first shutdown call joins the
        // workers; repeats see an empty list). The coordinator stays alive
        // through the drain — a long drain must not let the lease lapse —
        // and stops only after the final flush, which releases the lease
        // so the next contender takes over without waiting out the TTL.
        if drained_any {
            self.inner.flush_snapshot(false);
        }
        self.coord_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self
            .coordinator
            .lock()
            .expect("coordinator slot poisoned")
            .take()
        {
            let _ = handle.join();
        }
        if drained_any {
            if let Some(lease) = self.inner.lease.lock().expect("lease slot poisoned").take() {
                lease.release();
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.worker_count)
            .field("queue_depth", &self.inner.queue_depth)
            .finish()
    }
}
