//! The socket front-end: a Unix-domain or TCP listener feeding many
//! concurrent client connections into one shared [`Service`].
//!
//! Each accepted connection runs [`serve_connection`] on its own thread,
//! so N clients multiplex onto the same engine — one canonical-form
//! cache, one warm-session store, one adaptive scheduler. Shutting the
//! listener down stops accepting and then joins the live connections,
//! each of which drains its in-flight jobs and emits its summary frame
//! before closing (the graceful-shutdown guarantee).

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::connection::serve_connection;
use crate::service::Service;

/// Where a socket server binds (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl BindAddr {
    /// Classifies an address string: an explicit `unix:`/`tcp:` prefix
    /// wins; otherwise anything containing `/` (or ending in `.sock`) is
    /// a filesystem path and the rest is TCP `host:port`.
    pub fn parse(s: &str) -> BindAddr {
        if let Some(path) = s.strip_prefix("unix:") {
            BindAddr::Unix(PathBuf::from(path))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            BindAddr::Tcp(addr.to_string())
        } else if s.contains('/') || s.ends_with(".sock") {
            BindAddr::Unix(PathBuf::from(s))
        } else {
            BindAddr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            BindAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A connected byte stream of either family.
#[derive(Debug)]
pub enum SocketStream {
    /// A Unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl SocketStream {
    /// An independently-owned second handle to the same stream.
    pub fn try_clone(&self) -> io::Result<SocketStream> {
        Ok(match self {
            SocketStream::Unix(s) => SocketStream::Unix(s.try_clone()?),
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
        })
    }

    /// Half-closes the write side, signalling end-of-jobs to the server
    /// while keeping the read side open for the remaining responses.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Half-closes the read side: a peer blocked reading this stream sees
    /// end-of-input. The server's shutdown path uses this to turn idle
    /// connections into the ordinary EOF drain (responses + summary still
    /// go out on the intact write side).
    pub fn shutdown_read(&self) -> io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.shutdown(std::net::Shutdown::Read),
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
        }
    }

    /// Bounds how long a single `write` may block on a peer that stopped
    /// reading (kernel send buffer full). `None` = block forever.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.set_write_timeout(timeout),
            SocketStream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Switches the stream between blocking and nonblocking mode (the
    /// event-driven acceptor runs every connection nonblocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.set_nonblocking(nonblocking),
            SocketStream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Disables Nagle's algorithm on TCP streams (no-op for Unix
    /// sockets). The protocol is line-delimited request/response, so
    /// coalescing small writes only adds delayed-ACK stalls — without
    /// this, sequential round-trips over loopback plateau near the
    /// 40 ms delayed-ACK timer instead of the microseconds they cost.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            SocketStream::Unix(_) => Ok(()),
            SocketStream::Tcp(s) => s.set_nodelay(true),
        }
    }

    /// The underlying file descriptor, for readiness registration.
    pub fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd as _;
        match self {
            SocketStream::Unix(s) => s.as_raw_fd(),
            SocketStream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Unix(s) => s.read(buf),
            SocketStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Unix(s) => s.write(buf),
            SocketStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.flush(),
            SocketStream::Tcp(s) => s.flush(),
        }
    }
}

/// Connects to a listening [`SocketServer`] (client side).
pub fn connect(addr: &BindAddr) -> io::Result<SocketStream> {
    let stream = match addr {
        BindAddr::Unix(path) => SocketStream::Unix(UnixStream::connect(path)?),
        BindAddr::Tcp(addr) => SocketStream::Tcp(TcpStream::connect(addr.as_str())?),
    };
    stream.set_nodelay()?;
    Ok(stream)
}

pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn accept(&self) -> io::Result<SocketStream> {
        let stream = match self {
            Listener::Unix(l) => SocketStream::Unix(l.accept()?.0),
            Listener::Tcp(l) => SocketStream::Tcp(l.accept()?.0),
        };
        stream.set_nodelay()?;
        Ok(stream)
    }

    /// Nonblocking accept for the event-driven front-end.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd as _;
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

/// Binds `addr`, replacing a stale Unix socket file from a crashed run
/// (but refusing to clobber a non-socket at a typo'd path). Shared by the
/// thread-per-connection and event-driven front-ends.
pub(crate) fn bind_listener(addr: &BindAddr) -> io::Result<(Listener, BindAddr, Option<PathBuf>)> {
    Ok(match addr {
        BindAddr::Unix(path) => {
            if let Ok(meta) = std::fs::symlink_metadata(path) {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    // Refuse to clobber a regular file/dir at a typo'd path.
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
                if UnixStream::connect(path).is_err() {
                    // Nothing is listening: a stale socket from a crashed run.
                    std::fs::remove_file(path)?;
                }
            }
            let listener = UnixListener::bind(path)?;
            (
                Listener::Unix(listener),
                BindAddr::Unix(path.clone()),
                Some(path.clone()),
            )
        }
        BindAddr::Tcp(spec) => {
            let listener = TcpListener::bind(spec.as_str())?;
            let local = BindAddr::Tcp(listener.local_addr()?.to_string());
            (Listener::Tcp(listener), local, None)
        }
    })
}

/// Per-write stall bound on accepted connections: a peer that stops
/// reading trips this, turning its connection into the write-error drain
/// (queued jobs canceled, output discarded) instead of blocking the
/// server's shutdown join forever.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A running socket front-end; see [`serve_socket`].
pub struct SocketServer {
    local: BindAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Option<io::Error>>>,
    unix_path: Option<PathBuf>,
}

impl SocketServer {
    /// Assembles a server handle around an already-running acceptor — the
    /// event-driven front-end reuses this shutdown/join machinery (its
    /// readiness loop is also woken by the shutdown self-connection).
    pub(crate) fn from_parts(
        local: BindAddr,
        stop: Arc<AtomicBool>,
        acceptor: JoinHandle<Option<io::Error>>,
        unix_path: Option<PathBuf>,
    ) -> SocketServer {
        SocketServer {
            local,
            stop,
            acceptor: Some(acceptor),
            unix_path,
        }
    }

    /// The actually-bound address — for `tcp:host:0` this carries the
    /// kernel-assigned port, so tests and logs can connect to it.
    pub fn local_addr(&self) -> &BindAddr {
        &self.local
    }

    /// Joins the acceptor (if still running) and returns its fatal accept
    /// error, if it died of one.
    fn reap(&mut self) -> Option<io::Error> {
        self.acceptor.take().and_then(|h| h.join().ok().flatten())
    }

    /// Stops accepting new connections, then joins the acceptor and every
    /// live connection thread. Live connections have their read side
    /// half-closed — an idle peer cannot stall the shutdown — after which
    /// each drains its in-flight jobs and writes its summary frame before
    /// closing. A peer that stops *reading* is bounded by the internal
    /// write timeout per write instead of blocking the join forever.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection; if the
        // listener is already broken the acceptor is exiting anyway.
        let _ = connect(&self.local);
        let _ = self.reap();
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until the acceptor exits — after
    /// [`SocketServer::shutdown`] from another thread, or on a fatal
    /// accept error, which is returned so the long-running
    /// `rect-addr serve --listen` path can exit non-zero instead of
    /// silently reporting a clean stop.
    pub fn join(&mut self) -> io::Result<()> {
        match self.reap() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SocketServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketServer")
            .field("local", &self.local)
            .finish()
    }
}

/// Binds `addr` and serves connections against `service` until
/// [`SocketServer::shutdown`]. A stale Unix socket file from a previous
/// run is replaced. Returns immediately; accepting runs on a background
/// thread, one more thread per live connection.
pub fn serve_socket(service: Arc<Service>, addr: &BindAddr) -> io::Result<SocketServer> {
    let (listener, local, unix_path) = bind_listener(addr)?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = stop.clone();
        std::thread::spawn(move || -> Option<io::Error> {
            // Blocking accept — no polling. Shutdown wakes it with a
            // throwaway self-connection. Connection threads are joined
            // before the acceptor exits, so shutdown implies every
            // connection drained and closed. Each entry keeps a control
            // clone of the stream: on shutdown the read side is
            // half-closed, turning a connection blocked on an idle peer
            // into the ordinary EOF drain instead of a hang.
            let mut connections: Vec<(JoinHandle<()>, SocketStream)> = Vec::new();
            let mut consecutive_errors = 0u32;
            let fatal = loop {
                if stop.load(Ordering::Relaxed) {
                    break None;
                }
                match listener.accept() {
                    Ok(stream) => {
                        consecutive_errors = 0;
                        if stop.load(Ordering::Relaxed) {
                            break None; // the shutdown wake-up connection
                        }
                        // A peer that stops *reading* would otherwise block
                        // the connection's writer forever (and with it the
                        // acceptor's final join): bound each write so such
                        // a connection fails over to the write-error drain.
                        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                        let Ok(control) = stream.try_clone() else {
                            continue;
                        };
                        let service = service.clone();
                        let handle = std::thread::spawn(move || {
                            service.connection_opened();
                            if let Ok(mut writer) = stream.try_clone() {
                                let reader = BufReader::new(stream);
                                // A peer that hangs up mid-stream surfaces as
                                // a write error; the connection already
                                // drained.
                                let _ = serve_connection(&service, reader, &mut writer);
                                // The acceptor still holds a control clone of
                                // this socket, so dropping our handles alone
                                // would not EOF the peer: half-close
                                // explicitly to end the client's read loop.
                                let _ = writer.shutdown_write();
                            }
                            service.connection_closed();
                        });
                        connections.push((handle, control));
                        // Reap finished connections so a long-lived server
                        // does not accumulate dead handles.
                        connections.retain(|(h, _)| !h.is_finished());
                    }
                    Err(e) => {
                        // Transient failures (EMFILE under load, EINTR…)
                        // back off and keep serving; a listener that only
                        // errors for ~5s straight is dead — report it.
                        consecutive_errors += 1;
                        if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                            eprintln!("rect-addr: accept failing persistently: {e}");
                            break Some(e);
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            };
            for (handle, control) in connections {
                // EOF the reader (write side stays open): the connection
                // drains in-flight jobs and emits its summary, then exits.
                let _ = control.shutdown_read();
                let _ = handle.join();
            }
            fatal
        })
    };

    Ok(SocketServer {
        local,
        stop,
        acceptor: Some(acceptor),
        unix_path,
    })
}

/// Consecutive `accept` failures (at 100 ms back-off each) before the
/// acceptor gives up and reports the error through
/// [`SocketServer::join`].
const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 50;
