//! A line-oriented protocol client over the socket front-end — used by
//! the CLI's `client` subcommand, the benchmark's socket phase, the CI
//! smoke test and the integration tests.

use std::io::{self, BufRead, BufReader, Write};

use proto::{
    read_line_bounded, ClientFrame, HelloAck, JobRequest, LineRead, MAX_LINE_BYTES,
    MAX_RESPONSE_LINE_BYTES, PROTOCOL_VERSION,
};

use crate::socket::{connect, BindAddr, SocketStream};

/// One client connection speaking JSON lines to a [`SocketServer`]
/// (v1 by default; [`LineClient::handshake`] upgrades to v2).
///
/// [`SocketServer`]: crate::SocketServer
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<SocketStream>,
    writer: SocketStream,
}

impl LineClient {
    /// Connects to a listening server.
    pub fn connect(addr: &BindAddr) -> io::Result<LineClient> {
        let stream = connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(LineClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Performs the v2 handshake and returns the server's ack.
    pub fn handshake(&mut self) -> io::Result<HelloAck> {
        self.handshake_opts(false, false)
    }

    /// [`LineClient::handshake`] with the explicit handshake opt-ins:
    /// `timing: true` makes every v2 response carry its stage trace, and
    /// `certificate: true` lets responses to `certify` jobs carry their
    /// DRAT certificate object.
    pub fn handshake_opts(&mut self, timing: bool, certificate: bool) -> io::Result<HelloAck> {
        self.send_line(
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
                timing,
                certificate,
            }
            .to_json_line(),
        )?;
        let line = self
            .recv_line()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello ack"))?;
        HelloAck::parse_line(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one frame line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Sends one job request.
    pub fn send_job(&mut self, req: &JobRequest) -> io::Result<()> {
        self.send_line(&req.to_json_line())
    }

    /// Receives one server line; `None` at end-of-stream. Bounded: a
    /// server line longer than [`MAX_RESPONSE_LINE_BYTES`] (a loose cap —
    /// response partitions legitimately outgrow their job lines) errors
    /// instead of growing client memory without limit.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        match read_line_bounded(&mut self.reader, MAX_RESPONSE_LINE_BYTES)? {
            LineRead::Eof => Ok(None),
            LineRead::Line(line) => Ok(Some(line)),
            LineRead::TooLong => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server line exceeds {MAX_RESPONSE_LINE_BYTES} bytes"),
            )),
        }
    }

    /// Half-closes the write side — "no more jobs" — after which the
    /// server drains in-flight work, emits its summary frame and closes.
    pub fn finish_jobs(&mut self) -> io::Result<()> {
        self.writer.shutdown_write()
    }
}

/// Pumps a whole job stream through a server: forwards every line of
/// `input`, half-closes, and streams every response line (summary frame
/// included) to `output` with a flush per line — responses arrive while
/// jobs are still being sent, so a stream larger than the socket buffers
/// cannot deadlock. Returns the number of server lines received.
pub fn pump<R: BufRead + Send, W: Write>(
    addr: &BindAddr,
    input: R,
    output: &mut W,
) -> io::Result<usize> {
    let stream = connect(addr)?;
    let mut sender = stream.try_clone()?;
    let mut responses = BufReader::new(stream);
    std::thread::scope(|scope| -> io::Result<usize> {
        let send = scope.spawn(move || -> io::Result<()> {
            // Bounded like the server side: the server would reject an
            // oversized line anyway, so fail it here without first
            // buffering it whole.
            let mut input = input;
            loop {
                match read_line_bounded(&mut input, MAX_LINE_BYTES)? {
                    LineRead::Eof => break,
                    LineRead::Line(line) => {
                        writeln!(sender, "{line}")?;
                        sender.flush()?;
                    }
                    LineRead::TooLong => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("input line exceeds {MAX_LINE_BYTES} bytes"),
                        ))
                    }
                }
            }
            sender.shutdown_write()
        });
        let mut count = 0usize;
        loop {
            // Looser cap than the send side: response partitions
            // legitimately outgrow their job lines.
            let line = match read_line_bounded(&mut responses, MAX_RESPONSE_LINE_BYTES)? {
                LineRead::Eof => break,
                LineRead::Line(line) => line,
                LineRead::TooLong => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server line exceeds {MAX_RESPONSE_LINE_BYTES} bytes"),
                    ))
                }
            };
            writeln!(output, "{line}")?;
            output.flush()?;
            count += 1;
        }
        send.join().expect("sender thread panicked")?;
        Ok(count)
    })
}
