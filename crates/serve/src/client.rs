//! A line-oriented protocol client over the socket front-end — used by
//! the CLI's `client` subcommand, the benchmark's socket phase, the CI
//! smoke test and the integration tests.

use std::io::{self, BufRead, BufReader, Write};

use proto::{ClientFrame, HelloAck, JobRequest, PROTOCOL_VERSION};

use crate::socket::{connect, BindAddr, SocketStream};

/// One client connection speaking JSON lines to a [`SocketServer`]
/// (v1 by default; [`LineClient::handshake`] upgrades to v2).
///
/// [`SocketServer`]: crate::SocketServer
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<SocketStream>,
    writer: SocketStream,
}

impl LineClient {
    /// Connects to a listening server.
    pub fn connect(addr: &BindAddr) -> io::Result<LineClient> {
        let stream = connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(LineClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Performs the v2 handshake and returns the server's ack.
    pub fn handshake(&mut self) -> io::Result<HelloAck> {
        self.send_line(
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            }
            .to_json_line(),
        )?;
        let line = self
            .recv_line()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello ack"))?;
        HelloAck::parse_line(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one frame line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Sends one job request.
    pub fn send_job(&mut self, req: &JobRequest) -> io::Result<()> {
        self.send_line(&req.to_json_line())
    }

    /// Receives one server line; `None` at end-of-stream.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Half-closes the write side — "no more jobs" — after which the
    /// server drains in-flight work, emits its summary frame and closes.
    pub fn finish_jobs(&mut self) -> io::Result<()> {
        self.writer.shutdown_write()
    }
}

/// Pumps a whole job stream through a server: forwards every line of
/// `input`, half-closes, and streams every response line (summary frame
/// included) to `output` with a flush per line — responses arrive while
/// jobs are still being sent, so a stream larger than the socket buffers
/// cannot deadlock. Returns the number of server lines received.
pub fn pump<R: BufRead + Send, W: Write>(
    addr: &BindAddr,
    input: R,
    output: &mut W,
) -> io::Result<usize> {
    let stream = connect(addr)?;
    let mut sender = stream.try_clone()?;
    let mut responses = BufReader::new(stream);
    std::thread::scope(|scope| -> io::Result<usize> {
        let send = scope.spawn(move || -> io::Result<()> {
            for line in input.lines() {
                writeln!(sender, "{}", line?)?;
                sender.flush()?;
            }
            sender.shutdown_write()
        });
        let mut count = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if responses.read_line(&mut line)? == 0 {
                break;
            }
            writeln!(output, "{}", line.trim_end_matches(['\n', '\r']))?;
            output.flush()?;
            count += 1;
        }
        send.join().expect("sender thread panicked")?;
        Ok(count)
    })
}
