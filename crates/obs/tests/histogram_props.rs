//! Property tests for the log-linear histogram core: bucket placement,
//! percentile accuracy against an exact oracle, and monotonicity.

use proptest::collection::vec;
use proptest::prelude::*;

use rect_addr_obs::{bucket_of, Histogram};

proptest! {
    /// Every value lands in a bucket whose [floor, floor+width) range
    /// contains it, and the relative quantization error is bounded by
    /// one sub-bucket (width <= floor/16 for values >= 16).
    #[test]
    fn values_land_in_the_right_bucket(shift in 0u32..64, raw in 0u64..u64::MAX) {
        let value = raw >> shift;
        let (floor, width) = bucket_of(value);
        prop_assert!(floor <= value, "floor {floor} > value {value}");
        prop_assert!(value - floor < width, "value {value} outside bucket [{floor}, {floor}+{width})");
        if value >= 16 {
            prop_assert!(width <= floor / 16 + 1, "width {width} too wide at floor {floor}");
        } else {
            prop_assert_eq!(width, 1);
        }
    }

    /// Reported percentiles are monotone in the percentile, bounded by
    /// the max, and each one is within one bucket width of the exact
    /// order statistic of the recorded values.
    #[test]
    fn percentiles_match_exact_oracle_within_a_bucket(
        values in vec(0u64..2_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, *sorted.last().unwrap());
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max,
            "not monotone: p50={} p90={} p99={} max={}", s.p50, s.p90, s.p99, s.max);
        for (q, reported) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (floor, width) = bucket_of(exact);
            prop_assert_eq!(reported, floor,
                "q={}: reported {} is not the bucket floor {} of exact {}", q, reported, floor, exact);
            prop_assert!(exact - reported < width,
                "q={}: exact {} more than one bucket width {} above reported {}", q, exact, width, reported);
        }
    }

    /// The sum statistic is exact (no quantization).
    #[test]
    fn sum_is_exact(values in vec(0u64..1 << 40, 0..100)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.summary().sum, values.iter().sum::<u64>());
    }
}
