//! Named metric registry with a process-global instance and a JSON
//! export path (atomic tmp+rename, same discipline as the service's
//! snapshot persistence).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::histogram::{Histogram, HistogramSummary};

/// Well-known metric names recorded by the serving stack. Layers
/// record into these; exporters (stats frame, `--metrics-dump`) read
/// every registered name back out, known or not.
pub mod names {
    /// Time a job spent in the service queue before a worker picked it
    /// up (µs).
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";
    /// Canonical-form computation time (µs).
    pub const CANON_US: &str = "canon_us";
    /// Single-flight cache admission time, including any wait on an
    /// in-flight duplicate (µs).
    pub const CACHE_LOOKUP_US: &str = "cache_lookup_us";
    /// Time blocked on another worker's in-flight solve of the same
    /// canonical key (µs).
    pub const FLIGHT_WAIT_US: &str = "flight_wait_us";
    /// Wall time of one strategy race (µs).
    pub const RACE_US: &str = "race_us";
    /// End-to-end job latency including queue wait (µs).
    pub const JOB_US: &str = "job_us";
    /// SAT conflicts spent per SAP solve (count, not µs).
    pub const SAT_CONFLICTS: &str = "sat_conflicts";
    /// Snapshot flush duration (µs).
    pub const SNAPSHOT_FLUSH_US: &str = "snapshot_flush_us";
    /// Per-strategy race duration histograms are named with this
    /// prefix followed by the strategy name (for example
    /// `strategy_us_sap`).
    pub const STRATEGY_US_PREFIX: &str = "strategy_us_";
    /// Data-plane kernel/hot-loop timing histograms share this prefix
    /// (for example `kernel_us_canon_refine`); the profiling bench also
    /// records per-kernel micro timings under it.
    pub const KERNEL_US_PREFIX: &str = "kernel_us_";
    /// Signature-refinement time per canonization (µs).
    pub const KERNEL_US_CANON_REFINE: &str = "kernel_us_canon_refine";
    /// Individualization-search time per canonization, including leaf
    /// rendering and the heuristic fallback (µs).
    pub const KERNEL_US_CANON_SEARCH: &str = "kernel_us_canon_search";
    /// One row-packing trial: residue decomposition over all rows (µs).
    pub const KERNEL_US_PACK_TRIAL: &str = "kernel_us_pack_trial";
    /// Pair-constraint generation inside the SAT encoder (µs).
    pub const KERNEL_US_ENCODE_PAIRS: &str = "kernel_us_encode_pairs";
    /// DLX problem construction per exact-cover row decomposition (µs).
    pub const KERNEL_US_DLX_SETUP: &str = "kernel_us_dlx_setup";

    /// Jobs fully completed by the service (counter).
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Jobs whose response carried a self-contained DRAT certificate
    /// (counter) — the throughput of the verified-answer pipeline.
    pub const CERTIFIED_JOBS: &str = "certified_jobs";
    /// Request lines that failed to parse (counter).
    pub const ERR_PARSE: &str = "errors_parse";
    /// Submissions rejected with backpressure (counter).
    pub const ERR_BUSY: &str = "errors_busy";
    /// Jobs expired in-queue past their deadline (counter).
    pub const ERR_DEADLINE: &str = "errors_deadline";
    /// Jobs canceled before completion (counter).
    pub const ERR_CANCELED: &str = "errors_canceled";
    /// Startup snapshot loads that failed for any reason other than
    /// the file not existing (counter).
    pub const SNAPSHOT_LOAD_FAILURES: &str = "snapshot_load_failures";
    /// Protocol-v2 `schedule` frames accepted by the service (counter).
    pub const SCHEDULE_JOBS: &str = "schedule_jobs";
    /// Layers answered on behalf of `schedule` frames — solved, failed,
    /// deadline-expired or canceled alike (counter).
    pub const SCHEDULE_LAYERS: &str = "schedule_layers";
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named collection of [`Histogram`]s and [`Counter`]s.
///
/// Lookup takes a read lock only on the fast path; metrics are created
/// on first use and live for the registry's lifetime.
#[derive(Default)]
pub struct Registry {
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
}

impl Registry {
    /// Creates an empty registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The histogram registered under `name`, created empty on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The counter registered under `name`, created zeroed on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Digests of every registered histogram, sorted by name.
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect()
    }

    /// Values of every registered counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// One-line JSON snapshot of every counter and histogram digest.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counter_values().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(name), value);
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, s)) in self.histogram_summaries().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                json_string(name),
                s.count,
                s.sum,
                s.p50,
                s.p90,
                s.p99,
                s.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Writes [`Registry::snapshot_json`] to `path` atomically: the
    /// snapshot lands in a `.tmp` sibling first and is renamed over the
    /// target, so a scraper never observes a torn file.
    pub fn dump_to_path(&self, path: &Path) -> io::Result<()> {
        let mut contents = self.snapshot_json();
        contents.push('\n');
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path)
    }
}

/// The process-global registry every layer records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Minimal JSON string encoder for metric names (quotes, backslashes
/// and control characters escaped).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.histogram("x").record(5);
        reg.histogram("x").record(7);
        assert_eq!(reg.histogram("x").count(), 2);
        assert_eq!(reg.histogram("y").count(), 0);
    }

    #[test]
    fn snapshot_json_lists_counters_and_histograms() {
        let reg = Registry::new();
        reg.counter(names::JOBS_COMPLETED).add(3);
        reg.histogram(names::JOB_US).record(1000);
        let json = reg.snapshot_json();
        assert!(json.contains("\"jobs_completed\": 3"), "{json}");
        assert!(json.contains("\"job_us\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"p99\": "), "{json}");
    }

    #[test]
    fn dump_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("obs-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let reg = Registry::new();
        reg.counter(names::JOBS_COMPLETED).inc();
        reg.dump_to_path(&path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"jobs_completed\": 1"), "{contents}");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
    }
}
