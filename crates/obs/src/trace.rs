//! Per-job stage traces: where one job's wall time went.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A per-job breakdown of where time went, filled in as the job flows
/// from the service queue through the engine.
///
/// Stage cells are atomic so a trace can be created at submission on
/// one thread and filled in by a worker on another without `&mut`
/// plumbing through the engine call chain. Each stage is recorded in
/// microseconds; stages are disjoint except that `cache_us` includes
/// any single-flight wait.
#[derive(Debug)]
pub struct JobTrace {
    created: Instant,
    queue_us: AtomicU64,
    canon_us: AtomicU64,
    cache_us: AtomicU64,
    race_us: AtomicU64,
    total_us: AtomicU64,
}

impl Default for JobTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTrace {
    /// Starts a trace; the creation instant anchors the end-to-end
    /// total.
    pub fn new() -> Self {
        JobTrace {
            created: Instant::now(),
            queue_us: AtomicU64::new(0),
            canon_us: AtomicU64::new(0),
            cache_us: AtomicU64::new(0),
            race_us: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    /// Records time spent queued before a worker picked the job up.
    pub fn set_queue_us(&self, us: u64) {
        self.queue_us.store(us, Ordering::Relaxed);
    }

    /// Records canonical-form computation time.
    pub fn set_canon_us(&self, us: u64) {
        self.canon_us.store(us, Ordering::Relaxed);
    }

    /// Records cache admission time (lookup plus any in-flight wait).
    pub fn set_cache_us(&self, us: u64) {
        self.cache_us.store(us, Ordering::Relaxed);
    }

    /// Adds strategy-race wall time (a job may race more than once
    /// when an unproved cache hit is re-raced).
    pub fn add_race_us(&self, us: u64) {
        self.race_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Stamps the end-to-end total as the elapsed time since the trace
    /// was created.
    pub fn finish(&self) {
        let us = self.created.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.total_us.store(us, Ordering::Relaxed);
    }

    /// Queue wait in microseconds.
    pub fn queue_us(&self) -> u64 {
        self.queue_us.load(Ordering::Relaxed)
    }

    /// Canonical-form time in microseconds.
    pub fn canon_us(&self) -> u64 {
        self.canon_us.load(Ordering::Relaxed)
    }

    /// Cache admission time in microseconds.
    pub fn cache_us(&self) -> u64 {
        self.cache_us.load(Ordering::Relaxed)
    }

    /// Strategy-race time in microseconds.
    pub fn race_us(&self) -> u64 {
        self.race_us.load(Ordering::Relaxed)
    }

    /// End-to-end total in microseconds (0 until [`JobTrace::finish`]).
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_independent_cells() {
        let t = JobTrace::new();
        t.set_queue_us(10);
        t.set_canon_us(20);
        t.set_cache_us(30);
        t.add_race_us(40);
        t.add_race_us(5);
        assert_eq!(t.queue_us(), 10);
        assert_eq!(t.canon_us(), 20);
        assert_eq!(t.cache_us(), 30);
        assert_eq!(t.race_us(), 45);
        assert_eq!(t.total_us(), 0);
        t.finish();
        // The total covers the whole lifetime, so it can only move
        // forward from here.
        let total = t.total_us();
        t.finish();
        assert!(t.total_us() >= total);
    }
}
