//! Log-linear atomic histogram with bounded relative error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` buckets, bounding relative quantization error by
/// `2^-SUB_BITS`.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: one exact bucket
/// per value below `SUB_COUNT`, then 16 sub-buckets for each of the
/// remaining 60 octaves.
pub const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Index of the bucket containing `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        SUB_COUNT + ((exp - SUB_BITS) as usize) * SUB_COUNT + sub
    }
}

/// Smallest value that lands in bucket `index`.
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_COUNT {
        index as u64
    } else {
        let octave = (index - SUB_COUNT) / SUB_COUNT;
        let sub = (index - SUB_COUNT) % SUB_COUNT;
        ((SUB_COUNT + sub) as u64) << octave
    }
}

/// Width of bucket `index` (how many distinct values it absorbs).
fn bucket_width(index: usize) -> u64 {
    if index < SUB_COUNT {
        1
    } else {
        1u64 << ((index - SUB_COUNT) / SUB_COUNT)
    }
}

/// A fixed-size log-linear histogram of `u64` values.
///
/// Recording is wait-free (three relaxed atomic RMWs plus a
/// `fetch_max`); queries walk the bucket array. Suitable as a
/// process-global shared between many recording threads.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Point-in-time percentile digest of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Median (lower bound of the bucket holding rank ⌈0.50·count⌉).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets.into_boxed_slice().try_into().unwrap();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket holding the value at quantile `q`
    /// (`0.0 < q <= 1.0`), or 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Self::quantile_of(&snapshot, q)
    }

    fn quantile_of(snapshot: &[u64], q: f64) -> u64 {
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Computes count/sum/p50/p90/p99/max from one coherent snapshot
    /// of the bucket array.
    pub fn summary(&self) -> HistogramSummary {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = snapshot.iter().sum();
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50: Self::quantile_of(&snapshot, 0.50),
            p90: Self::quantile_of(&snapshot, 0.90),
            p99: Self::quantile_of(&snapshot, 0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Exposed for the property tests: `(floor, width)` of the bucket a
/// value falls in.
#[doc(hidden)]
pub fn bucket_of(value: u64) -> (u64, u64) {
    let i = bucket_index(value);
    (bucket_floor(i), bucket_width(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
    }

    #[test]
    fn every_bucket_floor_maps_back_to_its_bucket() {
        for i in 0..BUCKETS {
            let floor = bucket_floor(i);
            assert_eq!(bucket_index(floor), i, "floor {floor} of bucket {i}");
            // The last value of the bucket stays inside it…
            let last = floor + (bucket_width(i) - 1);
            assert_eq!(bucket_index(last), i, "last {last} of bucket {i}");
            // …and the next value does not (except at the very top).
            if let Some(next) = last.checked_add(1) {
                assert_eq!(bucket_index(next), i + 1, "next {next} of bucket {i}");
            }
        }
    }

    #[test]
    fn extremes_are_representable() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let h = Histogram::new();
        h.record(777);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 777);
        assert_eq!(s.max, 777);
        let (floor, width) = bucket_of(777);
        for p in [s.p50, s.p90, s.p99] {
            assert_eq!(p, floor);
            assert!(777 - p < width);
        }
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread across magnitudes so many buckets contend.
                        h.record((i + 1) << (t % 8));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.summary();
        assert_eq!(s.count, THREADS * PER_THREAD);
        let expect_sum: u64 = (0..THREADS)
            .map(|t| (1..=PER_THREAD).map(|i| i << (t % 8)).sum::<u64>())
            .sum();
        assert_eq!(s.sum, expect_sum);
    }
}
