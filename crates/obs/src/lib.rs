//! Zero-dependency telemetry for the `rect-addr` stack.
//!
//! Three pieces, all lock-free on the record path:
//!
//! * [`Histogram`] — a log-linear (HDR-style) value histogram over
//!   `u64`. Values below 16 are exact; above that each power-of-two
//!   octave is split into 16 sub-buckets, so the relative quantization
//!   error is bounded by 1/16 at every magnitude. Percentile queries
//!   ([`Histogram::summary`]) report the lower bound of the bucket
//!   holding the requested rank, which is within one bucket width of
//!   the exact order statistic.
//! * [`Registry`] — a named collection of histograms and [`Counter`]s
//!   with a process-global instance ([`registry`]). Layers record into
//!   well-known names ([`names`]) without threading handles through
//!   call signatures; exporters ([`Registry::snapshot_json`],
//!   [`Registry::dump_to_path`]) read it back out.
//! * [`JobTrace`] — a per-job stage breakdown (queue wait, canonical
//!   form, cache lookup, strategy race) filled in as a job flows
//!   through the service and surfaced on v2 wire responses.
//!
//! The crate deliberately depends on nothing but `std` so every layer
//! of the workspace — including the SAT core — can record into it
//! without dependency cycles.

mod histogram;
mod registry;
mod trace;

#[doc(hidden)]
pub use histogram::bucket_of;
pub use histogram::{Histogram, HistogramSummary, BUCKETS};
pub use registry::{names, registry, Counter, Registry};
pub use trace::JobTrace;
