//! Lower bounds on the binary rank.
//!
//! Soundness is what matters for Algorithm 1: any lower bound ≤ `r_B(M)` may
//! terminate the descending SAT loop and certify optimality when the
//! incumbent partition matches it. The paper uses the real rank (its Eq. 3);
//! we additionally expose the GF(2) rank (also sound — disjoint rectangles
//! sum without carries) and the greedy fooling-set size (sound by the
//! distinctness argument of §II), each of which can dominate the others on
//! particular matrices.

use bitmatrix::BitMatrix;
use linalg::{greedy_fooling_set, rank_gf2, real_rank, RealRank};

/// Which bound produced the final value of a [`LowerBound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// Real (rational) rank, paper Eq. 3.
    RealRank,
    /// Rank over GF(2).
    Gf2Rank,
    /// Greedy fooling-set size.
    FoolingSet,
}

/// A sound lower bound on `r_B(M)` with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBound {
    /// The bound: `value ≤ r_B(M)`.
    pub value: usize,
    /// The real-rank component (always computed).
    pub real_rank: RealRank,
    /// The GF(2)-rank component.
    pub gf2_rank: usize,
    /// The greedy fooling-set component (0 when disabled).
    pub fooling: usize,
    /// Which component attained `value`.
    pub source: BoundSource,
}

/// Computes the combined lower bound `max(rank_ℝ, rank_GF(2), fooling)`.
///
/// `use_fooling` toggles the greedy fooling-set component; the paper-faithful
/// configuration of [`sap`](crate::sap) keeps it off so the termination
/// bound matches Algorithm 1 exactly.
pub fn lower_bound(m: &BitMatrix, use_fooling: bool) -> LowerBound {
    let rr = real_rank(m);
    let g2 = rank_gf2(m);
    let fool = if use_fooling {
        greedy_fooling_set(m).size()
    } else {
        0
    };
    let (value, source) = [
        (rr.rank, BoundSource::RealRank),
        (g2, BoundSource::Gf2Rank),
        (fool, BoundSource::FoolingSet),
    ]
    .into_iter()
    .max_by_key(|&(v, _)| v)
    .expect("non-empty candidate list");
    LowerBound {
        value,
        real_rank: rr,
        gf2_rank: g2,
        fooling: fool,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_bound_is_n() {
        let lb = lower_bound(&BitMatrix::identity(5), true);
        assert_eq!(lb.value, 5);
        assert!(lb.real_rank.exact);
    }

    #[test]
    fn gf2_never_exceeds_real_rank_for_these() {
        let m: BitMatrix = "011\n101\n110".parse().unwrap();
        let lb = lower_bound(&m, false);
        assert_eq!(lb.real_rank.rank, 3);
        assert_eq!(lb.gf2_rank, 2);
        assert_eq!(lb.value, 3);
        assert_eq!(lb.source, BoundSource::RealRank);
    }

    #[test]
    fn fooling_can_be_the_best_bound() {
        // Complement of I_4: real rank 4 = fooling-ish; craft a case where
        // fooling exceeds rank: the "triangle" matrix J-I on 3 points has
        // rank 3 and fooling 3; instead verify fooling is at least reported.
        let m = BitMatrix::identity(4);
        let lb = lower_bound(&m, true);
        assert_eq!(lb.fooling, 4);
    }

    #[test]
    fn zero_matrix_bound_zero() {
        let lb = lower_bound(&BitMatrix::zeros(3, 3), true);
        assert_eq!(lb.value, 0);
    }

    #[test]
    fn disabled_fooling_is_zero() {
        let lb = lower_bound(&BitMatrix::identity(3), false);
        assert_eq!(lb.fooling, 0);
        assert_eq!(lb.value, 3);
    }
}
