//! Tensor products of partitions — the FTQC two-level structure (paper §V).
//!
//! A logical-level pattern `M̂` of operations on surface-code patches and a
//! physical-level pattern `M` inside one patch compose to the physical
//! operation `M̂ ⊗ M`. Partitions compose the same way:
//! `r_B(M̂ ⊗ M) ≤ r_B(M̂) · r_B(M)` via [`tensor_partition`], and Watson's
//! bound (paper Eq. 5) lower-bounds the product rank by fooling sets —
//! [`tensor_bounds`] evaluates both sides so the multiplicativity question
//! (open, per the paper) can be explored experimentally.

use bitmatrix::BitMatrix;
use linalg::max_fooling_set;

use crate::{sap, Partition, SapConfig};

/// The tensor (Kronecker) product of two partitions: one rectangle
/// `R̂ ⊗ R` per pair. If the inputs are valid partitions of `M̂` and `M`,
/// the output is a valid partition of `M̂ ⊗ M` with
/// `len = len(M̂-partition) · len(M-partition)`.
pub fn tensor_partition(logical: &Partition, physical: &Partition) -> Partition {
    let (lm, ln) = logical.shape();
    let (pm, pn) = physical.shape();
    let mut out = Partition::empty(lm * pm, ln * pn);
    for a in logical {
        for b in physical {
            out.push(a.kron(b));
        }
    }
    out
}

/// Both sides of the paper's Eq. 5 sandwich for `r_B(M̂ ⊗ M)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorBounds {
    /// `r_B(M̂)` (computed exactly).
    pub rb_logical: usize,
    /// `r_B(M)` (computed exactly).
    pub rb_physical: usize,
    /// Maximum fooling-set size `φ(M̂)`.
    pub fooling_logical: usize,
    /// Maximum fooling-set size `φ(M)`.
    pub fooling_physical: usize,
    /// Watson's lower bound `max(r_B(M̂)·φ(M), r_B(M)·φ(M̂))`.
    pub lower: usize,
    /// The product upper bound `r_B(M̂)·r_B(M)`.
    pub upper: usize,
}

/// Computes Eq. 5's lower bound and the tensor-product upper bound for
/// `r_B(M̂ ⊗ M)`. Exact solves — use small matrices.
pub fn tensor_bounds(logical: &BitMatrix, physical: &BitMatrix) -> TensorBounds {
    let cfg = SapConfig::default();
    let rb_l = sap(logical, &cfg);
    let rb_p = sap(physical, &cfg);
    assert!(rb_l.proved_optimal && rb_p.proved_optimal);
    let f_l = max_fooling_set(logical, 10_000_000);
    let f_p = max_fooling_set(physical, 10_000_000);
    let rb_logical = rb_l.depth();
    let rb_physical = rb_p.depth();
    let fooling_logical = f_l.size();
    let fooling_physical = f_p.size();
    TensorBounds {
        rb_logical,
        rb_physical,
        fooling_logical,
        fooling_physical,
        lower: (rb_logical * fooling_physical).max(rb_physical * fooling_logical),
        upper: rb_logical * rb_physical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_packing;
    use crate::PackingConfig;

    #[test]
    fn tensor_of_valid_partitions_is_valid() {
        let a: BitMatrix = "10\n11".parse().unwrap();
        let b: BitMatrix = "11\n01".parse().unwrap();
        let pa = row_packing(&a, &PackingConfig::with_trials(5));
        let pb = row_packing(&b, &PackingConfig::with_trials(5));
        assert!(pa.validate(&a).is_ok() && pb.validate(&b).is_ok());
        let t = tensor_partition(&pa, &pb);
        assert!(t.validate(&a.kron(&b)).is_ok());
        assert_eq!(t.len(), pa.len() * pb.len());
    }

    #[test]
    fn all_ones_patch_is_free() {
        // Paper §V: when M is all-ones (apply the gate to a whole patch),
        // φ(M) = r_B(M) = 1 and the logical partition is optimal.
        let logical: BitMatrix = "10\n01".parse().unwrap();
        let patch = BitMatrix::ones(3, 3);
        let tb = tensor_bounds(&logical, &patch);
        assert_eq!(tb.rb_physical, 1);
        assert_eq!(tb.fooling_physical, 1);
        assert_eq!(tb.lower, tb.upper, "sandwich closes: product is optimal");
        assert_eq!(tb.upper, 2);
    }

    #[test]
    fn bounds_are_ordered() {
        let a: BitMatrix = "110\n011\n111".parse().unwrap(); // Eq. (2)
        let b: BitMatrix = "10\n01".parse().unwrap();
        let tb = tensor_bounds(&a, &b);
        assert!(tb.lower <= tb.upper);
        assert_eq!(tb.rb_logical, 3);
        assert_eq!(tb.fooling_logical, 2);
        assert_eq!(tb.rb_physical, 2);
        // lower = max(3·2, 2·2) = 6 = upper here: product is optimal.
        assert_eq!(tb.lower, 6);
        assert_eq!(tb.upper, 6);
    }

    #[test]
    fn tensor_with_empty_partition() {
        let a = Partition::empty(2, 2);
        let b = Partition::empty(3, 3);
        let t = tensor_partition(&a, &b);
        assert_eq!(t.shape(), (6, 6));
        assert!(t.is_empty());
    }
}
