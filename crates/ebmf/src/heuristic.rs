//! Heuristic EBMF: the trivial bound and the paper's *row packing*
//! (Algorithm 2), plus the §VI exact-cover upgrade.
//!
//! The packing inner loop runs entirely on packed `u64` words: the basis
//! vectors and row memberships of every rectangle live in two flat scratch
//! buffers ([`PackWorkspace`]) that are reused across trials, and a trial
//! only materializes a [`Partition`] when it actually improves on the
//! incumbent. [`row_packing_cancellable`] is the engine-facing multi-trial
//! entry point with the per-call setup (trivial baseline, transpose)
//! hoisted out of the trial loop.

use std::time::Instant;

use bitmatrix::{kernel, random_permutation, BitMatrix, BitVec};
use exactcover::{Dlx, DlxBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sat::CancelToken;

use crate::{Partition, Rectangle};

/// Row-ordering strategy for packing trials (paper §III-B discusses both
/// compromises; shuffling is the published default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowOrder {
    /// Uniformly random shuffle per trial — the paper's choice.
    #[default]
    Shuffle,
    /// Rows with fewer 1s first (the paper's rejected compromise #2; kept
    /// for the ablation benchmark).
    SparsestFirst,
    /// Natural order 0, 1, 2, … (single deterministic trial).
    Natural,
}

/// Configuration of the row-packing heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingConfig {
    /// Number of shuffled trials (per orientation).
    pub trials: usize,
    /// RNG seed for the shuffles.
    pub seed: u64,
    /// Row ordering strategy.
    pub order: RowOrder,
    /// Enable the basis update of Algorithm 2 lines 9–16 (the paper's
    /// rejected compromise #1 disables it; kept for the ablation benchmark).
    pub basis_update: bool,
    /// Also run on the transpose and keep the better result (the paper does).
    pub transpose: bool,
    /// Decompose rows by *exact cover* over the basis (Algorithm X) instead
    /// of greedy first-fit — the paper's §VI future-work idea.
    pub exact_cover: bool,
    /// DLX node budget per row when `exact_cover` is on.
    pub exact_cover_budget: u64,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            trials: 10,
            seed: 0,
            order: RowOrder::Shuffle,
            basis_update: true,
            transpose: true,
            exact_cover: false,
            exact_cover_budget: 20_000,
        }
    }
}

impl PackingConfig {
    /// Config with the given number of shuffled trials (other fields default).
    pub fn with_trials(trials: usize) -> Self {
        PackingConfig {
            trials,
            ..PackingConfig::default()
        }
    }
}

/// The trivial heuristic (paper §III-B): partition into single rows — or
/// single columns, whichever is fewer — consolidating duplicates and
/// skipping empty lines. Gives the upper bound
/// `r_B(M) ≤ min(#distinct nonzero rows, #distinct nonzero cols)`.
pub fn trivial_partition(m: &BitMatrix) -> Partition {
    let by_rows = trivial_rows(m);
    let by_cols = transpose_partition(&trivial_rows(m.transposed()));
    if by_rows.len() <= by_cols.len() {
        by_rows
    } else {
        by_cols
    }
}

/// One rectangle per distinct nonzero row, spanning all duplicates.
fn trivial_rows(m: &BitMatrix) -> Partition {
    let (dedup, groups) = m.dedup_rows();
    let mut p = Partition::empty(m.nrows(), m.ncols());
    for (k, g) in groups.iter().enumerate() {
        let rows = BitVec::from_indices(m.nrows(), g.iter().copied());
        p.push(Rectangle::new(rows, dedup.row(k).to_bitvec()));
    }
    p
}

/// Transposes a partition of `Mᵀ` into a partition of `M`.
fn transpose_partition(p: &Partition) -> Partition {
    let (r, c) = p.shape();
    let mut out = Partition::empty(c, r);
    for rect in p {
        out.push(Rectangle::new(rect.cols().clone(), rect.rows().clone()));
    }
    out
}

/// Reusable word-level state of one packing pass. Rectangle `k`'s basis
/// vector occupies words `k*cstride..(k+1)*cstride` of `rect_cols` and its
/// row membership words `k*rstride..(k+1)*rstride` of `rect_rows`; rows are
/// tracked in *shuffled* coordinates until [`PackWorkspace::to_partition`]
/// maps them back through the trial's order.
#[derive(Default)]
struct PackWorkspace {
    cstride: usize,
    rstride: usize,
    rect_cols: Vec<u64>,
    rect_rows: Vec<u64>,
    nrect: usize,
    residue: Vec<u64>,
    cover_items: Vec<usize>,
    candidates: Vec<usize>,
    builder: DlxBuilder,
    dlx: Dlx,
}

impl PackWorkspace {
    fn new() -> Self {
        PackWorkspace::default()
    }

    /// One pass of Algorithm 2 over `m`'s rows in `order`; leaves the
    /// resulting rectangles in the workspace and returns their count.
    fn run_trial(&mut self, m: &BitMatrix, order: &[usize], config: &PackingConfig) -> usize {
        let start = Instant::now();
        let nrows = m.nrows();
        assert_eq!(order.len(), nrows, "order must be a permutation of rows");
        let cs = m.stride();
        let rs = nrows.div_ceil(64);
        self.cstride = cs;
        self.rstride = rs;
        self.nrect = 0;
        self.rect_cols.clear();
        self.rect_rows.clear();
        self.residue.clear();
        self.residue.resize(cs, 0);

        for (t, &orig) in order.iter().enumerate() {
            self.residue.copy_from_slice(m.row_words(orig));
            if kernel::is_zero(&self.residue) {
                continue;
            }
            // Decompose the row over the current basis.
            if config.exact_cover && self.nrect > 0 && self.exact_cover_step(t, config) {
                continue; // fully decomposed, no residue
            }
            // Greedy first-fit (Algorithm 2 lines 4–7).
            for k in 0..self.nrect {
                let cols = &self.rect_cols[k * cs..(k + 1) * cs];
                if !kernel::is_zero(cols) && kernel::is_subset(cols, &self.residue) {
                    self.rect_rows[k * rs + t / 64] |= 1 << (t % 64); // vertical grow
                    kernel::andnot_assign(&mut self.residue, cols);
                }
            }
            if kernel::is_zero(&self.residue) {
                continue;
            }
            // Residue: new basis vector (lines 8–16).
            let row_base = self.nrect * rs;
            self.rect_rows.resize(row_base + rs, 0);
            self.rect_rows[row_base + t / 64] |= 1 << (t % 64);
            if config.basis_update {
                // Any existing basis vector containing the residue is split:
                // its rectangle sheds the residue columns ("horizontal
                // shrink"), and those rows are re-covered by the new
                // rectangle. (The paper's pseudo-code tracks this with the
                // column vector `c`.)
                let (old_rows, new_rows) = self.rect_rows.split_at_mut(row_base);
                for k in 0..self.nrect {
                    let cols = &mut self.rect_cols[k * cs..(k + 1) * cs];
                    if kernel::is_subset(&self.residue, cols) {
                        kernel::or_assign(new_rows, &old_rows[k * rs..(k + 1) * rs]);
                        kernel::andnot_assign(cols, &self.residue);
                    }
                }
            }
            self.rect_cols.extend_from_slice(&self.residue);
            self.nrect += 1;
        }
        obs::registry()
            .histogram(obs::names::KERNEL_US_PACK_TRIAL)
            .record(start.elapsed().as_micros() as u64);
        self.nrect
    }

    /// Tries to decompose the current residue (still the full row) as an
    /// exact disjoint cover by basis vectors contained in it; on success
    /// marks the covering rectangles' membership bit for shuffled row `t`
    /// and returns `true`.
    fn exact_cover_step(&mut self, t: usize, config: &PackingConfig) -> bool {
        let cs = self.cstride;
        let rs = self.rstride;
        let setup = Instant::now();
        self.candidates.clear();
        self.builder.reset(kernel::count(&self.residue), 0);
        for k in 0..self.nrect {
            let cols = &self.rect_cols[k * cs..(k + 1) * cs];
            if !kernel::is_zero(cols) && kernel::is_subset(cols, &self.residue) {
                // Item index of column `c` = its rank among the row's 1s.
                self.cover_items.clear();
                self.cover_items
                    .extend(kernel::ones(cols).map(|c| kernel::rank(&self.residue, c)));
                self.builder.add_row(&self.cover_items);
                self.candidates.push(k);
            }
        }
        if self.candidates.is_empty() {
            return false;
        }
        self.builder.build_into(&mut self.dlx);
        obs::registry()
            .histogram(obs::names::KERNEL_US_DLX_SETUP)
            .record(setup.elapsed().as_micros() as u64);
        let rect_rows = &mut self.rect_rows;
        let candidates = &self.candidates;
        let mut found = false;
        self.dlx.run(config.exact_cover_budget, |sol| {
            for &r in sol {
                let k = candidates[r];
                rect_rows[k * rs + t / 64] |= 1 << (t % 64);
            }
            found = true;
            false
        });
        found
    }

    /// Materializes the workspace as a [`Partition`] in original row
    /// coordinates, undoing the trial's shuffle (Algorithm 2 line 17).
    fn to_partition(&self, m: &BitMatrix, order: &[usize]) -> Partition {
        let mut out = Partition::empty(m.nrows(), m.ncols());
        for k in 0..self.nrect {
            let row_words = &self.rect_rows[k * self.rstride..(k + 1) * self.rstride];
            let rows = BitVec::from_indices(m.nrows(), kernel::ones(row_words).map(|t| order[t]));
            let col_words = self.rect_cols[k * self.cstride..(k + 1) * self.cstride].to_vec();
            out.push(Rectangle::new(
                rows,
                BitVec::from_words(m.ncols(), col_words),
            ));
        }
        out
    }
}

/// One pass of row packing (Algorithm 2) with an explicit row order:
/// `order[t]` is the original index of the row processed `t`-th. This is the
/// entry point used to reproduce the two trials of paper Fig. 3.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..m.nrows()`.
pub fn row_packing_once(m: &BitMatrix, order: &[usize], config: &PackingConfig) -> Partition {
    let mut ws = PackWorkspace::new();
    ws.run_trial(m, order, config);
    ws.to_partition(m, order)
}

/// Full row-packing heuristic: `trials` passes over shuffled row orders (and
/// the transpose, when configured), returning the best partition found,
/// never worse than [`trivial_partition`].
pub fn row_packing(m: &BitMatrix, config: &PackingConfig) -> Partition {
    let mut best = trivial_partition(m);
    if best.len() > 1 {
        let mut ws = PackWorkspace::new();
        run_orientations(m, config, &mut ws, &mut best);
    }
    best
}

/// Multi-trial row packing for a race driver: equivalent to running
/// [`row_packing`] with single-trial configs seeded `seed`, `seed+1`, … and
/// keeping the best result, but with the trivial baseline, the transpose and
/// the trial workspace hoisted out of the loop. Polls `cancel` between
/// trials, so a budget expiry overruns by at most one trial; at least one
/// trial always completes, so the result is always a valid partition.
pub fn row_packing_cancellable(
    m: &BitMatrix,
    config: &PackingConfig,
    cancel: &CancelToken,
) -> Partition {
    let mut best = trivial_partition(m);
    let mut ws = PackWorkspace::new();
    let outer = match config.order {
        RowOrder::Shuffle => config.trials.max(1),
        // Deterministic orders: extra trials are identical.
        RowOrder::SparsestFirst | RowOrder::Natural => 1,
    };
    for t in 0..outer as u64 {
        if best.len() <= 1 {
            break; // cannot improve further
        }
        if t > 0 && cancel.is_cancelled() {
            break;
        }
        let per_trial = PackingConfig {
            trials: 1,
            seed: config.seed.wrapping_add(t),
            ..*config
        };
        run_orientations(m, &per_trial, &mut ws, &mut best);
    }
    best
}

/// Runs `config.trials` packing passes on `m` (and its transpose, when
/// configured), improving `best` in place. One `StdRng` seeded from
/// `config.seed` drives every shuffle, both orientations included, matching
/// the historical trial stream exactly.
fn run_orientations(
    m: &BitMatrix,
    config: &PackingConfig,
    ws: &mut PackWorkspace,
    best: &mut Partition,
) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let orientations: &[bool] = if config.transpose {
        &[false, true]
    } else {
        &[false]
    };
    for &transposed in orientations {
        let target: &BitMatrix = if transposed { m.transposed() } else { m };
        let trials = match config.order {
            RowOrder::Shuffle => config.trials,
            // Deterministic orders: extra trials are identical.
            RowOrder::SparsestFirst | RowOrder::Natural => 1,
        };
        for _ in 0..trials {
            let order: Vec<usize> = match config.order {
                RowOrder::Shuffle => random_permutation(target.nrows(), &mut rng),
                RowOrder::Natural => (0..target.nrows()).collect(),
                RowOrder::SparsestFirst => {
                    let mut idx: Vec<usize> = (0..target.nrows()).collect();
                    idx.sort_by_key(|&i| target.row(i).count_ones());
                    idx
                }
            };
            if ws.run_trial(target, &order, config) < best.len() {
                let p = ws.to_partition(target, &order);
                *best = if transposed {
                    transpose_partition(&p)
                } else {
                    p
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    /// The 5×5 matrix of paper Fig. 3 (rows r0..r4).
    fn fig3() -> BitMatrix {
        "11000\n00110\n01100\n10011\n11111".parse().unwrap()
    }

    #[test]
    fn trivial_on_fig1b_gives_five_via_duplicate_columns() {
        // All six rows are distinct, but columns 0 and 2 coincide, so the
        // column orientation needs only 5 rectangles.
        let m = fig1b();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn trivial_merges_duplicates_and_empty() {
        let m: BitMatrix = "1100\n0000\n1100\n0011".parse().unwrap();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn trivial_prefers_smaller_side() {
        // 4 distinct rows but only 2 distinct nonzero columns.
        let m: BitMatrix = "10\n01\n11\n10".parse().unwrap();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fig3_natural_order_gives_five_rectangles() {
        // Paper Fig. 3a: processing rows 0..4 in order yields 5 rectangles.
        let m = fig3();
        let cfg = PackingConfig::default();
        let p = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn fig3_alternative_order_gives_four_rectangles() {
        // Paper Fig. 3b: processing r4 (all-ones), r2, r3, r0, r1 packs the
        // matrix into 4 rectangles thanks to the basis update.
        let m = fig3();
        let cfg = PackingConfig::default();
        let p = row_packing_once(&m, &[4, 2, 3, 0, 1], &cfg);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 4, "\n{p}");
    }

    #[test]
    fn packing_beats_or_ties_trivial_everywhere() {
        let matrices = [fig1b(), fig3()];
        for m in &matrices {
            let t = trivial_partition(m).len();
            let p = row_packing(m, &PackingConfig::with_trials(5));
            assert!(p.validate(m).is_ok());
            assert!(p.len() <= t, "packing {} worse than trivial {t}", p.len());
        }
    }

    #[test]
    fn packing_fig1b_reaches_five() {
        let m = fig1b();
        let p = row_packing(&m, &PackingConfig::with_trials(50));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5, "optimal partition of Fig. 1b has 5 rectangles");
    }

    #[test]
    fn duplicate_rows_share_rectangles() {
        let m: BitMatrix = "1111\n1111\n1111".parse().unwrap();
        let p = row_packing(&m, &PackingConfig::with_trials(1));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn zero_matrix_gives_empty_partition() {
        let m = BitMatrix::zeros(4, 4);
        let p = row_packing(&m, &PackingConfig::with_trials(1));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 0);
        assert_eq!(trivial_partition(&m).len(), 0);
    }

    #[test]
    fn identity_needs_n_rectangles() {
        let m = BitMatrix::identity(6);
        let p = row_packing(&m, &PackingConfig::with_trials(3));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn basis_update_can_matter() {
        // Fig. 3b relies on the basis update; with it disabled, the same
        // order must not produce fewer rectangles (and produces more here).
        let m = fig3();
        let with = row_packing_once(&m, &[4, 2, 3, 0, 1], &PackingConfig::default());
        let without_cfg = PackingConfig {
            basis_update: false,
            ..PackingConfig::default()
        };
        let without = row_packing_once(&m, &[4, 2, 3, 0, 1], &without_cfg);
        assert!(with.validate(&m).is_ok());
        assert!(without.validate(&m).is_ok());
        assert!(with.len() <= without.len());
        assert_eq!(with.len(), 4);
        assert_eq!(without.len(), 5);
    }

    #[test]
    fn exact_cover_decomposition_beats_greedy_order_miss() {
        // Construct the miss from §III-B: basis v0={0,1}, v1={1,2} … means
        // greedy in basis order can pick v0 first and fail where v1+v2 would
        // have worked. Matrix: rows r0={0,1,2,3}? Keep it small:
        //   r0 = 1100, r1 = 0011, r2 = 1110 … natural order:
        //   basis v0=1100, v1=0011, then r2: v0 ⊆ r2? 1100 ⊆ 1110 ✓ →
        //   residue 0010 → new basis (3 rects).
        // With rows r0=1100, r1=0110, r2=1111 natural order: v0 ⊆ r2 →
        // residue 0011; v1=0110 ⊄ 0011 → residue stays → 0011 new basis
        // (but exact cover over {1100, 0110} of 1111 does not exist either).
        // A real greedy-order miss: v0=1111? Use the paper's r4 example —
        // basis order {v0=11000, v1=00110, v2=01100, v3=10011},
        // row 11111: greedy takes v0 → 00111, v1 ⊆? 00110 ⊆ 00111 ✓ →
        // 00001 residue. Exact cover finds v2+v3 = 01100+10011 = 11111. ✓
        let m = fig3();
        let cfg_greedy = PackingConfig::default();
        let greedy = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg_greedy);
        assert_eq!(greedy.len(), 5);

        let cfg_dlx = PackingConfig {
            exact_cover: true,
            ..PackingConfig::default()
        };
        let dlx = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg_dlx);
        assert!(dlx.validate(&m).is_ok());
        assert_eq!(dlx.len(), 4, "exact cover finds r4 = v2 + v3\n{dlx}");
    }

    #[test]
    fn sparsest_first_order_is_deterministic() {
        let m = fig3();
        let cfg = PackingConfig {
            order: RowOrder::SparsestFirst,
            trials: 7,
            ..PackingConfig::default()
        };
        let a = row_packing(&m, &cfg);
        let b = row_packing(&m, &cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.validate(&m).is_ok());
    }

    #[test]
    fn packing_is_reproducible_per_seed() {
        let m = fig1b();
        let cfg = PackingConfig {
            trials: 4,
            seed: 123,
            ..PackingConfig::default()
        };
        let a = row_packing(&m, &cfg);
        let b = row_packing(&m, &cfg);
        assert_eq!(a, b);
    }

    /// The cancellable multi-trial driver must agree with the equivalent
    /// sequence of single-trial `row_packing` calls (same seeds, same best).
    #[test]
    fn cancellable_matches_single_trial_sequence() {
        let matrices = [fig1b(), fig3(), BitMatrix::identity(6)];
        for m in &matrices {
            for exact_cover in [false, true] {
                let trials = 6;
                let multi = row_packing_cancellable(
                    m,
                    &PackingConfig {
                        trials,
                        exact_cover,
                        ..PackingConfig::default()
                    },
                    &CancelToken::new(),
                );
                let mut best = trivial_partition(m);
                for t in 0..trials as u64 {
                    let cfg = PackingConfig {
                        trials: 1,
                        seed: PackingConfig::default().seed.wrapping_add(t),
                        exact_cover,
                        ..PackingConfig::default()
                    };
                    let p = row_packing(m, &cfg);
                    if p.len() < best.len() {
                        best = p;
                    }
                }
                assert!(multi.validate(m).is_ok());
                assert_eq!(multi.len(), best.len(), "exact_cover={exact_cover}\n{m}");
            }
        }
    }

    #[test]
    fn cancelled_token_still_yields_a_valid_partition() {
        let m = fig1b();
        let token = CancelToken::new();
        token.cancel();
        let p = row_packing_cancellable(&m, &PackingConfig::with_trials(64), &token);
        assert!(p.validate(&m).is_ok());
        assert!(p.len() <= trivial_partition(&m).len());
    }
}
