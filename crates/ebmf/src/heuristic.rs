//! Heuristic EBMF: the trivial bound and the paper's *row packing*
//! (Algorithm 2), plus the §VI exact-cover upgrade.

use bitmatrix::{random_permutation, BitMatrix, BitVec};
use exactcover::DlxBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Partition, Rectangle};

/// Row-ordering strategy for packing trials (paper §III-B discusses both
/// compromises; shuffling is the published default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowOrder {
    /// Uniformly random shuffle per trial — the paper's choice.
    #[default]
    Shuffle,
    /// Rows with fewer 1s first (the paper's rejected compromise #2; kept
    /// for the ablation benchmark).
    SparsestFirst,
    /// Natural order 0, 1, 2, … (single deterministic trial).
    Natural,
}

/// Configuration of the row-packing heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingConfig {
    /// Number of shuffled trials (per orientation).
    pub trials: usize,
    /// RNG seed for the shuffles.
    pub seed: u64,
    /// Row ordering strategy.
    pub order: RowOrder,
    /// Enable the basis update of Algorithm 2 lines 9–16 (the paper's
    /// rejected compromise #1 disables it; kept for the ablation benchmark).
    pub basis_update: bool,
    /// Also run on the transpose and keep the better result (the paper does).
    pub transpose: bool,
    /// Decompose rows by *exact cover* over the basis (Algorithm X) instead
    /// of greedy first-fit — the paper's §VI future-work idea.
    pub exact_cover: bool,
    /// DLX node budget per row when `exact_cover` is on.
    pub exact_cover_budget: u64,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            trials: 10,
            seed: 0,
            order: RowOrder::Shuffle,
            basis_update: true,
            transpose: true,
            exact_cover: false,
            exact_cover_budget: 20_000,
        }
    }
}

impl PackingConfig {
    /// Config with the given number of shuffled trials (other fields default).
    pub fn with_trials(trials: usize) -> Self {
        PackingConfig {
            trials,
            ..PackingConfig::default()
        }
    }
}

/// The trivial heuristic (paper §III-B): partition into single rows — or
/// single columns, whichever is fewer — consolidating duplicates and
/// skipping empty lines. Gives the upper bound
/// `r_B(M) ≤ min(#distinct nonzero rows, #distinct nonzero cols)`.
pub fn trivial_partition(m: &BitMatrix) -> Partition {
    let by_rows = trivial_rows(m);
    let by_cols = transpose_partition(&trivial_rows(&m.transpose()));
    if by_rows.len() <= by_cols.len() {
        by_rows
    } else {
        by_cols
    }
}

/// One rectangle per distinct nonzero row, spanning all duplicates.
fn trivial_rows(m: &BitMatrix) -> Partition {
    let (dedup, groups) = m.dedup_rows();
    let mut p = Partition::empty(m.nrows(), m.ncols());
    for (k, g) in groups.iter().enumerate() {
        let rows = BitVec::from_indices(m.nrows(), g.iter().copied());
        p.push(Rectangle::new(rows, dedup.row(k).clone()));
    }
    p
}

/// Transposes a partition of `Mᵀ` into a partition of `M`.
fn transpose_partition(p: &Partition) -> Partition {
    let (r, c) = p.shape();
    let mut out = Partition::empty(c, r);
    for rect in p {
        out.push(Rectangle::new(rect.cols().clone(), rect.rows().clone()));
    }
    out
}

/// One pass of row packing (Algorithm 2) with an explicit row order:
/// `order[t]` is the original index of the row processed `t`-th. This is the
/// entry point used to reproduce the two trials of paper Fig. 3.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..m.nrows()`.
pub fn row_packing_once(m: &BitMatrix, order: &[usize], config: &PackingConfig) -> Partition {
    let shuffled = m.permute_rows(order); // row t of shuffled = row order[t] of m
    let nrows = m.nrows();
    let ncols = m.ncols();

    // Rectangles in shuffled row coordinates. Invariant: rect.cols() is the
    // basis vector of that rectangle.
    let mut rects: Vec<Rectangle> = Vec::new();

    for t in 0..nrows {
        let mut residue = shuffled.row(t).clone();
        if residue.is_zero() {
            continue;
        }
        // Decompose the row over the current basis.
        if config.exact_cover && !rects.is_empty() {
            if let Some(cover) = exact_cover_decomposition(&residue, &rects, config) {
                for k in cover {
                    rects[k].rows_mut().set(t, true);
                }
                continue; // fully decomposed, no residue
            }
        }
        // Greedy first-fit (Algorithm 2 lines 4–7).
        for rect in rects.iter_mut() {
            let v = rect.cols().clone();
            if !v.is_zero() && v.is_subset_of(&residue) {
                rect.rows_mut().set(t, true); // vertical grow
                residue.difference_assign(&v);
            }
        }
        if residue.is_zero() {
            continue;
        }
        // Residue: new basis vector (lines 8–16).
        let mut new_rows = BitVec::zeros(nrows);
        new_rows.set(t, true);
        if config.basis_update {
            // Any existing basis vector containing the residue is split:
            // its rectangle sheds the residue columns ("horizontal shrink"),
            // and those rows are re-covered by the new rectangle. (The
            // paper's pseudo-code tracks this with the column vector `c`.)
            for rect in rects.iter_mut() {
                if residue.is_subset_of(rect.cols()) {
                    new_rows.or_assign(rect.rows());
                    rect.cols_mut().difference_assign(&residue);
                }
            }
        }
        rects.push(Rectangle::new(new_rows, residue));
    }

    // Undo the shuffle (line 17): row t of the shuffled matrix is row
    // `order[t]` of the original.
    let mut out = Partition::empty(nrows, ncols);
    for rect in rects {
        let orig_rows = BitVec::from_indices(nrows, rect.rows().ones().map(|t| order[t]));
        out.push(Rectangle::new(orig_rows, rect.cols().clone()));
    }
    out
}

/// Tries to decompose `row` as an exact disjoint cover by basis vectors
/// (each fully contained in `row`). Returns indices of the covering
/// rectangles, or `None` when no exact cover exists or the budget ran out.
fn exact_cover_decomposition(
    row: &BitVec,
    rects: &[Rectangle],
    config: &PackingConfig,
) -> Option<Vec<usize>> {
    let items: Vec<usize> = row.to_indices();
    let item_of_col: std::collections::HashMap<usize, usize> = items
        .iter()
        .enumerate()
        .map(|(idx, &col)| (col, idx))
        .collect();
    let mut builder = DlxBuilder::new(items.len(), 0);
    let mut candidates: Vec<usize> = Vec::new();
    for (k, r) in rects.iter().enumerate() {
        let v = r.cols();
        if !v.is_zero() && v.is_subset_of(row) {
            let cover_items: Vec<usize> = v.ones().map(|c| item_of_col[&c]).collect();
            builder.add_row(&cover_items);
            candidates.push(k);
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let mut dlx = builder.build();
    let mut found: Option<Vec<usize>> = None;
    dlx.run(config.exact_cover_budget, |sol| {
        found = Some(sol.iter().map(|&r| candidates[r]).collect());
        false
    });
    found
}

/// Full row-packing heuristic: `trials` passes over shuffled row orders (and
/// the transpose, when configured), returning the best partition found,
/// never worse than [`trivial_partition`].
pub fn row_packing(m: &BitMatrix, config: &PackingConfig) -> Partition {
    let mut best = trivial_partition(m);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let orientations: &[bool] = if config.transpose {
        &[false, true]
    } else {
        &[false]
    };
    for &transposed in orientations {
        let target = if transposed { m.transpose() } else { m.clone() };
        let trials = match config.order {
            RowOrder::Shuffle => config.trials,
            // Deterministic orders: extra trials are identical.
            RowOrder::SparsestFirst | RowOrder::Natural => 1,
        };
        for _ in 0..trials {
            let order: Vec<usize> = match config.order {
                RowOrder::Shuffle => random_permutation(target.nrows(), &mut rng),
                RowOrder::Natural => (0..target.nrows()).collect(),
                RowOrder::SparsestFirst => {
                    let mut idx: Vec<usize> = (0..target.nrows()).collect();
                    idx.sort_by_key(|&i| target.row(i).count_ones());
                    idx
                }
            };
            let p = row_packing_once(&target, &order, config);
            let p = if transposed {
                transpose_partition(&p)
            } else {
                p
            };
            if p.len() < best.len() {
                best = p;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    /// The 5×5 matrix of paper Fig. 3 (rows r0..r4).
    fn fig3() -> BitMatrix {
        "11000\n00110\n01100\n10011\n11111".parse().unwrap()
    }

    #[test]
    fn trivial_on_fig1b_gives_five_via_duplicate_columns() {
        // All six rows are distinct, but columns 0 and 2 coincide, so the
        // column orientation needs only 5 rectangles.
        let m = fig1b();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn trivial_merges_duplicates_and_empty() {
        let m: BitMatrix = "1100\n0000\n1100\n0011".parse().unwrap();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn trivial_prefers_smaller_side() {
        // 4 distinct rows but only 2 distinct nonzero columns.
        let m: BitMatrix = "10\n01\n11\n10".parse().unwrap();
        let p = trivial_partition(&m);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fig3_natural_order_gives_five_rectangles() {
        // Paper Fig. 3a: processing rows 0..4 in order yields 5 rectangles.
        let m = fig3();
        let cfg = PackingConfig::default();
        let p = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn fig3_alternative_order_gives_four_rectangles() {
        // Paper Fig. 3b: processing r4 (all-ones), r2, r3, r0, r1 packs the
        // matrix into 4 rectangles thanks to the basis update.
        let m = fig3();
        let cfg = PackingConfig::default();
        let p = row_packing_once(&m, &[4, 2, 3, 0, 1], &cfg);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 4, "\n{p}");
    }

    #[test]
    fn packing_beats_or_ties_trivial_everywhere() {
        let matrices = [fig1b(), fig3()];
        for m in &matrices {
            let t = trivial_partition(m).len();
            let p = row_packing(m, &PackingConfig::with_trials(5));
            assert!(p.validate(m).is_ok());
            assert!(p.len() <= t, "packing {} worse than trivial {t}", p.len());
        }
    }

    #[test]
    fn packing_fig1b_reaches_five() {
        let m = fig1b();
        let p = row_packing(&m, &PackingConfig::with_trials(50));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 5, "optimal partition of Fig. 1b has 5 rectangles");
    }

    #[test]
    fn duplicate_rows_share_rectangles() {
        let m: BitMatrix = "1111\n1111\n1111".parse().unwrap();
        let p = row_packing(&m, &PackingConfig::with_trials(1));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn zero_matrix_gives_empty_partition() {
        let m = BitMatrix::zeros(4, 4);
        let p = row_packing(&m, &PackingConfig::with_trials(1));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 0);
        assert_eq!(trivial_partition(&m).len(), 0);
    }

    #[test]
    fn identity_needs_n_rectangles() {
        let m = BitMatrix::identity(6);
        let p = row_packing(&m, &PackingConfig::with_trials(3));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn basis_update_can_matter() {
        // Fig. 3b relies on the basis update; with it disabled, the same
        // order must not produce fewer rectangles (and produces more here).
        let m = fig3();
        let with = row_packing_once(&m, &[4, 2, 3, 0, 1], &PackingConfig::default());
        let without_cfg = PackingConfig {
            basis_update: false,
            ..PackingConfig::default()
        };
        let without = row_packing_once(&m, &[4, 2, 3, 0, 1], &without_cfg);
        assert!(with.validate(&m).is_ok());
        assert!(without.validate(&m).is_ok());
        assert!(with.len() <= without.len());
        assert_eq!(with.len(), 4);
        assert_eq!(without.len(), 5);
    }

    #[test]
    fn exact_cover_decomposition_beats_greedy_order_miss() {
        // Construct the miss from §III-B: basis v0={0,1}, v1={1,2} … means
        // greedy in basis order can pick v0 first and fail where v1+v2 would
        // have worked. Matrix: rows r0={0,1,2,3}? Keep it small:
        //   r0 = 1100, r1 = 0011, r2 = 1110 … natural order:
        //   basis v0=1100, v1=0011, then r2: v0 ⊆ r2? 1100 ⊆ 1110 ✓ →
        //   residue 0010 → new basis (3 rects).
        // With rows r0=1100, r1=0110, r2=1111 natural order: v0 ⊆ r2 →
        // residue 0011; v1=0110 ⊄ 0011 → residue stays → 0011 new basis
        // (but exact cover over {1100, 0110} of 1111 does not exist either).
        // A real greedy-order miss: v0=1111? Use the paper's r4 example —
        // basis order {v0=11000, v1=00110, v2=01100, v3=10011},
        // row 11111: greedy takes v0 → 00111, v1 ⊆? 00110 ⊆ 00111 ✓ →
        // 00001 residue. Exact cover finds v2+v3 = 01100+10011 = 11111. ✓
        let m = fig3();
        let cfg_greedy = PackingConfig::default();
        let greedy = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg_greedy);
        assert_eq!(greedy.len(), 5);

        let cfg_dlx = PackingConfig {
            exact_cover: true,
            ..PackingConfig::default()
        };
        let dlx = row_packing_once(&m, &[0, 1, 2, 3, 4], &cfg_dlx);
        assert!(dlx.validate(&m).is_ok());
        assert_eq!(dlx.len(), 4, "exact cover finds r4 = v2 + v3\n{dlx}");
    }

    #[test]
    fn sparsest_first_order_is_deterministic() {
        let m = fig3();
        let cfg = PackingConfig {
            order: RowOrder::SparsestFirst,
            trials: 7,
            ..PackingConfig::default()
        };
        let a = row_packing(&m, &cfg);
        let b = row_packing(&m, &cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.validate(&m).is_ok());
    }

    #[test]
    fn packing_is_reproducible_per_seed() {
        let m = fig1b();
        let cfg = PackingConfig {
            trials: 4,
            seed: 123,
            ..PackingConfig::default()
        };
        let a = row_packing(&m, &cfg);
        let b = row_packing(&m, &cfg);
        assert_eq!(a, b);
    }
}
