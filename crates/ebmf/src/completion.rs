//! EBMF with don't-cares — binary matrix *completion* (paper §VI).
//!
//! Vacancies in an atom array hold no qubit, so a shot may illuminate them
//! any number of times. Modeling vacancies as don't-care cells turns the
//! factorization problem into a completion problem: rectangles must still
//! cover every care-1 exactly once and no care-0, but may overlap freely on
//! don't-cares — which can only reduce the depth. The paper leaves this as
//! future work; this module implements both an exact solver (reusing the
//! SAT encoder's don't-care mode) and a DC-aware packing heuristic.

use bitmatrix::{random_permutation, BitMatrix, BitVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sat::SolveResult;

use crate::{EbmfEncoder, Partition, PartitionError, Rectangle};

/// Validates a partition against a care-matrix plus don't-care mask:
/// rectangles must be nonempty, cover every 1 of `m` exactly once, and may
/// cover don't-cares arbitrarily often — but never a care-0.
///
/// # Errors
///
/// Returns the first violation, reusing [`PartitionError`] variants (an
/// overlap on a care-1 reports `Overlap`; covering a care-0 reports
/// `CoversZero`).
///
/// # Panics
///
/// Panics if `m` and `dont_care` shapes differ or a cell is both.
pub fn validate_completion(
    p: &Partition,
    m: &BitMatrix,
    dont_care: &BitMatrix,
) -> Result<(), PartitionError> {
    assert_eq!(m.shape(), dont_care.shape(), "mask shape mismatch");
    assert!(m.and(dont_care).is_zero(), "cell both 1 and don't-care");
    if p.shape() != m.shape() {
        return Err(PartitionError::ShapeMismatch {
            partition: p.shape(),
            matrix: m.shape(),
        });
    }
    for (idx, r) in p.iter().enumerate() {
        if r.is_empty() {
            return Err(PartitionError::EmptyRectangle { index: idx });
        }
        for (i, j) in r.cells() {
            if !m.get(i, j) && !dont_care.get(i, j) {
                return Err(PartitionError::CoversZero {
                    index: idx,
                    cell: (i, j),
                });
            }
        }
    }
    // Exactly-once coverage applies to care-1 cells only.
    let mut covered = BitMatrix::zeros(m.nrows(), m.ncols());
    for (idx, r) in p.iter().enumerate() {
        for i in r.rows().ones() {
            let care_hits = r.cols().and(m.row(i));
            if !covered.row(i).is_disjoint(&care_hits) {
                let clash = covered
                    .row(i)
                    .and(&care_hits)
                    .first_one()
                    .expect("non-disjoint");
                let first = p.rectangles()[..idx]
                    .iter()
                    .position(|q| q.contains(i, clash))
                    .expect("earlier cover exists");
                return Err(PartitionError::Overlap { first, second: idx });
            }
            covered.row_mut(i).or_assign(&care_hits);
        }
    }
    for i in 0..m.nrows() {
        if let Some(j) = m.row(i).difference(covered.row(i)).first_one() {
            return Err(PartitionError::Uncovered { cell: (i, j) });
        }
    }
    Ok(())
}

/// Don't-care-aware row packing: like Algorithm 2, but a basis vector `v`
/// may be used on row `i` whenever `v ⊆ ones(i) ∪ dc(i)` — the don't-care
/// cells absorb the mismatch. The basis update is restricted to exact
/// containment (conservative but always sound).
pub fn row_packing_with_dont_cares(
    m: &BitMatrix,
    dont_care: &BitMatrix,
    trials: usize,
    seed: u64,
) -> Partition {
    assert_eq!(m.shape(), dont_care.shape(), "mask shape mismatch");
    assert!(m.and(dont_care).is_zero(), "cell both 1 and don't-care");
    let nrows = m.nrows();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Partition> = None;
    for trial in 0..trials.max(1) {
        let order = if trial == 0 {
            (0..nrows).collect::<Vec<_>>()
        } else {
            random_permutation(nrows, &mut rng)
        };
        let p = pack_once_dc(m, dont_care, &order);
        if best.as_ref().is_none_or(|b| p.len() < b.len()) {
            best = Some(p);
        }
    }
    best.expect("at least one trial")
}

fn pack_once_dc(m: &BitMatrix, dont_care: &BitMatrix, order: &[usize]) -> Partition {
    let nrows = m.nrows();
    let ncols = m.ncols();
    let mut rects: Vec<Rectangle> = Vec::new(); // rows in original indices
    for &i in order {
        let ones = m.row(i).to_bitvec();
        if ones.is_zero() {
            continue;
        }
        let coverable = ones.or(dont_care.row(i));
        let mut residue = ones.clone();
        for rect in rects.iter_mut() {
            let v = rect.cols().clone();
            if v.is_zero() || !v.is_subset_of(&coverable) {
                continue;
            }
            // The vector's care hits on this row must all be outstanding —
            // re-covering an already-covered 1 would break disjointness —
            // and it must cover at least one (avoid useless growth).
            let care_hits = v.and(&ones);
            if !care_hits.is_zero() && care_hits.is_subset_of(&residue) {
                rect.rows_mut().set(i, true);
                residue.difference_assign(&care_hits);
                if residue.is_zero() {
                    break;
                }
            }
        }
        if !residue.is_zero() {
            let mut rows = BitVec::zeros(nrows);
            rows.set(i, true);
            rects.push(Rectangle::new(rows, residue));
        }
    }
    Partition::from_rectangles(nrows, ncols, rects)
}

/// Outcome of the exact completion solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionOutcome {
    /// Best completion-partition found.
    pub partition: Partition,
    /// Whether its depth was proved minimum.
    pub proved_optimal: bool,
}

/// Exact minimum-depth EBMF with don't-cares: descending SAT queries from
/// the DC-aware heuristic's depth, mirroring Algorithm 1.
///
/// Note that the real-rank bound of Eq. 3 does **not** apply verbatim under
/// don't-cares (completion can beat the care-matrix rank), so the descent
/// runs to UNSAT or to 1.
pub fn complete_ebmf(m: &BitMatrix, dont_care: &BitMatrix) -> CompletionOutcome {
    let heuristic = row_packing_with_dont_cares(m, dont_care, 10, 0);
    debug_assert!(validate_completion(&heuristic, m, dont_care).is_ok());
    if m.is_zero() {
        return CompletionOutcome {
            partition: Partition::empty(m.nrows(), m.ncols()),
            proved_optimal: true,
        };
    }
    let mut best = heuristic;
    if best.len() == 1 {
        return CompletionOutcome {
            partition: best,
            proved_optimal: true,
        };
    }
    let mut encoder = EbmfEncoder::with_dont_cares(m, dont_care, best.len() - 1);
    let proved;
    loop {
        if encoder.bound() == 0 {
            proved = true;
            break;
        }
        match encoder.solve() {
            SolveResult::Sat => {
                let p = encoder.extract_partition();
                debug_assert!(validate_completion(&p, m, dont_care).is_ok());
                best = p;
                if best.len() == 1 {
                    proved = true;
                    break;
                }
                encoder.narrow(best.len() - 1);
            }
            SolveResult::Unsat => {
                proved = true;
                break;
            }
            SolveResult::Unknown => {
                proved = false;
                break;
            }
        }
    }
    CompletionOutcome {
        partition: best,
        proved_optimal: proved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binary_rank, lower_bound};

    #[test]
    fn dont_cares_strictly_help_on_identity() {
        // I_3 needs 3 rectangles; with all off-diagonals don't-care, one
        // 3×3 rectangle suffices.
        let m = BitMatrix::identity(3);
        let dc = BitMatrix::from_fn(3, 3, |i, j| i != j);
        assert_eq!(binary_rank(&m), 3);
        let out = complete_ebmf(&m, &dc);
        assert!(out.proved_optimal);
        assert_eq!(out.partition.len(), 1);
        assert!(validate_completion(&out.partition, &m, &dc).is_ok());
    }

    #[test]
    fn empty_dont_care_reduces_to_plain_ebmf() {
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let dc = BitMatrix::zeros(3, 3);
        let out = complete_ebmf(&m, &dc);
        assert!(out.proved_optimal);
        assert_eq!(out.partition.len(), 3, "Eq. (2) needs 3 without vacancies");
        assert!(out.partition.validate(&m).is_ok());
    }

    #[test]
    fn partial_dont_care_between_plain_and_full() {
        // Fig. 1b matrix with a few vacancies can only get easier.
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let dc = BitMatrix::from_fn(6, 6, |i, j| !m.get(i, j) && (i + j) % 3 == 0);
        let out = complete_ebmf(&m, &dc);
        assert!(out.proved_optimal);
        assert!(out.partition.len() <= 5);
        assert!(validate_completion(&out.partition, &m, &dc).is_ok());
    }

    #[test]
    fn heuristic_output_is_always_valid() {
        let m: BitMatrix = "1010\n0101\n1111".parse().unwrap();
        let dc = BitMatrix::from_fn(3, 4, |i, j| !m.get(i, j) && j == 0);
        let p = row_packing_with_dont_cares(&m, &dc, 5, 1);
        assert!(validate_completion(&p, &m, &dc).is_ok());
    }

    #[test]
    fn validate_completion_rejects_care_zero_cover() {
        let m: BitMatrix = "10\n00".parse().unwrap();
        let dc = BitMatrix::zeros(2, 2);
        let mut p = Partition::empty(2, 2);
        p.push(Rectangle::from_cells(2, 2, [(0, 0), (1, 0)]));
        assert!(matches!(
            validate_completion(&p, &m, &dc),
            Err(PartitionError::CoversZero { .. })
        ));
    }

    #[test]
    fn validate_completion_allows_dc_overlap() {
        // Two rectangles overlapping on a don't-care cell only.
        let m: BitMatrix = "11\n10".parse().unwrap();
        let dc: BitMatrix = "00\n01".parse().unwrap();
        let mut p = Partition::empty(2, 2);
        p.push(Rectangle::from_cells(2, 2, [(0, 0), (1, 0)])); // col 0
        p.push(Rectangle::from_cells(2, 2, [(0, 1), (1, 1)])); // col 1: (1,1) is DC
        assert!(validate_completion(&p, &m, &dc).is_ok());
    }

    #[test]
    fn validate_completion_detects_care_overlap() {
        let m: BitMatrix = "11".parse().unwrap();
        let dc = BitMatrix::zeros(1, 2);
        let mut p = Partition::empty(1, 2);
        p.push(Rectangle::from_cells(1, 2, [(0, 0), (0, 1)]));
        p.push(Rectangle::from_cells(1, 2, [(0, 1)]));
        assert!(matches!(
            validate_completion(&p, &m, &dc),
            Err(PartitionError::Overlap { .. })
        ));
    }

    #[test]
    fn lower_bound_not_binding_under_dont_cares() {
        // Sanity note test: rank of I_3 is 3, yet completion reached 1 —
        // the Eq. 3 bound genuinely does not apply to completion.
        let m = BitMatrix::identity(3);
        let lb = lower_bound(&m, false);
        assert_eq!(lb.value, 3);
        let dc = BitMatrix::from_fn(3, 3, |i, j| i != j);
        assert_eq!(complete_ebmf(&m, &dc).partition.len(), 1);
    }
}
