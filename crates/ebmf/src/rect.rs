//! Combinatorial rectangles — the rank-1 binary factors.

use std::fmt;

use bitmatrix::{BitMatrix, BitVec};

/// A combinatorial rectangle `X' × Y'`: a set of rows and a set of columns.
///
/// As a matrix it is the outer product of the two indicator vectors — a
/// rank-1 binary matrix that is 1 exactly on `rows × cols`. In the
/// addressing picture (paper Fig. 1a) the row set and column set are the
/// tones driving the two AOD axes during one shot.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitVec;
/// use rect_addr_ebmf::Rectangle;
///
/// let r = Rectangle::new(
///     BitVec::from_indices(4, [0, 2]),
///     BitVec::from_indices(5, [1, 3]),
/// );
/// assert_eq!(r.cell_count(), 4);
/// assert!(r.contains(2, 3) && !r.contains(1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rectangle {
    rows: BitVec,
    cols: BitVec,
}

impl Rectangle {
    /// Creates a rectangle from row and column indicator vectors.
    pub fn new(rows: BitVec, cols: BitVec) -> Self {
        Rectangle { rows, cols }
    }

    /// The single-cell rectangle `{i} × {j}` inside an `m × n` grid.
    ///
    /// # Panics
    ///
    /// Panics if `i >= m` or `j >= n`.
    pub fn singleton(m: usize, n: usize, i: usize, j: usize) -> Self {
        Rectangle {
            rows: BitVec::from_indices(m, [i]),
            cols: BitVec::from_indices(n, [j]),
        }
    }

    /// Builds the smallest rectangle containing all given cells
    /// (the product of their row set and column set).
    pub fn from_cells<I: IntoIterator<Item = (usize, usize)>>(
        m: usize,
        n: usize,
        cells: I,
    ) -> Self {
        let mut rows = BitVec::zeros(m);
        let mut cols = BitVec::zeros(n);
        for (i, j) in cells {
            rows.set(i, true);
            cols.set(j, true);
        }
        Rectangle { rows, cols }
    }

    /// Row indicator vector.
    pub fn rows(&self) -> &BitVec {
        &self.rows
    }

    /// Column indicator vector.
    pub fn cols(&self) -> &BitVec {
        &self.cols
    }

    /// Mutable row indicator (used by the completion search's vertical grow).
    pub(crate) fn rows_mut(&mut self) -> &mut BitVec {
        &mut self.rows
    }

    /// Whether the rectangle contains cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices exceed the indicator lengths.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.rows.get(i) && self.cols.get(j)
    }

    /// Number of cells (`|rows| · |cols|`).
    pub fn cell_count(&self) -> usize {
        self.rows.count_ones() * self.cols.count_ones()
    }

    /// Whether the rectangle is empty (no rows or no columns).
    pub fn is_empty(&self) -> bool {
        self.rows.is_zero() || self.cols.is_zero()
    }

    /// Iterates over the rectangle's cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .ones()
            .flat_map(move |i| self.cols.ones().map(move |j| (i, j)))
    }

    /// Whether two rectangles share a cell (both a row and a column).
    pub fn intersects(&self, other: &Rectangle) -> bool {
        !self.rows.is_disjoint(&other.rows) && !self.cols.is_disjoint(&other.cols)
    }

    /// The rectangle as a dense rank-1 matrix.
    pub fn to_matrix(&self) -> BitMatrix {
        BitMatrix::outer(&self.rows, &self.cols)
    }

    /// The Kronecker product rectangle: rows/cols of `self ⊗ other`, matching
    /// [`BitMatrix::kron`] index conventions. Used by the FTQC two-level
    /// construction (paper §V).
    pub fn kron(&self, other: &Rectangle) -> Rectangle {
        let kron_vec = |a: &BitVec, b: &BitVec| {
            let bl = b.len();
            BitVec::from_indices(
                a.len() * bl,
                a.ones().flat_map(|i| b.ones().map(move |k| i * bl + k)),
            )
        };
        Rectangle {
            rows: kron_vec(&self.rows, &other.rows),
            cols: kron_vec(&self.cols, &other.cols),
        }
    }
}

impl fmt::Display for Rectangle {
    /// Renders as `{rows} × {cols}` using index lists.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} × {:?}",
            self.rows.to_indices(),
            self.cols.to_indices()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains() {
        let r = Rectangle::singleton(3, 4, 1, 2);
        assert!(r.contains(1, 2));
        assert!(!r.contains(0, 2));
        assert_eq!(r.cell_count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_cells_closure() {
        // from_cells takes the product closure of the cells.
        let r = Rectangle::from_cells(4, 4, [(0, 1), (2, 3)]);
        assert!(r.contains(0, 3) && r.contains(2, 1));
        assert_eq!(r.cell_count(), 4);
    }

    #[test]
    fn cells_iteration_row_major() {
        let r = Rectangle::from_cells(3, 3, [(0, 0), (2, 2)]);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells, vec![(0, 0), (0, 2), (2, 0), (2, 2)]);
    }

    #[test]
    fn intersects_requires_shared_row_and_col() {
        let a = Rectangle::from_cells(4, 4, [(0, 0), (1, 1)]);
        let same_rows = Rectangle::from_cells(4, 4, [(0, 2), (1, 3)]);
        assert!(!a.intersects(&same_rows), "shared rows, disjoint cols");
        let overlapping = Rectangle::from_cells(4, 4, [(1, 1)]);
        assert!(a.intersects(&overlapping));
    }

    #[test]
    fn empty_rectangle() {
        let r = Rectangle::new(BitVec::zeros(3), BitVec::from_indices(3, [1]));
        assert!(r.is_empty());
        assert_eq!(r.cell_count(), 0);
        assert_eq!(r.cells().count(), 0);
    }

    #[test]
    fn to_matrix_matches_cells() {
        let r = Rectangle::from_cells(3, 5, [(0, 1), (2, 4)]);
        let m = r.to_matrix();
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), r.contains(i, j));
            }
        }
    }

    #[test]
    fn kron_matches_matrix_kron() {
        let a = Rectangle::from_cells(2, 2, [(0, 1)]);
        let b = Rectangle::from_cells(3, 2, [(1, 0), (2, 1)]);
        let k = a.kron(&b);
        assert_eq!(k.to_matrix(), a.to_matrix().kron(&b.to_matrix()));
    }

    #[test]
    fn display_shows_indices() {
        let r = Rectangle::from_cells(3, 3, [(0, 2), (1, 2)]);
        assert_eq!(r.to_string(), "[0, 1] × [2]");
    }
}
