//! The graph-theoretic view: biclique partitions of bipartite graphs
//! (paper §II, Fig. 2a).
//!
//! Interpreting the matrix as the biadjacency matrix of a bipartite graph —
//! left vertices = rows, right vertices = columns, edges = 1-cells — every
//! rectangle is a *biclique* (complete bipartite subgraph) and an EBMF is a
//! partition of the edge set into bicliques. This module provides the
//! conversion plus the *normal set basis* reading used to motivate row
//! packing.

use bitmatrix::BitMatrix;

use crate::Partition;

/// A bipartite graph given by adjacency lists of the left side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartite {
    /// Number of left vertices (matrix rows).
    pub num_left: usize,
    /// Number of right vertices (matrix columns).
    pub num_right: usize,
    /// `adj[i]` lists the right neighbours of left vertex `i`, ascending.
    pub adj: Vec<Vec<usize>>,
}

impl Bipartite {
    /// Builds the bipartite graph of a biadjacency matrix.
    pub fn from_matrix(m: &BitMatrix) -> Self {
        Bipartite {
            num_left: m.nrows(),
            num_right: m.ncols(),
            adj: (0..m.nrows()).map(|i| m.row(i).to_indices()).collect(),
        }
    }

    /// Reconstructs the biadjacency matrix.
    pub fn to_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.num_left, self.num_right);
        for (i, nbrs) in self.adj.iter().enumerate() {
            for &j in nbrs {
                m.set(i, j, true);
            }
        }
        m
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Degree of left vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn left_degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }
}

/// A biclique: complete bipartite subgraph given by its two vertex sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biclique {
    /// Left vertices (rows).
    pub left: Vec<usize>,
    /// Right vertices (columns).
    pub right: Vec<usize>,
}

impl Biclique {
    /// Number of edges in the biclique.
    pub fn num_edges(&self) -> usize {
        self.left.len() * self.right.len()
    }
}

/// Reads a rectangle partition as a biclique partition (paper Fig. 2a).
pub fn as_bicliques(p: &Partition) -> Vec<Biclique> {
    p.iter()
        .map(|r| Biclique {
            left: r.rows().to_indices(),
            right: r.cols().to_indices(),
        })
        .collect()
}

/// The *normal set basis* view (paper §II): each left vertex's neighbour
/// set decomposed as a disjoint union of basis sets — the partition's
/// column supports, restricted to rectangles containing that row.
///
/// Returns `(basis, decomposition)` where `decomposition[i]` lists indices
/// into `basis` whose union is row `i`'s neighbour set.
#[allow(clippy::needless_range_loop)]
pub fn normal_set_basis(p: &Partition) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let (nrows, _) = p.shape();
    let basis: Vec<Vec<usize>> = p.iter().map(|r| r.cols().to_indices()).collect();
    let mut decomposition = vec![Vec::new(); nrows];
    for (k, r) in p.iter().enumerate() {
        for i in r.rows().ones() {
            decomposition[i].push(k);
        }
    }
    (basis, decomposition)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::{row_packing, PackingConfig};

    fn fig2a() -> BitMatrix {
        // The 6×6 matrix of paper Fig. 2.
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    #[test]
    fn graph_matrix_roundtrip() {
        let m = fig2a();
        let g = Bipartite::from_matrix(&m);
        assert_eq!(g.to_matrix(), m);
        assert_eq!(g.num_edges(), m.count_ones());
        assert_eq!(g.left_degree(0), 3);
    }

    #[test]
    fn bicliques_partition_the_edges() {
        let m = fig2a();
        let p = row_packing(&m, &PackingConfig::with_trials(20));
        assert!(p.validate(&m).is_ok());
        let bicliques = as_bicliques(&p);
        let edge_total: usize = bicliques.iter().map(Biclique::num_edges).sum();
        assert_eq!(edge_total, m.count_ones(), "edge-disjoint and exhaustive");
    }

    #[test]
    fn normal_set_basis_decomposes_rows() {
        let m = fig2a();
        let p = row_packing(&m, &PackingConfig::with_trials(20));
        let (basis, decomposition) = normal_set_basis(&p);
        assert_eq!(basis.len(), p.len());
        for i in 0..m.nrows() {
            let mut union: Vec<usize> = decomposition[i]
                .iter()
                .flat_map(|&k| basis[k].iter().copied())
                .collect();
            union.sort_unstable();
            assert_eq!(union, m.row(i).to_indices(), "row {i} decomposition");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite::from_matrix(&BitMatrix::zeros(3, 4));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.to_matrix(), BitMatrix::zeros(3, 4));
    }
}
