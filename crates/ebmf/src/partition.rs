//! Rectangle partitions — exact binary matrix factorizations in rectangle
//! form.

use std::fmt;

use bitmatrix::{BitMatrix, BitVec};

use crate::Rectangle;

/// A list of pairwise-disjoint rectangles partitioning the 1s of a matrix.
///
/// `Partition` is the EBMF witness: if `validate(&m)` succeeds, then
/// `m = Σ_i P_i` with each `P_i` the rank-1 matrix of rectangle `i` and the
/// sum taken over ℝ, so `len()` upper-bounds the binary rank of `m` — and
/// equals it when produced by the exact solver. In the addressing picture,
/// `len()` is the *depth*: the number of AOD shots needed.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitMatrix;
/// use rect_addr_ebmf::{Partition, Rectangle};
///
/// let m: BitMatrix = "11\n11".parse()?;
/// let p = Partition::from_rectangles(2, 2, vec![
///     Rectangle::from_cells(2, 2, [(0, 0), (1, 1)]), // full 2×2 block
/// ]);
/// assert!(p.validate(&m).is_ok());
/// assert_eq!(p.len(), 1);
/// # Ok::<(), bitmatrix::ParseMatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    nrows: usize,
    ncols: usize,
    rects: Vec<Rectangle>,
}

/// Why a [`Partition`] fails validation against a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The partition's grid shape differs from the matrix shape.
    ShapeMismatch {
        /// Shape stored in the partition.
        partition: (usize, usize),
        /// Shape of the matrix being validated against.
        matrix: (usize, usize),
    },
    /// A rectangle has no rows or no columns.
    EmptyRectangle {
        /// Index of the offending rectangle.
        index: usize,
    },
    /// A rectangle covers a cell that is 0 in the matrix.
    CoversZero {
        /// Index of the offending rectangle.
        index: usize,
        /// The 0-cell it covers.
        cell: (usize, usize),
    },
    /// Two rectangles overlap.
    Overlap {
        /// Indices of the overlapping rectangles.
        first: usize,
        /// Indices of the overlapping rectangles.
        second: usize,
    },
    /// A 1-cell of the matrix is not covered by any rectangle.
    Uncovered {
        /// The uncovered 1-cell.
        cell: (usize, usize),
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ShapeMismatch { partition, matrix } => write!(
                f,
                "partition shape {partition:?} does not match matrix shape {matrix:?}"
            ),
            PartitionError::EmptyRectangle { index } => {
                write!(f, "rectangle {index} is empty")
            }
            PartitionError::CoversZero { index, cell } => {
                write!(f, "rectangle {index} covers zero cell {cell:?}")
            }
            PartitionError::Overlap { first, second } => {
                write!(f, "rectangles {first} and {second} overlap")
            }
            PartitionError::Uncovered { cell } => {
                write!(f, "matrix 1-cell {cell:?} is not covered")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Creates an empty partition for an `m × n` grid.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Partition {
            nrows,
            ncols,
            rects: Vec::new(),
        }
    }

    /// Creates a partition from rectangles (not validated — call
    /// [`Partition::validate`]).
    pub fn from_rectangles(nrows: usize, ncols: usize, rects: Vec<Rectangle>) -> Self {
        Partition {
            nrows,
            ncols,
            rects,
        }
    }

    /// Grid shape `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of rectangles — the addressing *depth*.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the partition has no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The rectangles.
    pub fn rectangles(&self) -> &[Rectangle] {
        &self.rects
    }

    /// Iterator over the rectangles.
    pub fn iter(&self) -> std::slice::Iter<'_, Rectangle> {
        self.rects.iter()
    }

    /// Appends a rectangle (no validation).
    pub fn push(&mut self, r: Rectangle) {
        self.rects.push(r);
    }

    /// Checks that the rectangles exactly partition the 1s of `m`:
    /// nonempty, covering only 1-cells, pairwise disjoint, and jointly
    /// covering every 1-cell.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, see [`PartitionError`].
    pub fn validate(&self, m: &BitMatrix) -> Result<(), PartitionError> {
        if (self.nrows, self.ncols) != m.shape() {
            return Err(PartitionError::ShapeMismatch {
                partition: (self.nrows, self.ncols),
                matrix: m.shape(),
            });
        }
        for (idx, r) in self.rects.iter().enumerate() {
            if r.is_empty() {
                return Err(PartitionError::EmptyRectangle { index: idx });
            }
            for (i, j) in r.cells() {
                if !m.get(i, j) {
                    return Err(PartitionError::CoversZero {
                        index: idx,
                        cell: (i, j),
                    });
                }
            }
        }
        // Disjointness + coverage via per-row accumulation.
        let mut covered = BitMatrix::zeros(self.nrows, self.ncols);
        for (idx, r) in self.rects.iter().enumerate() {
            for i in r.rows().ones() {
                if !covered.row(i).is_disjoint(r.cols()) {
                    let second = idx;
                    // Identify the earlier overlapping rectangle for the report.
                    let clash_col = covered
                        .row(i)
                        .and(r.cols())
                        .first_one()
                        .expect("non-disjoint row must share a column");
                    let first = self.rects[..idx]
                        .iter()
                        .position(|q| q.contains(i, clash_col))
                        .expect("overlap must involve an earlier rectangle");
                    return Err(PartitionError::Overlap { first, second });
                }
                covered.row_mut(i).or_assign(r.cols());
            }
        }
        for i in 0..self.nrows {
            let missing = m.row(i).difference(covered.row(i));
            if let Some(j) = missing.first_one() {
                return Err(PartitionError::Uncovered { cell: (i, j) });
            }
        }
        Ok(())
    }

    /// Reassembles the matrix `Σ_i P_i` covered by the rectangles.
    pub fn to_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.nrows, self.ncols);
        for r in &self.rects {
            for i in r.rows().ones() {
                m.row_mut(i).or_assign(r.cols());
            }
        }
        m
    }

    /// The factor form of the EBMF: `H ∈ B^{m×r}` with column `k` the row
    /// indicator of rectangle `k`, and `W ∈ B^{r×n}` with row `k` its column
    /// indicator, so that `H·W` (over ℝ) reproduces the matrix when the
    /// partition is valid (paper Fig. 2b).
    pub fn to_factors(&self) -> (BitMatrix, BitMatrix) {
        let r = self.rects.len();
        let mut h = BitMatrix::zeros(self.nrows, r);
        let mut w = BitMatrix::zeros(r, self.ncols);
        for (k, rect) in self.rects.iter().enumerate() {
            for i in rect.rows().ones() {
                h.set(i, k, true);
            }
            w.set_row(k, rect.cols());
        }
        (h, w)
    }

    /// Rebuilds a partition from factor matrices (column `k` of `h` × row
    /// `k` of `w`).
    ///
    /// # Panics
    ///
    /// Panics if `h.ncols() != w.nrows()`.
    pub fn from_factors(h: &BitMatrix, w: &BitMatrix) -> Partition {
        assert_eq!(
            h.ncols(),
            w.nrows(),
            "factor inner dimensions differ: {} vs {}",
            h.ncols(),
            w.nrows()
        );
        let rects = (0..h.ncols())
            .map(|k| Rectangle::new(h.col(k), w.row(k).to_bitvec()))
            .collect();
        Partition {
            nrows: h.nrows(),
            ncols: w.ncols(),
            rects,
        }
    }

    /// Returns the label matrix: entry `(i, j)` is `Some(k)` when rectangle
    /// `k` covers the cell. Useful for rendering partitions (paper Fig. 1b
    /// uses distinct markers per rectangle).
    #[allow(clippy::needless_range_loop)]
    pub fn labels(&self) -> Vec<Vec<Option<usize>>> {
        let mut out = vec![vec![None; self.ncols]; self.nrows];
        for (k, r) in self.rects.iter().enumerate() {
            for (i, j) in r.cells() {
                out[i][j] = Some(k);
            }
        }
        out
    }

    /// Sorts rectangles canonically (by row indices, then column indices) so
    /// structurally equal partitions compare equal.
    pub fn canonicalize(&mut self) {
        self.rects.sort_by(|a, b| {
            (a.rows().to_indices(), a.cols().to_indices())
                .cmp(&(b.rows().to_indices(), b.cols().to_indices()))
        });
    }
}

impl fmt::Display for Partition {
    /// Renders the label matrix, one symbol per rectangle (`.` for zeros).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SYMBOLS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        let labels = self.labels();
        for (i, row) in labels.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            for &cell in row {
                match cell {
                    None => f.write_str(".")?,
                    Some(k) => {
                        let c = SYMBOLS[k % SYMBOLS.len()] as char;
                        write!(f, "{c}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Partition {
    type Item = &'a Rectangle;
    type IntoIter = std::slice::Iter<'a, Rectangle>;

    fn into_iter(self) -> Self::IntoIter {
        self.rects.iter()
    }
}

/// Helper: the union of multiple bit vectors.
#[allow(dead_code)]
pub(crate) fn union(vecs: &[&BitVec], len: usize) -> BitVec {
    let mut out = BitVec::zeros(len);
    for v in vecs {
        out.or_assign(v);
    }
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn fig1b() -> BitMatrix {
        "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap()
    }

    fn valid_partition_of_fig1b() -> Partition {
        // A hand-checked 5-rectangle partition of the Fig. 1b matrix:
        // rows 0,2 × cols {0,2};  rows 1,3 × cols {1,5}... — instead, build
        // from singleton decomposition of each distinct row group.
        let m = fig1b();
        let (dedup, groups) = m.dedup_rows();
        let mut p = Partition::empty(6, 6);
        for (k, g) in groups.iter().enumerate() {
            let rows = BitVec::from_indices(6, g.iter().copied());
            p.push(Rectangle::new(rows, dedup.row(k).to_bitvec()));
        }
        p
    }

    #[test]
    fn row_partition_validates() {
        let m = fig1b();
        let p = valid_partition_of_fig1b();
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.to_matrix(), m);
    }

    #[test]
    fn shape_mismatch_detected() {
        let p = Partition::empty(2, 2);
        let m = BitMatrix::zeros(3, 3);
        assert_eq!(
            p.validate(&m),
            Err(PartitionError::ShapeMismatch {
                partition: (2, 2),
                matrix: (3, 3)
            })
        );
    }

    #[test]
    fn empty_rectangle_detected() {
        let m: BitMatrix = "1".parse().unwrap();
        let mut p = Partition::empty(1, 1);
        p.push(Rectangle::new(BitVec::zeros(1), BitVec::zeros(1)));
        assert_eq!(
            p.validate(&m),
            Err(PartitionError::EmptyRectangle { index: 0 })
        );
    }

    #[test]
    fn covering_zero_detected() {
        let m: BitMatrix = "10\n00".parse().unwrap();
        let mut p = Partition::empty(2, 2);
        p.push(Rectangle::from_cells(2, 2, [(0, 0), (0, 1)]));
        assert_eq!(
            p.validate(&m),
            Err(PartitionError::CoversZero {
                index: 0,
                cell: (0, 1)
            })
        );
    }

    #[test]
    fn overlap_detected() {
        let m: BitMatrix = "11\n11".parse().unwrap();
        let mut p = Partition::empty(2, 2);
        p.push(Rectangle::from_cells(2, 2, [(0, 0), (1, 1)]));
        p.push(Rectangle::from_cells(2, 2, [(1, 1)]));
        assert_eq!(
            p.validate(&m),
            Err(PartitionError::Overlap {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn uncovered_detected() {
        let m: BitMatrix = "11".parse().unwrap();
        let mut p = Partition::empty(1, 2);
        p.push(Rectangle::singleton(1, 2, 0, 0));
        assert_eq!(
            p.validate(&m),
            Err(PartitionError::Uncovered { cell: (0, 1) })
        );
    }

    #[test]
    fn factors_roundtrip() {
        let p = valid_partition_of_fig1b();
        let (h, w) = p.to_factors();
        assert_eq!(h.shape(), (6, p.len()));
        assert_eq!(w.shape(), (p.len(), 6));
        let q = Partition::from_factors(&h, &w);
        assert_eq!(q.to_matrix(), p.to_matrix());
        assert_eq!(q.len(), p.len());
    }

    #[test]
    fn labels_mark_every_cell_once() {
        let p = valid_partition_of_fig1b();
        let m = fig1b();
        let labels = p.labels();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(labels[i][j].is_some(), m.get(i, j));
            }
        }
    }

    #[test]
    fn display_renders_label_grid() {
        let m: BitMatrix = "10\n01".parse().unwrap();
        let mut p = Partition::empty(2, 2);
        p.push(Rectangle::singleton(2, 2, 0, 0));
        p.push(Rectangle::singleton(2, 2, 1, 1));
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.to_string(), "0.\n.1");
    }

    #[test]
    fn canonicalize_makes_order_irrelevant() {
        let mut a = Partition::empty(2, 2);
        a.push(Rectangle::singleton(2, 2, 0, 0));
        a.push(Rectangle::singleton(2, 2, 1, 1));
        let mut b = Partition::empty(2, 2);
        b.push(Rectangle::singleton(2, 2, 1, 1));
        b.push(Rectangle::singleton(2, 2, 0, 0));
        assert_ne!(a, b);
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_matrix_empty_partition_is_valid() {
        let m = BitMatrix::zeros(3, 4);
        let p = Partition::empty(3, 4);
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.to_matrix(), m);
    }
}
