//! A second, independent exact solver: branch-and-bound over
//! cell-to-rectangle assignments.
//!
//! [`exact_search`] assigns the 1-cells, in row-major order, to existing or
//! fresh rectangle groups, propagating the closure property (paper Eq. 1)
//! eagerly:
//!
//! * when a group's row/column span grows, every *new* cell of its product
//!   region must be a 1 of `M` (otherwise the branch dies), and any such
//!   cell already assigned elsewhere kills the branch too;
//! * conversely, a cell geometrically covered by exactly one group's region
//!   is forced into that group, and a cell covered by two groups' regions
//!   is a contradiction (the rectangles would overlap).
//!
//! Leaves reached this way are automatically valid partitions, so the
//! search needs no leaf re-validation. The branch count is bounded by the
//! Bell number of the cell count — practical to ~20–25 cells — which makes
//! this solver the perfect *oracle* for cross-checking the SAT pipeline on
//! small instances (two entirely different algorithms must agree).

use bitmatrix::{BitMatrix, BitVec};

use crate::{Partition, Rectangle};

/// Result of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSearchOutcome {
    /// The best partition found.
    pub partition: Partition,
    /// Whether the search space was exhausted (true ⇒ the partition is a
    /// certified minimum).
    pub proved_optimal: bool,
    /// Search-tree nodes visited.
    pub nodes: u64,
}

#[derive(Clone)]
struct Group {
    rows: BitVec,
    cols: BitVec,
    members: Vec<usize>, // cell indices
}

struct Search<'a> {
    m: &'a BitMatrix,
    cells: Vec<(usize, usize)>,
    /// cell index at (i, j), if (i, j) is a 1-cell.
    index_of: Vec<Vec<Option<usize>>>,
    assignment: Vec<Option<usize>>, // cell -> group
    groups: Vec<Group>,
    best: Option<Vec<usize>>, // best complete assignment
    best_len: usize,
    nodes: u64,
    budget: u64,
    exhausted: bool,
}

/// Exact minimum-rectangle partition by branch-and-bound (see module docs).
///
/// `node_budget` caps the search; if it is hit, the best partition found so
/// far is returned with `proved_optimal = false`.
///
/// # Panics
///
/// Panics if `m` has more than 25 one-cells — the assignment search is
/// intended as a small-instance oracle; use [`sap`](crate::sap) beyond that.
pub fn exact_search(m: &BitMatrix, node_budget: u64) -> ExactSearchOutcome {
    let cells = m.ones_positions();
    assert!(
        cells.len() <= 25,
        "exact_search is an oracle for ≤ 25 cells, got {}",
        cells.len()
    );
    if cells.is_empty() {
        return ExactSearchOutcome {
            partition: Partition::empty(m.nrows(), m.ncols()),
            proved_optimal: true,
            nodes: 0,
        };
    }
    let mut index_of = vec![vec![None; m.ncols()]; m.nrows()];
    for (e, &(i, j)) in cells.iter().enumerate() {
        index_of[i][j] = Some(e);
    }
    let n_cells = cells.len();
    let mut search = Search {
        m,
        cells,
        index_of,
        assignment: vec![None; n_cells],
        groups: Vec::new(),
        best: None,
        best_len: n_cells + 1,
        nodes: 0,
        budget: node_budget,
        exhausted: true,
    };
    search.recurse(0);

    // A tiny budget can expire before the first leaf; fall back to the
    // all-singletons assignment (always a valid partition).
    let assignment = search.best.unwrap_or_else(|| (0..n_cells).collect());
    let num_groups = assignment.iter().copied().max().map_or(0, |g| g + 1);
    let mut rect_cells: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_groups];
    for (e, &g) in assignment.iter().enumerate() {
        rect_cells[g].push(search.cells[e]);
    }
    let mut partition = Partition::empty(m.nrows(), m.ncols());
    for g in rect_cells {
        partition.push(Rectangle::from_cells(m.nrows(), m.ncols(), g));
    }
    debug_assert!(partition.validate(m).is_ok());
    ExactSearchOutcome {
        partition,
        proved_optimal: search.exhausted,
        nodes: search.nodes,
    }
}

impl Search<'_> {
    fn recurse(&mut self, e: usize) {
        if self.nodes >= self.budget {
            self.exhausted = false;
            return;
        }
        self.nodes += 1;
        if self.groups.len() >= self.best_len {
            return; // cannot improve the incumbent
        }
        if e == self.cells.len() {
            // Leaf: by construction every region cell is assigned to its
            // group, so this is a valid partition.
            self.best_len = self.groups.len();
            self.best = Some(
                self.assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect(),
            );
            return;
        }
        let (i, j) = self.cells[e];
        // Groups whose region already covers this cell force the choice.
        let forced: Vec<usize> = (0..self.groups.len())
            .filter(|&g| self.groups[g].rows.get(i) && self.groups[g].cols.get(j))
            .collect();
        match forced.len() {
            0 => {
                // Try joining each existing group, then a fresh one.
                for g in 0..self.groups.len() {
                    self.try_assign(e, g);
                }
                // Fresh singleton group.
                let g = self.groups.len();
                self.groups.push(Group {
                    rows: BitVec::from_indices(self.m.nrows(), [i]),
                    cols: BitVec::from_indices(self.m.ncols(), [j]),
                    members: vec![e],
                });
                self.assignment[e] = Some(g);
                self.recurse(e + 1);
                self.assignment[e] = None;
                self.groups.pop();
            }
            1 => {
                // The covering group must take the cell (no span change:
                // the cell is inside the region already).
                let g = forced[0];
                self.groups[g].members.push(e);
                self.assignment[e] = Some(g);
                self.recurse(e + 1);
                self.assignment[e] = None;
                self.groups[g].members.pop();
            }
            _ => {
                // Two regions cover one cell: rectangles would overlap.
            }
        }
    }

    /// Attempts to put cell `e` into group `g`, growing the group's span
    /// and checking closure; recurses on success.
    fn try_assign(&mut self, e: usize, g: usize) {
        let (i, j) = self.cells[e];
        let grow_row = !self.groups[g].rows.get(i);
        let grow_col = !self.groups[g].cols.get(j);
        debug_assert!(grow_row || grow_col, "covered cells are forced, not tried");
        // Closure check: the new region cells are (i × old_cols),
        // (old_rows × j) and (i, j) itself. Every one must be a 1 of M and
        // not assigned to a different group; cells assigned to g are fine.
        let mut new_region: Vec<(usize, usize)> = vec![(i, j)];
        if grow_row {
            new_region.extend(self.groups[g].cols.ones().map(|c| (i, c)));
        }
        if grow_col {
            new_region.extend(self.groups[g].rows.ones().map(|r| (r, j)));
        }
        for &(r, c) in &new_region {
            if !self.m.get(r, c) {
                return; // region would cover a 0
            }
            let idx = self.index_of[r][c].expect("1-cell has an index");
            match self.assignment[idx] {
                Some(h) if h != g => return, // already owned elsewhere
                _ => {}
            }
        }
        // Also: growing the region must not swallow cells inside ANOTHER
        // group's region (overlap) — equivalent to the owned-elsewhere
        // check above since regions only contain their own assigned or
        // yet-unassigned cells... but a *region* may cover unassigned cells
        // claimed by another group's region. Check region disjointness:
        for (h, other) in self.groups.iter().enumerate() {
            if h == g {
                continue;
            }
            for &(r, c) in &new_region {
                if other.rows.get(r) && other.cols.get(c) {
                    return; // two regions would overlap at (r, c)
                }
            }
        }
        // Commit.
        self.groups[g].rows.set(i, true);
        self.groups[g].cols.set(j, true);
        self.groups[g].members.push(e);
        self.assignment[e] = Some(g);
        self.recurse(e + 1);
        self.assignment[e] = None;
        self.groups[g].members.pop();
        if grow_row {
            self.groups[g].rows.set(i, false);
        }
        if grow_col {
            self.groups[g].cols.set(j, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binary_rank, sap, SapConfig};

    #[test]
    fn eq2_matrix_is_three() {
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let out = exact_search(&m, u64::MAX);
        assert!(out.proved_optimal);
        assert_eq!(out.partition.len(), 3);
        assert!(out.partition.validate(&m).is_ok());
    }

    #[test]
    fn fig1b_is_five() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let out = exact_search(&m, u64::MAX);
        assert!(out.proved_optimal);
        assert_eq!(out.partition.len(), 5);
    }

    #[test]
    fn identity_and_ones() {
        assert_eq!(
            exact_search(&BitMatrix::identity(4), u64::MAX)
                .partition
                .len(),
            4
        );
        assert_eq!(
            exact_search(&BitMatrix::ones(4, 5), u64::MAX)
                .partition
                .len(),
            1
        );
        assert_eq!(exact_search(&BitMatrix::zeros(3, 3), 10).partition.len(), 0);
    }

    #[test]
    fn agrees_with_sat_on_pseudorandom_matrices() {
        // Two entirely independent exact algorithms must agree.
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let m = BitMatrix::from_fn(5, 5, |_, _| rnd() % 100 < 45);
            if m.count_ones() > 14 {
                continue; // keep the oracle fast
            }
            let bnb = exact_search(&m, u64::MAX);
            assert!(bnb.proved_optimal);
            let satr = sap(&m, &SapConfig::default());
            assert!(satr.proved_optimal);
            assert_eq!(
                bnb.partition.len(),
                satr.depth(),
                "trial {trial}: B&B {} vs SAT {}\n{m}",
                bnb.partition.len(),
                satr.depth()
            );
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let out = exact_search(&m, 3);
        assert!(!out.proved_optimal);
        assert!(
            out.partition.validate(&m).is_ok(),
            "incumbent is still valid"
        );
    }

    #[test]
    #[should_panic(expected = "25 cells")]
    fn too_many_cells_rejected() {
        exact_search(&BitMatrix::ones(6, 6), 10);
    }

    #[test]
    fn matches_binary_rank_helper() {
        let m: BitMatrix = "1100\n0110\n0011\n1001".parse().unwrap();
        assert_eq!(exact_search(&m, u64::MAX).partition.len(), binary_rank(&m));
    }
}
