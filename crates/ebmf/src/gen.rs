//! The paper's three benchmark families (§IV-A).
//!
//! * [`random_benchmark`] — iid Bernoulli matrices at a given occupancy;
//! * [`known_optimal_benchmark`] — `M = Σ_{i<k} cᵢ·rᵢ` with pairwise
//!   disjoint rows and linearly independent columns, so `rank_ℝ = r_B = k`
//!   by construction (Eq. 3 certifies the k-rectangle partition);
//! * [`gap_benchmark`] — designed so the real rank undershoots the binary
//!   rank: `k` different two-part decompositions of one hidden row `r`
//!   give `2k` rows of real rank `k+1`, but recombining them with binary
//!   (non-negative) coefficients needs more rectangles.
//!
//! All generators take explicit seeds; a `(family, parameters, seed)` triple
//! identifies an instance across runs and machines.

use bitmatrix::{random_matrix, random_vec, BitMatrix, BitVec};
use linalg::rank_gfp_max;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::Partition;
use crate::Rectangle;

/// A generated benchmark instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// The instance matrix.
    pub matrix: BitMatrix,
    /// Family tag (`"rand"`, `"opt"`, `"gap"`).
    pub family: &'static str,
    /// Human-readable parameter summary.
    pub params: String,
    /// Seed used to generate the instance.
    pub seed: u64,
    /// Known optimal depth, when the construction certifies one.
    pub known_optimal: Option<usize>,
}

/// Random matrix benchmark at the given occupancy.
pub fn random_benchmark(nrows: usize, ncols: usize, occupancy: f64, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    Benchmark {
        matrix: random_matrix(nrows, ncols, occupancy, &mut rng),
        family: "rand",
        params: format!("{nrows}x{ncols}, occ {:.0}%", occupancy * 100.0),
        seed,
        known_optimal: None,
    }
}

/// Known-optimal benchmark: `k` rectangles `cᵢ × rᵢ` with pairwise disjoint
/// (hence independent) rows `rᵢ` and linearly independent columns `cᵢ`, so
/// that `rank_ℝ(M) = k` certifies the construction as optimal.
///
/// Also returns the constructing partition.
///
/// # Panics
///
/// Panics if `k` exceeds `min(nrows, ncols)` (no such construction exists).
pub fn known_optimal_benchmark(
    nrows: usize,
    ncols: usize,
    k: usize,
    seed: u64,
) -> (Benchmark, Partition) {
    assert!(
        k <= nrows.min(ncols) && k >= 1,
        "rank {k} impossible for {nrows}x{ncols}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Disjoint nonempty rows: deal the column indices into k buckets, each
    // bucket seeded with one column to be nonempty; leftovers join random
    // buckets (possibly none — a column may stay unused).
    let mut cols: Vec<usize> = (0..ncols).collect();
    cols.shuffle(&mut rng);
    let mut rows: Vec<BitVec> = (0..k).map(|_| BitVec::zeros(ncols)).collect();
    for (b, &c) in cols.iter().take(k).enumerate() {
        rows[b].set(c, true);
    }
    for &c in cols.iter().skip(k) {
        if rng.gen_bool(0.7) {
            rows[rng.gen_range(0..k)].set(c, true);
        }
    }
    // Linearly independent nonzero column selectors: rejection-sample until
    // the k×k-ish selector matrix has full rank over a large prime field.
    let cols_sel: Vec<BitVec> = loop {
        let candidate: Vec<BitVec> = (0..k)
            .map(|_| loop {
                let v = random_vec(nrows, 0.5, &mut rng);
                if !v.is_zero() {
                    break v;
                }
            })
            .collect();
        let sel = BitMatrix::from_fn(nrows, k, |i, b| candidate[b].get(i));
        if rank_gfp_max(&sel) == k {
            break candidate;
        }
    };
    let mut partition = Partition::empty(nrows, ncols);
    let mut matrix = BitMatrix::zeros(nrows, ncols);
    for b in 0..k {
        let rect = Rectangle::new(cols_sel[b].clone(), rows[b].clone());
        for i in rect.rows().ones() {
            matrix.row_mut(i).or_assign(rect.cols());
        }
        partition.push(rect);
    }
    debug_assert!(partition.validate(&matrix).is_ok());
    (
        Benchmark {
            matrix,
            family: "opt",
            params: format!("{nrows}x{ncols}, k={k}"),
            seed,
            known_optimal: Some(k),
        },
        partition,
    )
}

/// Gap benchmark: `k` row pairs, each a random two-part split of one hidden
/// row `r` (`r = r'ᵢ + r''ᵢ`), padded with random rows. The `2k` pair rows
/// have real rank `k + 1`, but an EBMF cannot use the negative coefficients
/// needed to reach it, so `r_B` exceeds the rank — the family that separates
/// the trivial heuristic from row packing in the paper's Table I.
///
/// # Panics
///
/// Panics if `2k > nrows` or `k == 0`.
pub fn gap_benchmark(nrows: usize, ncols: usize, k: usize, seed: u64) -> Benchmark {
    assert!(
        k >= 1 && 2 * k <= nrows,
        "need 2k ≤ nrows, got k={k}, m={nrows}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // The hidden row needs at least 2 ones to split into nonempty parts;
    // at 50% occupancy on ≥ 4 columns this is almost immediate.
    let r = loop {
        let v = random_vec(ncols, 0.5, &mut rng);
        if v.count_ones() >= 2 {
            break v;
        }
    };
    let mut matrix = BitMatrix::zeros(nrows, ncols);
    for pair in 0..k {
        // Random split of r into two nonempty disjoint parts.
        let (a, b) = loop {
            let mut a = BitVec::zeros(ncols);
            let mut b = BitVec::zeros(ncols);
            for j in r.ones() {
                if rng.gen_bool(0.5) {
                    a.set(j, true);
                } else {
                    b.set(j, true);
                }
            }
            if !a.is_zero() && !b.is_zero() {
                break (a, b);
            }
        };
        matrix.set_row(2 * pair, &a);
        matrix.set_row(2 * pair + 1, &b);
    }
    for i in 2 * k..nrows {
        matrix.set_row(i, random_vec(ncols, 0.5, &mut rng));
    }
    Benchmark {
        matrix,
        family: "gap",
        params: format!("{nrows}x{ncols}, {k} pairs"),
        seed,
        known_optimal: None,
    }
}

/// The full benchmark suite of the paper's Table I, as `(set name, cases)`.
///
/// Small-set sizes (10×10, 10×20, 10×30) use occupancies 10%–90% with
/// `per_cell` instances each; the 100×100 set uses occupancies
/// 1/2/5/10/20%; the known-optimal set uses k = 1..=10; the gap sets use
/// 2–5 row pairs with `gap_cases` instances each.
pub fn table1_suite(per_cell: usize, gap_cases: usize) -> Vec<(String, Vec<Benchmark>)> {
    let mut suite = Vec::new();
    for (nrows, ncols) in [(10, 10), (10, 20), (10, 30)] {
        let mut cases = Vec::new();
        for occ10 in 1..=9 {
            let occ = occ10 as f64 / 10.0;
            for c in 0..per_cell {
                let seed = (nrows * 1000 + ncols * 10 + occ10) as u64 * 1000 + c as u64;
                cases.push(random_benchmark(nrows, ncols, occ, seed));
            }
        }
        suite.push((format!("{nrows}x{ncols}, rand"), cases));
    }
    {
        let mut cases = Vec::new();
        for (idx, occ) in [0.01, 0.02, 0.05, 0.10, 0.20].into_iter().enumerate() {
            for c in 0..per_cell {
                let seed = 77_000 + (idx * per_cell + c) as u64;
                cases.push(random_benchmark(100, 100, occ, seed));
            }
        }
        suite.push(("100x100, rand".to_string(), cases));
    }
    {
        let mut cases = Vec::new();
        for k in 1..=10 {
            for c in 0..per_cell {
                let seed = 88_000 + (k * per_cell + c) as u64;
                cases.push(known_optimal_benchmark(10, 10, k, seed).0);
            }
        }
        suite.push(("10x10, opt".to_string(), cases));
    }
    for k in 2..=5 {
        let mut cases = Vec::new();
        for c in 0..gap_cases {
            let seed = 99_000 + (k * gap_cases + c) as u64;
            cases.push(gap_benchmark(10, 10, k, seed));
        }
        suite.push((format!("10x10, gap, {k}"), cases));
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::real_rank;

    #[test]
    fn random_benchmark_is_reproducible() {
        let a = random_benchmark(10, 10, 0.5, 42);
        let b = random_benchmark(10, 10, 0.5, 42);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.family, "rand");
    }

    #[test]
    fn known_optimal_has_rank_k() {
        for k in 1..=8 {
            let (bench, partition) = known_optimal_benchmark(10, 10, k, 7 + k as u64);
            assert_eq!(partition.len(), k);
            assert!(partition.validate(&bench.matrix).is_ok());
            let rr = real_rank(&bench.matrix);
            assert!(rr.exact);
            assert_eq!(rr.rank, k, "construction must have real rank k={k}");
            assert_eq!(bench.known_optimal, Some(k));
        }
    }

    #[test]
    fn known_optimal_rows_are_disjoint() {
        let (_, partition) = known_optimal_benchmark(10, 10, 5, 3);
        let rects = partition.rectangles();
        for a in 0..rects.len() {
            for b in (a + 1)..rects.len() {
                assert!(
                    rects[a].cols().is_disjoint(rects[b].cols()),
                    "row supports must be disjoint by construction"
                );
            }
        }
    }

    #[test]
    fn gap_benchmark_pairs_sum_to_same_row() {
        let bench = gap_benchmark(10, 10, 3, 11);
        let m = &bench.matrix;
        let r0 = m.row(0).or(m.row(1));
        for pair in 1..3 {
            let r = m.row(2 * pair).or(m.row(2 * pair + 1));
            assert_eq!(r, r0, "every pair reassembles the hidden row");
            assert!(m.row(2 * pair).is_disjoint(m.row(2 * pair + 1)));
            assert!(!m.row(2 * pair).is_zero() && !m.row(2 * pair + 1).is_zero());
        }
    }

    #[test]
    fn gap_benchmark_rank_at_most_m_minus_k_plus_1() {
        // 2k pair rows span a (k+1)-dimensional space; total rank is at most
        // (k+1) + (m−2k) = m−k+1 (paper §IV-A).
        for k in 2..=5 {
            let bench = gap_benchmark(10, 10, k, 31 + k as u64);
            let rr = real_rank(&bench.matrix);
            assert!(rr.rank <= 10 - k + 1, "k={k}: rank {} above m-k+1", rr.rank);
        }
    }

    #[test]
    fn table1_suite_shape() {
        let suite = table1_suite(2, 3);
        let names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "10x10, rand",
                "10x20, rand",
                "10x30, rand",
                "100x100, rand",
                "10x10, opt",
                "10x10, gap, 2",
                "10x10, gap, 3",
                "10x10, gap, 4",
                "10x10, gap, 5",
            ]
        );
        assert_eq!(suite[0].1.len(), 18); // 9 occupancies × 2
        assert_eq!(suite[3].1.len(), 10); // 5 occupancies × 2
        assert_eq!(suite[4].1.len(), 20); // 10 ranks × 2
        assert_eq!(suite[5].1.len(), 3);
    }

    #[test]
    #[should_panic(expected = "need 2k")]
    fn gap_rejects_too_many_pairs() {
        gap_benchmark(10, 10, 6, 0);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn known_optimal_rejects_excessive_rank() {
        known_optimal_benchmark(4, 4, 5, 0);
    }
}
