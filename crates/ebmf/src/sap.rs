//! SAP — *SMT and packing* (paper Algorithm 1), with the SMT oracle replaced
//! by the in-repo SAT encoder.
//!
//! The driver obtains a quick upper bound from row packing, then walks the
//! rectangle budget `b` downward with incremental SAT queries until either a
//! query is UNSAT (the incumbent is optimal), the budget drops below a sound
//! lower bound (the incumbent matches it — optimal), or a resource limit is
//! hit (the incumbent is returned as the best-so-far, exactly the anytime
//! behaviour the paper highlights for its Figure 4 cases).

use std::time::{Duration, Instant};

use bitmatrix::{BitMatrix, BitVec};
use linalg::RealRank;
use sat::{CancelToken, SolveResult};

use crate::{
    lower_bound, row_packing, EbmfEncoder, LowerBound, PackingConfig, Partition, Rectangle,
};

/// Configuration of the [`sap`] solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SapConfig {
    /// Configuration of the row-packing phase.
    pub packing: PackingConfig,
    /// Include the greedy fooling-set bound in the termination bound.
    /// Off by default: the paper's Algorithm 1 terminates on the real rank.
    pub use_fooling_bound: bool,
    /// Emit value-precedence symmetry breaking clauses (recommended).
    pub symmetry_breaking: bool,
    /// Conflict budget per SAT query (`None` = run to completion).
    pub conflict_budget: Option<u64>,
    /// Wall-clock limit for the whole SAT phase, checked between queries.
    pub time_limit: Option<Duration>,
    /// Skip the SAT phase entirely when the matrix has more 1-cells than
    /// this (the paper's 100×100 instances are "too large for SMT").
    pub max_sat_cells: Option<usize>,
    /// Record a clausal proof and replay it through the independent RUP
    /// checker whenever optimality is concluded from an UNSAT answer. The
    /// verdict lands in [`SapOutcome::certified`] and the self-contained
    /// DRAT refutation in [`SapOutcome::certificate`]. Works on warm
    /// (resumed / rehydrated) sessions too: rehydrated cores are re-derived
    /// clause by clause so the trace stays self-justifying.
    pub certify: bool,
    /// Cooperative cancellation: when the token trips, the SAT phase stops
    /// at its next conflict or decision (even mid-query) and the best
    /// incumbent found so far is returned. `None` disables the hook. This is
    /// how the `rect-addr-engine` portfolio runner reclaims a worker whose
    /// time budget expired.
    pub cancel: Option<CancelToken>,
}

impl Default for SapConfig {
    fn default() -> Self {
        SapConfig {
            packing: PackingConfig::default(),
            use_fooling_bound: false,
            symmetry_breaking: true,
            conflict_budget: None,
            time_limit: None,
            max_sat_cells: None,
            certify: false,
            cancel: None,
        }
    }
}

impl SapConfig {
    /// Config with the given number of packing trials (other fields default).
    pub fn with_trials(trials: usize) -> Self {
        SapConfig {
            packing: PackingConfig::with_trials(trials),
            ..SapConfig::default()
        }
    }
}

/// Per-clause conflict budget when a rehydrated core is re-derived under
/// [`SapConfig::certify`]. Most exported clauses re-derive by propagation
/// alone or within a handful of conflicts (they were consequences of the
/// same formula); the cap bounds the worst case so rehydration never costs
/// more than a fraction of a fresh descent.
const CORE_DERIVE_EFFORT: u64 = 100;

/// One SAT query made by the descending loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatQuery {
    /// The bound `b` queried (`r_B ≤ b`?).
    pub bound: usize,
    /// The answer.
    pub result: SolveResult,
    /// Wall-clock seconds spent in this query.
    pub seconds: f64,
    /// Conflicts spent in this query.
    pub conflicts: u64,
    /// Decisions spent in this query.
    pub decisions: u64,
    /// Literals propagated in this query.
    pub propagations: u64,
}

/// Phase timings and query log — the data behind the paper's Figure 4.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SapStats {
    /// Seconds spent in the row-packing heuristic.
    pub packing_seconds: f64,
    /// Seconds spent computing lower bounds.
    pub bound_seconds: f64,
    /// Seconds spent in SAT solving (the paper's "SMT" share).
    pub sat_seconds: f64,
    /// Per-query log, in descending-bound order.
    pub queries: Vec<SatQuery>,
}

impl SapStats {
    /// Total wall-clock seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.packing_seconds + self.bound_seconds + self.sat_seconds
    }
}

/// A self-contained DRAT certificate of one refuted depth query
/// `r_B(M) ≤ bound`, emitted when [`SapConfig::certify`] is set and
/// optimality was concluded from an UNSAT answer.
///
/// The pair (`cnf`, `drat`) is independently checkable: `cnf` holds the
/// full encoding **plus the active bound selectors as unit axioms**, and
/// `drat` is the lemma/deletion trace ending in the empty clause. Any DRAT
/// validator — the in-repo `rect-addr-certcheck` crate, or an external tool
/// such as `drat-trim` — can replay it with no knowledge of this solver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnsatCertificate {
    /// The refuted bound `b`: the certificate proves `r_B(M) > b`.
    pub bound: usize,
    /// DIMACS CNF of the axioms (encoding ∧ assumption units).
    pub cnf: String,
    /// DRAT refutation trace (text format, `d`-prefixed deletions).
    pub drat: String,
}

/// Result of [`sap`].
#[derive(Debug, Clone, PartialEq)]
pub struct SapOutcome {
    /// The best partition found (always valid for the input matrix).
    pub partition: Partition,
    /// Whether `partition.len()` was *proved* equal to `r_B(M)`.
    pub proved_optimal: bool,
    /// The lower bound used for termination.
    pub lower_bound: LowerBound,
    /// The real-rank component (reported in the paper's Table I/Fig. 4).
    pub real_rank: RealRank,
    /// When [`SapConfig::certify`] is set and optimality was concluded from
    /// an UNSAT answer: `Some(true)` iff the recorded clausal proof passed
    /// the independent RUP checker. `None` when optimality needed no SAT
    /// proof (heuristic met the rank floor) or certification was off.
    pub certified: Option<bool>,
    /// The exportable refutation behind a `certified` verdict: present
    /// exactly when certification was on and an UNSAT answer concluded the
    /// descent (cold **or** warm). `None` whenever `certified` is `None`.
    pub certificate: Option<UnsatCertificate>,
    /// Phase timings and the SAT query log.
    pub stats: SapStats,
}

impl SapOutcome {
    /// The number of rectangles of the best partition — an upper bound on
    /// (and, when `proved_optimal`, equal to) the binary rank.
    pub fn depth(&self) -> usize {
        self.partition.len()
    }
}

/// A persistent SAP solver for one matrix, warm-startable across runs.
///
/// The session owns the row-packing incumbent, the lower bound and — once
/// the descent has started — one incremental [`EbmfEncoder`] whose learnt
/// clauses survive between [`SapSession::run`] calls. A run that stops on an
/// exhausted budget leaves the session mid-descent; a later run **resumes**
/// from the same depth bound with every learnt clause retained, so the
/// conflicts already spent are never re-spent. The engine keeps one session
/// per canonical matrix class for exactly this reason: cache-adjacent jobs
/// (same class, fresh budgets) continue each other's SAT search instead of
/// re-encoding from scratch.
///
/// The depth bound is always encoded through assumption selector literals
/// ([`crate::EncoderOptions::assumption_bounds`]) — including under
/// [`SapConfig::certify`]: an UNSAT answer relative to assumptions is made
/// self-contained by appending the assumption core as unit axioms (see
/// [`sat::Solver::refutation_proof`]), so certification and warm starts
/// compose instead of excluding each other.
#[derive(Debug)]
pub struct SapSession {
    m: BitMatrix,
    lb: LowerBound,
    best: Partition,
    proved: bool,
    encoder: Option<EbmfEncoder>,
    /// A learnt-clause core waiting to be reinjected when the encoder is
    /// (re)built — the lazy half of session rehydration from disk.
    pending_core: Option<PendingCore>,
    /// SAT conflicts spent across all runs of this session.
    conflicts: u64,
    /// Construction-phase timings, reported by the first run only.
    packing_seconds: f64,
    bound_seconds: f64,
}

/// Encoder rebuild recipe carried by a rehydrated session until its first
/// SAT query actually needs the encoder.
#[derive(Debug, Clone)]
struct PendingCore {
    capacity: usize,
    symmetry_breaking: bool,
    core: Vec<Vec<i64>>,
}

/// The durable knowledge of a [`SapSession`], extracted by
/// [`SapSession::export`] and restored by [`SapSession::import`]. Plain
/// typed data — serialization format is the storage layer's business.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionExport {
    /// The matrix the session solves (canonical coordinates for the
    /// engine's per-class sessions).
    pub matrix: BitMatrix,
    /// The incumbent partition, one `(rows, cols)` index pair per
    /// rectangle.
    pub best: Vec<(Vec<usize>, Vec<usize>)>,
    /// Whether the incumbent depth was proved equal to the binary rank.
    pub proved: bool,
    /// SAT conflicts spent across all runs so far (bookkeeping only).
    pub conflicts: u64,
    /// Label capacity of the encoder, when a descent had started.
    pub encoder_capacity: Option<usize>,
    /// Whether the encoder was built with symmetry breaking.
    pub symmetry_breaking: bool,
    /// The learnt-clause core in DIMACS literal coding (empty when no
    /// descent had started).
    pub core: Vec<Vec<i64>>,
}

impl SapSession {
    /// Creates a session: runs row packing and the lower bounds, but no SAT.
    pub fn new(m: &BitMatrix, config: &SapConfig) -> Self {
        let t0 = Instant::now();
        let best = row_packing(m, &config.packing);
        let packing_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let lb = lower_bound(m, config.use_fooling_bound);
        let bound_seconds = t1.elapsed().as_secs_f64();

        debug_assert!(best.validate(m).is_ok());
        let proved = best.len() <= lb.value;
        SapSession {
            m: m.clone(),
            lb,
            best,
            proved,
            encoder: None,
            pending_core: None,
            conflicts: 0,
            packing_seconds,
            bound_seconds,
        }
    }

    /// Extracts the session's durable knowledge — incumbent, proved flag
    /// and (when a descent has started under assumption-encoded bounds)
    /// the strongest `max_core_clauses` learnt clauses — for spilling to
    /// disk. See [`SapSession::import`] for the inverse.
    pub fn export(&self, max_core_clauses: usize) -> SessionExport {
        let best = self
            .best
            .iter()
            .map(|r| (r.rows().to_indices(), r.cols().to_indices()))
            .collect();
        // Only assumption-bound encoders are exportable: a permanent
        // narrowing would bake the reached bound into the clause set, which
        // a rebuild at full capacity could not reproduce. (Every encoder
        // this session builds — certify or not — uses assumption bounds;
        // the filter guards against foreign construction paths only.)
        let encoder = self.encoder.as_ref().filter(|e| e.assumption_bounds());
        let (encoder_capacity, symmetry_breaking, core) = match (encoder, &self.pending_core) {
            (Some(e), _) => (
                Some(e.capacity()),
                e.options().symmetry_breaking,
                e.export_core(max_core_clauses),
            ),
            // Rehydrated but never queried since: pass the parked core
            // through unchanged, so back-to-back restarts don't shed it.
            (None, Some(p)) => (Some(p.capacity), p.symmetry_breaking, p.core.clone()),
            (None, None) => (None, true, Vec::new()),
        };
        SessionExport {
            matrix: self.m.clone(),
            best,
            proved: self.proved,
            conflicts: self.conflicts,
            encoder_capacity,
            symmetry_breaking,
            core,
        }
    }

    /// Rebuilds a session from [`SapSession::export`] output. The packing
    /// phase is skipped (the exported incumbent replaces it) and the
    /// learnt-clause core is held back until the first run that actually
    /// needs the encoder — rehydration is lazy beyond this validation.
    ///
    /// # Errors
    ///
    /// Rejects an export whose incumbent is not a valid partition of its
    /// matrix (the telltale of a snapshot mismatch); the caller should
    /// fall back to a cold session.
    pub fn import(export: &SessionExport) -> Result<SapSession, String> {
        let (nrows, ncols) = export.matrix.shape();
        let mut best = Partition::empty(nrows, ncols);
        for (rows, cols) in &export.best {
            if rows.iter().any(|&i| i >= nrows) || cols.iter().any(|&j| j >= ncols) {
                return Err("rectangle index out of range".to_string());
            }
            best.push(Rectangle::new(
                BitVec::from_indices(nrows, rows.iter().copied()),
                BitVec::from_indices(ncols, cols.iter().copied()),
            ));
        }
        best.validate(&export.matrix)
            .map_err(|e| format!("exported incumbent invalid: {e}"))?;
        let lb = lower_bound(&export.matrix, false);
        if export.proved && best.len() > export.matrix.nrows().min(export.matrix.ncols()) {
            return Err("proved incumbent deeper than the trivial bound".to_string());
        }
        if let Some(cap) = export.encoder_capacity {
            // Exported capacities are always 1..min(r,c) (the initial
            // packing incumbent never exceeds the trivial partition); an
            // out-of-range value is a mismatched snapshot — and an
            // unvalidated large one would be a memory bomb at rebuild.
            if cap == 0 || cap > nrows.min(ncols) {
                return Err(format!("encoder capacity {cap} out of range"));
            }
        }
        let pending_core = export.encoder_capacity.map(|capacity| PendingCore {
            capacity,
            symmetry_breaking: export.symmetry_breaking,
            core: export.core.clone(),
        });
        Ok(SapSession {
            m: export.matrix.clone(),
            lb,
            best,
            proved: export.proved,
            encoder: None,
            pending_core,
            conflicts: export.conflicts,
            packing_seconds: 0.0,
            bound_seconds: 0.0,
        })
    }

    /// The matrix this session solves.
    pub fn matrix(&self) -> &BitMatrix {
        &self.m
    }

    /// The best partition found so far (always valid for the matrix).
    pub fn best(&self) -> &Partition {
        &self.best
    }

    /// Whether the incumbent depth is proved equal to the binary rank.
    pub fn proved_optimal(&self) -> bool {
        self.proved
    }

    /// Total SAT conflicts spent across all runs of this session.
    pub fn total_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Adopts an externally-found partition (e.g. a cached result from a
    /// permuted duplicate) when it beats the current incumbent, so the next
    /// run descends from below it instead of re-deriving it.
    pub fn offer_incumbent(&mut self, p: &Partition) {
        debug_assert!(p.validate(&self.m).is_ok());
        if p.len() < self.best.len() {
            self.best = p.clone();
            if self.best.len() <= self.lb.value {
                self.proved = true;
            }
        }
    }

    /// Runs (or resumes) the depth descent under `config`'s budgets and
    /// returns the current outcome. Proved sessions return immediately.
    pub fn run(&mut self, config: &SapConfig) -> SapOutcome {
        let mut stats = SapStats {
            packing_seconds: std::mem::take(&mut self.packing_seconds),
            bound_seconds: std::mem::take(&mut self.bound_seconds),
            ..SapStats::default()
        };
        let skip_sat = config
            .max_sat_cells
            .is_some_and(|max| self.m.count_ones() > max);

        let mut certified = None;
        let mut certificate = None;
        if !self.proved && !skip_sat && self.best.len() > 1 {
            let sat_start = Instant::now();
            if self.encoder.is_none() {
                let pending = self.pending_core.take();
                let (capacity, symmetry_breaking) = match &pending {
                    // Rebuild byte-identically to the exporting encoder so
                    // the core's variable numbering lines up.
                    Some(p) => (p.capacity, p.symmetry_breaking),
                    None => (self.best.len() - 1, config.symmetry_breaking),
                };
                let enc_opts = crate::EncoderOptions {
                    symmetry_breaking,
                    proof_logging: config.certify,
                    assumption_bounds: true,
                    ..crate::EncoderOptions::new(capacity)
                };
                let mut encoder = EbmfEncoder::with_encoder_options(&self.m, None, enc_opts);
                if let Some(p) = pending {
                    // A structurally-broken core just costs the warm start;
                    // the fresh encoding stays sound either way.
                    if config.certify {
                        // Under certify a reinjected clause must never enter
                        // the trace as an unjustified axiom: re-derive each
                        // one with a bounded refutation of its negation, so
                        // it lands as a checked lemma. Clauses the effort
                        // cannot justify are dropped (warm-start cost only).
                        let _ = encoder.import_core_derived(&p.core, CORE_DERIVE_EFFORT);
                    } else {
                        let _ = encoder.import_core(&p.core);
                    }
                }
                self.encoder = Some(encoder);
            }
            let encoder = self.encoder.as_mut().expect("encoder just ensured");
            encoder.set_conflict_budget(config.conflict_budget);
            encoder.set_interrupt(config.cancel.clone());
            loop {
                // Resume point: one below the incumbent, clamped to what the
                // encoding can express (the incumbent may have improved past
                // the first run's starting capacity via `offer_incumbent`).
                let b = (self.best.len() - 1).min(encoder.capacity());
                if b < self.lb.value {
                    self.proved = true; // |best| == lb.value: matches the floor
                    break;
                }
                if config
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled)
                {
                    break; // anytime exit: keep the incumbent, optimality unproved
                }
                let stats_before = encoder.solver_stats();
                let tq = Instant::now();
                let result = if encoder.assumption_bounds() {
                    // Per-query budget through the resumable pool, so an
                    // exhausted query can be continued by the next run.
                    encoder.set_resumable_budget(config.conflict_budget);
                    encoder.solve_at(b)
                } else {
                    encoder.narrow(b);
                    encoder.solve()
                };
                let seconds = tq.elapsed().as_secs_f64();
                let spent = encoder.solver_stats().since(&stats_before);
                self.conflicts += spent.conflicts;
                stats.queries.push(SatQuery {
                    bound: b,
                    result,
                    seconds,
                    conflicts: spent.conflicts,
                    decisions: spent.decisions,
                    propagations: spent.propagations,
                });
                match result {
                    SolveResult::Sat => {
                        let p = encoder.extract_partition();
                        debug_assert!(p.validate(&self.m).is_ok());
                        debug_assert!(p.len() <= b);
                        self.best = p;
                        if self.best.len() <= self.lb.value {
                            self.proved = true;
                            break;
                        }
                    }
                    SolveResult::Unsat => {
                        // r_B > b, and |best| == b + 1.
                        self.proved = true;
                        if config.certify {
                            certified = Some(encoder.verify_unsat_proof().is_ok());
                            certificate = encoder.unsat_refutation().map(|p| UnsatCertificate {
                                bound: b,
                                cnf: p.to_dimacs_cnf(),
                                drat: p.to_drat(),
                            });
                        }
                        break;
                    }
                    SolveResult::Unknown => break, // budget exhausted: anytime exit
                }
                if let Some(limit) = config.time_limit {
                    if sat_start.elapsed() > limit {
                        break;
                    }
                }
            }
            stats.sat_seconds = sat_start.elapsed().as_secs_f64();
        }

        SapOutcome {
            partition: self.best.clone(),
            proved_optimal: self.proved,
            lower_bound: self.lb,
            real_rank: self.lb.real_rank,
            certified,
            certificate,
            stats,
        }
    }
}

/// Runs SAP (paper Algorithm 1) on `m`.
///
/// 1. Row packing provides a valid EBMF `P` (upper bound).
/// 2. The real rank (and optional extra bounds) provides the termination
///    floor (paper Eq. 3).
/// 3. A SAT encoder is built for `b = |P| − 1` and the bound is narrowed
///    after every satisfiable query; the incumbent is updated so an
///    interrupt at any time still returns the best solution found.
///
/// This is a one-shot wrapper over [`SapSession`]; long-lived callers (the
/// engine's per-canonical-class warm store) keep the session and resume it.
pub fn sap(m: &BitMatrix, config: &SapConfig) -> SapOutcome {
    SapSession::new(m, config).run(config)
}

/// The binary rank `r_B(m)`, computed exactly (no resource limits).
///
/// Practical for matrices up to roughly the paper's exact-benchmark sizes
/// (≤ 10×30); larger inputs may take exponential time.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitMatrix;
/// use rect_addr_ebmf::binary_rank;
///
/// let m: BitMatrix = "110\n011\n111".parse()?;
/// assert_eq!(binary_rank(&m), 3); // paper Eq. (2)
/// # Ok::<(), bitmatrix::ParseMatrixError>(())
/// ```
pub fn binary_rank(m: &BitMatrix) -> usize {
    let outcome = sap(m, &SapConfig::with_trials(20));
    assert!(
        outcome.proved_optimal,
        "sap without limits must prove optimality"
    );
    outcome.partition.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_is_five() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let out = sap(&m, &SapConfig::default());
        assert!(out.proved_optimal);
        assert_eq!(out.depth(), 5);
        assert!(out.partition.validate(&m).is_ok());
    }

    #[test]
    fn eq2_is_three_with_rank_three() {
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let out = sap(&m, &SapConfig::default());
        assert!(out.proved_optimal);
        assert_eq!(out.depth(), 3);
        assert_eq!(out.real_rank.rank, 3);
    }

    #[test]
    fn rank_gap_matrix_proved_by_unsat() {
        // XOR-style matrix where rank_ℝ < r_B: [[0,1,1],[1,0,1],[1,1,0]]
        // has rank 3 … use a genuine gap case instead: rows {110, 001, 111}.
        // rank = 2? [1,1,0],[0,0,1],[1,1,1]: row3 = row1+row2 → rank 2.
        // r_B: the 1s of row 111 can't merge across… compute: must be ≥ 2.
        let m: BitMatrix = "110\n001\n111".parse().unwrap();
        let out = sap(&m, &SapConfig::default());
        assert!(out.proved_optimal);
        assert_eq!(out.real_rank.rank, 2);
        assert_eq!(out.depth(), 2, "{:?}", out.partition.to_string());
    }

    #[test]
    fn zero_matrix_is_zero() {
        let out = sap(&BitMatrix::zeros(4, 4), &SapConfig::default());
        assert!(out.proved_optimal);
        assert_eq!(out.depth(), 0);
    }

    #[test]
    fn single_cell_is_one() {
        let m: BitMatrix = "01\n00".parse().unwrap();
        let out = sap(&m, &SapConfig::default());
        assert!(out.proved_optimal);
        assert_eq!(out.depth(), 1);
    }

    #[test]
    fn binary_rank_of_identity() {
        assert_eq!(binary_rank(&BitMatrix::identity(5)), 5);
    }

    #[test]
    fn max_sat_cells_skips_exact_phase() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig {
            max_sat_cells: Some(1),
            ..SapConfig::default()
        };
        let out = sap(&m, &cfg);
        assert!(out.stats.queries.is_empty(), "SAT phase must be skipped");
        assert!(out.partition.validate(&m).is_ok());
    }

    #[test]
    fn stats_record_queries() {
        let m = BitMatrix::identity(4); // packing finds 4 = rank: no SAT needed
        let out = sap(&m, &SapConfig::default());
        assert!(out.proved_optimal);
        assert!(out.stats.queries.is_empty());

        // Eq. (2) has rank 3 and the heuristic finds 3: also no SAT needed.
        // Force a SAT descent with a matrix whose packing result exceeds the
        // rank bound … the Fig. 1b matrix packs to 5 but has rank 5? Its
        // rank is 5, so again no queries if packing reaches 5. Use a gap
        // matrix: rank 2, r_B 3.
        let gap: BitMatrix = "1100\n0011\n1111\n1010".parse().unwrap();
        let out2 = sap(&gap, &SapConfig::default());
        assert!(out2.proved_optimal);
        if out2.depth() > out2.lower_bound.value {
            assert!(!out2.stats.queries.is_empty());
            let last = out2.stats.queries.last().unwrap();
            assert_eq!(last.result, SolveResult::Unsat);
        }
    }

    #[test]
    fn certified_optimality_on_fig1b() {
        // Fig. 1b's optimality rests on an UNSAT answer at b = 4 (the rank
        // floor is only 4); with `certify` the proof is replayed through
        // the independent RUP checker.
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig {
            certify: true,
            ..SapConfig::default()
        };
        let out = sap(&m, &cfg);
        assert!(out.proved_optimal);
        assert_eq!(out.depth(), 5);
        assert_eq!(
            out.certified,
            Some(true),
            "RUP checker must accept the proof"
        );
    }

    #[test]
    fn certified_outcome_carries_a_self_contained_certificate() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig {
            certify: true,
            ..SapConfig::default()
        };
        let out = sap(&m, &cfg);
        assert_eq!(out.certified, Some(true));
        let cert = out.certificate.expect("certificate present");
        assert_eq!(cert.bound, 4, "Fig. 1b optimality rests on UNSAT at 4");
        assert!(cert.cnf.starts_with("p cnf "));
        assert!(cert.drat.trim_end().ends_with("0"));
        // The DRAT trace must end by deriving the empty clause.
        assert_eq!(cert.drat.lines().last(), Some("0"));
    }

    #[test]
    fn certify_composes_with_warm_session_resume() {
        // The previously-skipped combination: a session that exhausts its
        // budget mid-descent and *resumes* — with certify on the whole way.
        let m = hard_matrix();
        let cfg = SapConfig {
            symmetry_breaking: false,
            conflict_budget: Some(500),
            packing: PackingConfig::with_trials(4),
            certify: true,
            ..SapConfig::default()
        };
        let mut session = SapSession::new(&m, &cfg);
        let mut runs = 0u32;
        let mut last = session.run(&cfg);
        while !session.proved_optimal() {
            last = session.run(&cfg);
            runs += 1;
            assert!(runs < 10_000, "session must converge");
        }
        assert!(runs > 1, "first slice must exhaust its budget");
        assert_eq!(
            last.certified,
            Some(true),
            "warm-path proof must check like a cold one"
        );
        let cert = last.certificate.expect("warm UNSAT emits a certificate");
        assert_eq!(cert.bound + 1, last.partition.len());
    }

    #[test]
    fn pending_core_rehydration_under_certify_is_honest_and_warm() {
        // Regression for the old `certify ⇒ drop the rehydrated core` rule:
        // importing a mid-descent export and continuing under certify must
        // (a) still produce a proof the independent checker accepts and
        // (b) actually resume — not silently restart from scratch.
        let m = hard_matrix();
        let cfg = SapConfig {
            symmetry_breaking: false,
            conflict_budget: Some(500),
            packing: PackingConfig::with_trials(4),
            ..SapConfig::default()
        };
        let mut donor = SapSession::new(&m, &cfg);
        for _ in 0..4 {
            if donor.proved_optimal() {
                break;
            }
            donor.run(&cfg);
        }
        let export = donor.export(100_000);
        assert!(!export.core.is_empty(), "mid-descent core must be nonempty");

        let certify_cfg = SapConfig {
            certify: true,
            ..cfg.clone()
        };
        let mut warm = SapSession::import(&export).expect("genuine export imports");
        let warm_start = warm.total_conflicts();
        let mut last = warm.run(&certify_cfg);
        let mut rounds = 0u32;
        while !warm.proved_optimal() {
            last = warm.run(&certify_cfg);
            rounds += 1;
            assert!(rounds < 10_000, "rehydrated certify session must converge");
        }
        assert_eq!(last.certified, Some(true), "rehydrated proof must verify");
        assert!(last.certificate.is_some());
        let warm_spent = warm.total_conflicts() - warm_start;

        let mut cold = SapSession::new(&m, &cfg);
        let mut cold_rounds = 0u32;
        while !cold.proved_optimal() {
            cold.run(&cfg);
            cold_rounds += 1;
            assert!(cold_rounds < 10_000);
        }
        assert!(
            warm_spent < cold.total_conflicts(),
            "certify must not silently discard the warm start: {warm_spent} vs {}",
            cold.total_conflicts()
        );
    }

    #[test]
    fn certification_not_applicable_without_unsat() {
        // Identity: packing meets the rank floor, no SAT query happens.
        let out = sap(
            &BitMatrix::identity(4),
            &SapConfig {
                certify: true,
                ..SapConfig::default()
            },
        );
        assert!(out.proved_optimal);
        assert_eq!(out.certified, None);
    }

    #[test]
    fn pre_cancelled_token_skips_sat_phase() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let cfg = SapConfig {
            cancel: Some(token),
            ..SapConfig::default()
        };
        let out = sap(&m, &cfg);
        // The incumbent is still the (valid) packing result; no query ran
        // and optimality was not claimed via SAT.
        assert!(out.partition.validate(&m).is_ok());
        assert!(out.stats.queries.is_empty());
        assert!(!out.proved_optimal);
    }

    /// A matrix whose descent needs enough conflicts that a small per-run
    /// budget leaves the session mid-descent at least once (a rank-gap
    /// instance whose final UNSAT query costs thousands of conflicts when
    /// symmetry breaking is off).
    fn hard_matrix() -> BitMatrix {
        crate::gen::gap_benchmark(10, 10, 3, 2).matrix
    }

    #[test]
    fn session_resumes_descent_across_runs() {
        let m = hard_matrix();
        let cfg = SapConfig {
            // No symmetry breaking keeps the final UNSAT query hard.
            symmetry_breaking: false,
            conflict_budget: Some(500),
            packing: PackingConfig::with_trials(4),
            ..SapConfig::default()
        };
        let mut session = SapSession::new(&m, &cfg);
        let mut runs = 0u32;
        while !session.proved_optimal() {
            let out = session.run(&cfg);
            assert!(out.partition.validate(&m).is_ok());
            runs += 1;
            assert!(runs < 10_000, "session must converge");
        }
        assert!(runs > 1, "first slice must exhaust its budget");

        // Cold baseline: the same budget restarted from scratch each round
        // makes no progress at all — it re-spends the same conflicts.
        let cold = sap(&m, &cfg);
        assert!(!cold.proved_optimal, "one cold slice must not prove it");
        // And the session's total spend stays close to a single unlimited
        // descent (no re-derivation), far below runs × cold-slice work.
        let unlimited = sap(
            &m,
            &SapConfig {
                conflict_budget: None,
                ..cfg.clone()
            },
        );
        assert!(unlimited.proved_optimal);
        let single_shot: u64 = unlimited.stats.queries.iter().map(|q| q.conflicts).sum();
        assert!(
            session.total_conflicts() <= single_shot.max(500) * 3,
            "warm resume must not blow up: {} vs single-shot {}",
            session.total_conflicts(),
            single_shot
        );
    }

    #[test]
    fn session_offer_incumbent_skips_proved_work() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig::default();
        let mut donor = SapSession::new(&m, &cfg);
        let proved = donor.run(&cfg);
        assert!(proved.proved_optimal);

        let mut session = SapSession::new(&m, &cfg);
        session.offer_incumbent(&proved.partition);
        assert_eq!(session.best().len(), 5);
        // The offered depth-5 incumbent is above the rank floor (4), so the
        // session still has to prove UNSAT at 4 — but never re-searches 5.
        let out = session.run(&cfg);
        assert!(out.proved_optimal);
        assert!(out.stats.queries.iter().all(|q| q.bound <= 4));
    }

    #[test]
    fn session_on_proved_matrix_runs_no_queries() {
        let cfg = SapConfig::default();
        let mut session = SapSession::new(&BitMatrix::identity(4), &cfg);
        assert!(session.proved_optimal(), "packing meets the rank floor");
        let out = session.run(&cfg);
        assert!(out.proved_optimal);
        assert!(out.stats.queries.is_empty());
        assert_eq!(session.total_conflicts(), 0);
    }

    #[test]
    fn exported_session_roundtrips_and_resumes_cheaper() {
        let m = hard_matrix();
        let cfg = SapConfig {
            symmetry_breaking: false,
            conflict_budget: Some(500),
            packing: PackingConfig::with_trials(4),
            ..SapConfig::default()
        };
        // Burn a few budget slices so the session sits mid-descent with a
        // real learnt-clause core.
        let mut donor = SapSession::new(&m, &cfg);
        for _ in 0..4 {
            if donor.proved_optimal() {
                break;
            }
            donor.run(&cfg);
        }
        let export = donor.export(100_000);
        assert_eq!(export.matrix, m);
        assert!(!export.core.is_empty(), "mid-descent core must be nonempty");

        // The rehydrated session must converge with (far) fewer fresh
        // conflicts than a cold session run under the same slicing.
        let mut warm = SapSession::import(&export).expect("genuine export imports");
        assert_eq!(warm.best().len(), donor.best().len());
        let warm_start = warm.total_conflicts();
        let mut rounds = 0u32;
        while !warm.proved_optimal() {
            warm.run(&cfg);
            rounds += 1;
            assert!(rounds < 10_000, "rehydrated session must converge");
        }
        let warm_spent = warm.total_conflicts() - warm_start;

        let mut cold = SapSession::new(&m, &cfg);
        let mut cold_rounds = 0u32;
        while !cold.proved_optimal() {
            cold.run(&cfg);
            cold_rounds += 1;
            assert!(cold_rounds < 10_000);
        }
        assert!(
            warm_spent < cold.total_conflicts(),
            "rehydrated descent must resume, not restart: {warm_spent} vs {}",
            cold.total_conflicts()
        );
    }

    #[test]
    fn proved_session_export_answers_instantly_after_import() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig::default();
        let mut donor = SapSession::new(&m, &cfg);
        assert!(donor.run(&cfg).proved_optimal);
        let export = donor.export(10_000);
        assert!(export.proved);

        let mut warm = SapSession::import(&export).expect("imports");
        assert!(warm.proved_optimal());
        let before = warm.total_conflicts();
        let out = warm.run(&cfg);
        assert!(out.proved_optimal);
        assert_eq!(out.partition.len(), 5);
        assert!(out.partition.validate(&m).is_ok());
        assert_eq!(warm.total_conflicts(), before, "no fresh SAT work");
    }

    #[test]
    fn import_rejects_mismatched_exports() {
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let cfg = SapConfig::default();
        let mut donor = SapSession::new(&m, &cfg);
        donor.run(&cfg);
        let good = donor.export(1_000);
        assert!(SapSession::import(&good).is_ok());

        // Out-of-range rectangle indices.
        let mut bad = good.clone();
        bad.best = vec![(vec![7], vec![0])];
        assert!(SapSession::import(&bad).is_err());

        // An incumbent that is not a partition of the matrix.
        let mut bad = good.clone();
        bad.best = vec![(vec![0], vec![0])];
        assert!(SapSession::import(&bad).is_err());

        // An absurd encoder capacity (memory-bomb guard).
        let mut bad = good.clone();
        bad.encoder_capacity = Some(10_000);
        assert!(SapSession::import(&bad).is_err());
        let mut bad = good;
        bad.encoder_capacity = Some(0);
        assert!(SapSession::import(&bad).is_err());
    }

    #[test]
    fn reexport_without_rehydration_keeps_the_core() {
        let m = hard_matrix();
        let cfg = SapConfig {
            symmetry_breaking: false,
            conflict_budget: Some(500),
            packing: PackingConfig::with_trials(4),
            ..SapConfig::default()
        };
        let mut donor = SapSession::new(&m, &cfg);
        donor.run(&cfg);
        let export = donor.export(100_000);
        assert!(!export.core.is_empty());
        // import → export without any run in between: the parked core must
        // survive the round trip (double-restart scenario).
        let warm = SapSession::import(&export).expect("imports");
        let again = warm.export(100_000);
        assert_eq!(again.core, export.core);
        assert_eq!(again.encoder_capacity, export.encoder_capacity);
    }

    #[test]
    fn anytime_budget_returns_valid_incumbent() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let cfg = SapConfig {
            conflict_budget: Some(1),
            ..SapConfig::default()
        };
        let out = sap(&m, &cfg);
        assert!(out.partition.validate(&m).is_ok());
        // With a 1-conflict budget the outcome may or may not be proved,
        // but the incumbent must be at least as good as packing alone.
        assert!(out.depth() <= 6);
    }
}
