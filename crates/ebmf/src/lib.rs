//! Exact binary matrix factorization (EBMF) — the core contribution of
//! *Depth-Optimal Addressing of 2D Qubit Array with 1D Controls Based on
//! Exact Binary Matrix Factorization* (DATE 2024).
//!
//! Given a binary pattern matrix `M`, an EBMF writes `M = Σ_i P_i` where
//! every `P_i` is 1 exactly on a combinatorial rectangle and the sum is over
//! ℝ, i.e. the rectangles are pairwise disjoint and cover exactly the 1s.
//! The minimum number of rectangles is the *binary rank* `r_B(M)` — the
//! minimum number of AOD shots needed to address the pattern. Deciding
//! `r_B(M) ≤ k` is NP-complete.
//!
//! The crate provides the paper's full algorithm suite:
//!
//! * [`trivial_partition`] — the `min(#rows, #cols)` baseline (§III-B);
//! * [`row_packing`] — Algorithm 2: shuffled greedy set-basis packing with
//!   the basis-update step, plus the §VI exact-cover (DLX) upgrade behind
//!   [`PackingConfig::exact_cover`];
//! * [`EbmfEncoder`] — the Eq. 4 decision problem `r_B(M) ≤ b` as CNF with
//!   value-precedence symmetry breaking and don't-care support;
//! * [`sap`] — Algorithm 1: packing upper bound, real-rank floor (Eq. 3),
//!   descending incremental SAT queries, anytime incumbent;
//! * [`gen`](mod@gen) — the three Table I benchmark families;
//! * [`tensor_partition`] / [`tensor_bounds`] — the §V FTQC two-level
//!   structure and the Eq. 5 sandwich;
//! * [`complete_ebmf`] — the §VI binary-matrix-completion extension
//!   (vacancies as don't-cares).
//!
//! # Examples
//!
//! ```
//! use bitmatrix::BitMatrix;
//! use rect_addr_ebmf::{sap, SapConfig};
//!
//! // The matrix of the paper's Figure 1b.
//! let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111".parse()?;
//! let outcome = sap(&m, &SapConfig::default());
//! assert!(outcome.proved_optimal);
//! assert_eq!(outcome.depth(), 5); // five AOD shots, provably minimal
//! # Ok::<(), bitmatrix::ParseMatrixError>(())
//! ```

mod bipartite;
mod bounds;
mod completion;
pub mod cover;
mod encode;
mod exact;
pub mod gen;
mod heuristic;
mod partition;
mod rect;
mod sap;
pub mod svg;
mod tensor;

pub use bipartite::{as_bicliques, normal_set_basis, Biclique, Bipartite};
pub use bounds::{lower_bound, BoundSource, LowerBound};
pub use completion::{
    complete_ebmf, row_packing_with_dont_cares, validate_completion, CompletionOutcome,
};
pub use encode::{AmoEncoding, EbmfEncoder, EncoderOptions};
pub use exact::{exact_search, ExactSearchOutcome};
pub use heuristic::{
    row_packing, row_packing_cancellable, row_packing_once, trivial_partition, PackingConfig,
    RowOrder,
};
pub use partition::{Partition, PartitionError};
pub use rect::Rectangle;
pub use sap::{
    binary_rank, sap, SapConfig, SapOutcome, SapSession, SapStats, SatQuery, SessionExport,
    UnsatCertificate,
};
pub use tensor::{tensor_bounds, tensor_partition, TensorBounds};

#[cfg(test)]
mod proptests {
    use super::*;
    use bitmatrix::BitMatrix;
    use proptest::prelude::*;

    fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = BitMatrix> {
        (1..=max_rows, 1..=max_cols).prop_flat_map(|(m, n)| {
            proptest::collection::vec(any::<bool>(), m * n)
                .prop_map(move |bits| BitMatrix::from_fn(m, n, |i, j| bits[i * n + j]))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn trivial_partition_is_valid(m in arb_matrix(9, 9)) {
            let p = trivial_partition(&m);
            prop_assert!(p.validate(&m).is_ok());
        }

        #[test]
        fn row_packing_is_valid_and_no_worse_than_trivial(m in arb_matrix(9, 9)) {
            let p = row_packing(&m, &PackingConfig::with_trials(3));
            prop_assert!(p.validate(&m).is_ok());
            prop_assert!(p.len() <= trivial_partition(&m).len());
        }

        #[test]
        fn packing_respects_rank_floor(m in arb_matrix(8, 8)) {
            // Any valid partition has at least rank_ℝ(M) rectangles (Eq. 3).
            let p = row_packing(&m, &PackingConfig::with_trials(3));
            let lb = lower_bound(&m, true);
            prop_assert!(p.len() >= lb.value,
                "partition {} below lower bound {}", p.len(), lb.value);
        }

        #[test]
        fn exact_cover_packing_not_worse(m in arb_matrix(7, 7)) {
            let plain = row_packing(&m, &PackingConfig::with_trials(3));
            let dlx_cfg = PackingConfig {
                exact_cover: true,
                ..PackingConfig::with_trials(3)
            };
            let dlx = row_packing(&m, &dlx_cfg);
            prop_assert!(dlx.validate(&m).is_ok());
            // Same seed, same orders: exact cover never leaves a residue
            // where greedy succeeds, so it is never worse per trial — and
            // best-of-trials inherits that.
            prop_assert!(dlx.len() <= plain.len());
        }

        #[test]
        fn sap_small_is_optimal_and_valid(m in arb_matrix(5, 5)) {
            let out = sap(&m, &SapConfig::default());
            prop_assert!(out.proved_optimal);
            prop_assert!(out.partition.validate(&m).is_ok());
            prop_assert!(out.depth() >= out.lower_bound.value);
            // Exhaustive cross-check against brute force where feasible.
            if m.count_ones() <= 9 {
                let brute = brute_force_binary_rank(&m);
                prop_assert_eq!(out.depth(), brute,
                    "SAP found {} but brute force says {}\n{}", out.depth(), brute, m);
            }
        }

        #[test]
        fn sap_agrees_with_independent_bnb(m in arb_matrix(5, 5)) {
            // Two unrelated exact algorithms (SAT descent vs closure-
            // propagating branch-and-bound) must compute the same r_B.
            prop_assume!(m.count_ones() <= 14);
            let bnb = exact_search(&m, u64::MAX);
            prop_assert!(bnb.proved_optimal);
            let satr = sap(&m, &SapConfig::default());
            prop_assert!(satr.proved_optimal);
            prop_assert_eq!(bnb.partition.len(), satr.depth());
        }

        #[test]
        fn boolean_rank_at_most_binary_rank(m in arb_matrix(4, 4)) {
            let (c, bool_rank) = cover::boolean_rank(&m);
            prop_assert!(cover::is_valid_cover(&c, &m));
            let bin = sap(&m, &SapConfig::default());
            prop_assert!(bool_rank <= bin.depth());
        }

        #[test]
        fn tensor_partition_valid(
            a in arb_matrix(4, 4),
            b in arb_matrix(3, 3),
        ) {
            let pa = row_packing(&a, &PackingConfig::with_trials(2));
            let pb = row_packing(&b, &PackingConfig::with_trials(2));
            let t = tensor_partition(&pa, &pb);
            prop_assert!(t.validate(&a.kron(&b)).is_ok());
        }

        #[test]
        fn completion_never_worse_than_plain(m in arb_matrix(5, 5)) {
            // All-zero DC mask: completion == plain EBMF. Nonzero mask can
            // only help. Use complement cells at random-ish parity.
            let dc = BitMatrix::from_fn(m.nrows(), m.ncols(),
                |i, j| !m.get(i, j) && (i * 31 + j * 17) % 3 == 0);
            let plain = sap(&m, &SapConfig::default());
            let completed = complete_ebmf(&m, &dc);
            prop_assert!(completed.proved_optimal);
            prop_assert!(validate_completion(&completed.partition, &m, &dc).is_ok());
            prop_assert!(completed.partition.len() <= plain.depth());
        }
    }

    /// Reference `r_B` by exhaustive search over set partitions of the
    /// 1-cells (callers cap at 9 cells; Bell(9) = 21147 partitions),
    /// recursing cell-by-cell into existing or new groups and validating
    /// the rectangle closure at the leaves.
    fn brute_force_binary_rank(m: &BitMatrix) -> usize {
        let cells = m.ones_positions();
        assert!(cells.len() <= 9, "brute force capped at 9 cells");
        if cells.is_empty() {
            return 0;
        }
        let mut best = cells.len();
        let mut groups: Vec<Vec<(usize, usize)>> = Vec::new();
        assign(m, &cells, 0, &mut groups, &mut best);
        best
    }

    fn group_valid(m: &BitMatrix, group: &[(usize, usize)]) -> bool {
        // A group is realizable as a rectangle iff the product closure of
        // its cells stays within the 1s AND within the group itself.
        let rows: std::collections::BTreeSet<usize> = group.iter().map(|c| c.0).collect();
        let cols: std::collections::BTreeSet<usize> = group.iter().map(|c| c.1).collect();
        for &i in &rows {
            for &j in &cols {
                if !m.get(i, j) || !group.contains(&(i, j)) {
                    return false;
                }
            }
        }
        true
    }

    fn assign(
        m: &BitMatrix,
        cells: &[(usize, usize)],
        idx: usize,
        groups: &mut Vec<Vec<(usize, usize)>>,
        best: &mut usize,
    ) {
        if groups.len() >= *best {
            return; // cannot improve
        }
        if idx == cells.len() {
            if groups.iter().all(|g| group_valid(m, g)) {
                *best = groups.len();
            }
            return;
        }
        for g in 0..groups.len() {
            groups[g].push(cells[idx]);
            // Prune early: partial group must stay extendable; a cheap
            // necessary check is closure within the 1s of M.
            if partial_ok(m, &groups[g]) {
                assign(m, cells, idx + 1, groups, best);
            }
            groups[g].pop();
        }
        groups.push(vec![cells[idx]]);
        assign(m, cells, idx + 1, groups, best);
        groups.pop();
    }

    fn partial_ok(m: &BitMatrix, group: &[(usize, usize)]) -> bool {
        let rows: std::collections::BTreeSet<usize> = group.iter().map(|c| c.0).collect();
        let cols: std::collections::BTreeSet<usize> = group.iter().map(|c| c.1).collect();
        rows.iter().all(|&i| cols.iter().all(|&j| m.get(i, j)))
    }
}
