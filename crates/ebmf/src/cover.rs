//! Rectangle *covers* and the Boolean rank — the overlap-allowed sibling of
//! EBMF.
//!
//! The paper's §II frames rectangle partitions inside communication
//! complexity, where the companion quantity is the minimum number of
//! 1-monochromatic rectangles whose **union** (overlaps allowed) is the 1s
//! of `M` — the *Boolean rank* / minimum biclique cover number, with
//! `rank_Bool(M) ≤ r_B(M)`. Physically, a cover is the right model when
//! double-addressing a qubit is acceptable (e.g. idempotent calibration
//! pulses), while the paper's partitions are required when it is not
//! (`Rz` phases accumulate).
//!
//! Both a greedy heuristic and an exact SAT-based solver are provided; the
//! SAT encoding uses per-rectangle row/column selector variables
//! (`cell (i,j) ∈ R_k ⇔ r_{i,k} ∧ c_{j,k}`) with Tseitin product variables
//! on the 1-cells.

use bitmatrix::{BitMatrix, BitVec};
use sat::{SolveResult, Solver, Var};

use crate::{Partition, Rectangle};

/// A rectangle cover of the 1s of a matrix (rectangles may overlap on 1s,
/// never on 0s). Reuses [`Partition`] storage; validation differs.
pub type Cover = Partition;

/// Checks that `cover` covers every 1 of `m`, covers no 0, and contains no
/// empty rectangle. Overlaps on 1-cells are allowed.
pub fn is_valid_cover(cover: &Cover, m: &BitMatrix) -> bool {
    if cover.shape() != m.shape() {
        return false;
    }
    let mut covered = BitMatrix::zeros(m.nrows(), m.ncols());
    for r in cover {
        if r.is_empty() {
            return false;
        }
        for (i, j) in r.cells() {
            if !m.get(i, j) {
                return false;
            }
            covered.set(i, j, true);
        }
    }
    covered == *m
}

/// Greedy cover: repeatedly pick an uncovered 1-cell and grow a maximal
/// rectangle of `m` around it (first rows, then columns), preferring rows
/// that keep the column span large.
pub fn greedy_cover(m: &BitMatrix) -> Cover {
    let (nrows, ncols) = m.shape();
    let mut uncovered = m.clone();
    let mut out = Partition::empty(nrows, ncols);
    while let Some((i, j)) = first_one(&uncovered) {
        // Start from the full row support of row i.
        let mut cols = m.row(i).to_bitvec();
        let mut rows = BitVec::zeros(nrows);
        rows.set(i, true);
        // Shrink columns to those of the seed cell's "best" rectangle:
        // grow rows greedily while keeping j covered, intersecting spans.
        for r in 0..nrows {
            if r == i {
                continue;
            }
            let inter = cols.and(m.row(r));
            // Accept the row only if it keeps the seed column and does not
            // shrink the rectangle below its current uncovered payoff.
            if inter.get(j)
                && inter.count_ones() * (rows.count_ones() + 1)
                    >= cols.count_ones() * rows.count_ones()
            {
                cols = inter;
                rows.set(r, true);
            }
        }
        let rect = Rectangle::new(rows, cols);
        for (r, c) in rect.cells() {
            uncovered.set(r, c, false);
        }
        out.push(rect);
    }
    out
}

fn first_one(m: &BitMatrix) -> Option<(usize, usize)> {
    (0..m.nrows()).find_map(|i| m.row(i).first_one().map(|j| (i, j)))
}

/// Decides `rank_Bool(m) ≤ b` by SAT; returns a witness cover when
/// satisfiable.
///
/// Encoding: variables `r[i][k]`, `c[j][k]` select rows/columns of
/// rectangle `k`; for every 0-cell, `¬r[i][k] ∨ ¬c[j][k]`; for every
/// 1-cell, a Tseitin variable `p[e][k] ⇔ r[i][k] ∧ c[j][k]` feeds the
/// coverage clause `⋁_k p[e][k]`.
#[allow(clippy::needless_range_loop)] // parallel rvar/cvar indexing is clearer
pub fn cover_decision(m: &BitMatrix, b: usize) -> Option<Cover> {
    let (nrows, ncols) = m.shape();
    let ones = m.ones_positions();
    if ones.is_empty() {
        return Some(Partition::empty(nrows, ncols));
    }
    if b == 0 {
        return None;
    }
    let mut solver = Solver::new();
    let rvar: Vec<Vec<Var>> = (0..nrows)
        .map(|_| (0..b).map(|_| solver.new_var()).collect())
        .collect();
    let cvar: Vec<Vec<Var>> = (0..ncols)
        .map(|_| (0..b).map(|_| solver.new_var()).collect())
        .collect();
    // 0-cells break every rectangle containing both their row and column.
    for i in 0..nrows {
        for j in 0..ncols {
            if !m.get(i, j) {
                for k in 0..b {
                    solver.add_clause([rvar[i][k].negative(), cvar[j][k].negative()]);
                }
            }
        }
    }
    // 1-cells: product variables + coverage.
    for &(i, j) in &ones {
        let mut coverage = Vec::with_capacity(b);
        for k in 0..b {
            let p = solver.new_var();
            // p ⇒ r ∧ c ; r ∧ c ⇒ p.
            solver.add_clause([p.negative(), rvar[i][k].positive()]);
            solver.add_clause([p.negative(), cvar[j][k].positive()]);
            solver.add_clause([rvar[i][k].negative(), cvar[j][k].negative(), p.positive()]);
            coverage.push(p.positive());
        }
        solver.add_clause(coverage);
    }
    match solver.solve() {
        SolveResult::Sat => {
            let model = solver.model();
            let mut cover = Partition::empty(nrows, ncols);
            for k in 0..b {
                let rows =
                    BitVec::from_indices(nrows, (0..nrows).filter(|&i| model[rvar[i][k].index()]));
                let cols =
                    BitVec::from_indices(ncols, (0..ncols).filter(|&j| model[cvar[j][k].index()]));
                let rect = Rectangle::new(rows, cols);
                if !rect.is_empty() {
                    cover.push(rect);
                }
            }
            debug_assert!(is_valid_cover(&cover, m));
            Some(cover)
        }
        _ => None,
    }
}

/// The Boolean rank (minimum biclique **cover** number) of `m`, computed by
/// descending SAT queries from the greedy cover size.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitMatrix;
/// use rect_addr_ebmf::cover::boolean_rank;
///
/// // Paper Eq. (2): binary rank 3, but two overlapping rectangles cover it.
/// let m: BitMatrix = "110\n011\n111".parse()?;
/// assert_eq!(boolean_rank(&m).1, 2);
/// # Ok::<(), bitmatrix::ParseMatrixError>(())
/// ```
pub fn boolean_rank(m: &BitMatrix) -> (Cover, usize) {
    let mut best = greedy_cover(m);
    debug_assert!(is_valid_cover(&best, m));
    while !best.is_empty() {
        match cover_decision(m, best.len() - 1) {
            Some(cover) => best = cover,
            None => break,
        }
    }
    let n = best.len();
    (best, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_rank;

    #[test]
    fn eq2_boolean_rank_is_two() {
        // Binary rank 3, Boolean rank 2: overlap at the centre cell.
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let (cover, n) = boolean_rank(&m);
        assert_eq!(n, 2);
        assert!(is_valid_cover(&cover, &m));
        assert_eq!(binary_rank(&m), 3);
    }

    #[test]
    fn identity_boolean_rank_is_n() {
        // No overlap possible: cover = partition.
        let m = BitMatrix::identity(4);
        assert_eq!(boolean_rank(&m).1, 4);
    }

    #[test]
    fn ones_and_zeros() {
        assert_eq!(boolean_rank(&BitMatrix::ones(3, 5)).1, 1);
        assert_eq!(boolean_rank(&BitMatrix::zeros(2, 2)).1, 0);
    }

    #[test]
    fn boolean_rank_never_exceeds_binary_rank() {
        let mut state = 0xABCDu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let m = BitMatrix::from_fn(4, 4, |_, _| rnd() % 2 == 0);
            let bool_rank = boolean_rank(&m).1;
            let bin_rank = binary_rank(&m);
            assert!(
                bool_rank <= bin_rank,
                "cover {bool_rank} > partition {bin_rank} on\n{m}"
            );
        }
    }

    #[test]
    fn greedy_cover_is_always_valid() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let g = greedy_cover(&m);
        assert!(is_valid_cover(&g, &m));
    }

    #[test]
    fn cover_decision_boundary() {
        let m = BitMatrix::identity(3);
        assert!(cover_decision(&m, 3).is_some());
        assert!(cover_decision(&m, 2).is_none());
        assert!(cover_decision(&m, 0).is_none());
        assert!(cover_decision(&BitMatrix::zeros(2, 2), 0).is_some());
    }

    #[test]
    fn invalid_covers_rejected() {
        let m: BitMatrix = "10\n01".parse().unwrap();
        // Covers a zero.
        let mut bad = Partition::empty(2, 2);
        bad.push(Rectangle::from_cells(2, 2, [(0, 0), (1, 1)]));
        assert!(!is_valid_cover(&bad, &m));
        // Misses a one.
        let mut missing = Partition::empty(2, 2);
        missing.push(Rectangle::singleton(2, 2, 0, 0));
        assert!(!is_valid_cover(&missing, &m));
        // Overlap on ones is fine.
        let m2 = BitMatrix::ones(2, 2);
        let mut overlap = Partition::empty(2, 2);
        overlap.push(Rectangle::from_cells(2, 2, [(0, 0), (1, 1)]));
        overlap.push(Rectangle::from_cells(2, 2, [(0, 0), (0, 1)]));
        assert!(is_valid_cover(&overlap, &m2));
    }
}
