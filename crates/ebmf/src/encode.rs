//! SAT encoding of the EBMF decision problem `r_B(M) ≤ b`.
//!
//! The paper encodes the problem in SMT (uninterpreted function `f` from
//! 1-cells to bit-vector rectangle labels, constrained by its Eq. 4). Here
//! the same constraint system is expressed propositionally for the in-repo
//! CDCL solver:
//!
//! * one Boolean `x[e][k]` per 1-cell `e` and label `k < b`, with an
//!   exactly-one row per cell (`f(e) = k ⇔ x[e][k]`);
//! * for every unordered pair of 1-cells `(i,j)`, `(i',j')` with `i ≠ i'`
//!   and `j ≠ j'`, looking at the two *corners* `(i,j')` and `(i',j)`:
//!   if either corner is a 0 of `M`, the cells must get different labels
//!   (they cannot share a rectangle); otherwise each corner is itself a
//!   1-cell and must join the shared label (the closure property, Eq. 1):
//!   `(x[e][k] ∧ x[e'][k]) → x[corner][k]`;
//! * *value-precedence symmetry breaking*: labels are interchangeable, so
//!   we require label `k` to be introduced (in cell order) only after label
//!   `k−1` — this prunes the `b!` relabelings that make the plain encoding
//!   needlessly pigeonhole-hard;
//! * **don't-cares** (vacancies in the atom array, paper §VI): cells marked
//!   don't-care carry no variable and impose no corner constraint — a
//!   rectangle may cover them any number of times.
//!
//! The `narrow` method implements the paper's `narrow_down_depth`
//! (Algorithm 1 line 8): banning the top label by unit clauses and
//! re-solving incrementally.

use std::time::Instant;

use bitmatrix::{kernel, BitMatrix};
use sat::{SolveResult, Solver, SolverStats, Var};

use crate::{Partition, Rectangle};

/// Classification of grid cells for the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStatus {
    /// Must be covered exactly once.
    One(usize), // cell index
    /// Must never be covered.
    Zero,
    /// May be covered any number of times (vacancy).
    DontCare,
}

/// How the per-cell at-most-one-label constraint is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmoEncoding {
    /// One binary clause per label pair: `O(b²)` clauses, no auxiliary
    /// variables. Best for the paper's small bounds (b ≤ ~30).
    #[default]
    Pairwise,
    /// Sinz's sequential (ladder) encoding: `O(b)` clauses and `b − 1`
    /// auxiliary variables per cell. Preferable for large label counts.
    Sequential,
}

/// Full encoder configuration (used by [`EbmfEncoder::with_encoder_options`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderOptions {
    /// The label bound `b` of the query `r_B(M) ≤ b`.
    pub bound: usize,
    /// Emit value-precedence symmetry-breaking clauses.
    pub symmetry_breaking: bool,
    /// At-most-one encoding for the per-cell label constraint.
    pub amo: AmoEncoding,
    /// Record a clausal proof so UNSAT answers can be independently
    /// verified (see [`EbmfEncoder::verify_unsat_proof`]).
    pub proof_logging: bool,
    /// Encode the depth bound through **assumption selector literals**
    /// instead of permanent ban clauses: one selector `off[k]` per label with
    /// `off[k] → ¬x[e][k]`, so [`EbmfEncoder::solve_at`] can query any bound
    /// `≤ capacity` — including re-widening after an UNSAT answer — while
    /// every learnt clause stays valid and is reused across queries. This is
    /// the warm-start substrate of the engine's per-canonical-class SAP
    /// sessions.
    pub assumption_bounds: bool,
}

impl EncoderOptions {
    /// Defaults matching [`EbmfEncoder::new`]: symmetry breaking on,
    /// pairwise AMO.
    pub fn new(bound: usize) -> Self {
        EncoderOptions {
            bound,
            symmetry_breaking: true,
            amo: AmoEncoding::Pairwise,
            proof_logging: false,
            assumption_bounds: false,
        }
    }

    /// Returns a copy with proof logging enabled.
    pub fn with_proof_logging(mut self) -> Self {
        self.proof_logging = true;
        self
    }

    /// Returns a copy with assumption-encoded bounds enabled.
    pub fn with_assumption_bounds(mut self) -> Self {
        self.assumption_bounds = true;
        self
    }
}

/// Incremental SAT encoder for `r_B(M) ≤ b` queries.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitMatrix;
/// use rect_addr_ebmf::EbmfEncoder;
///
/// let m: BitMatrix = "110\n011\n111".parse()?; // paper Eq. (2): r_B = 3
/// let mut enc = EbmfEncoder::new(&m, 3);
/// let p = enc.solve_partition().expect("3 rectangles suffice");
/// assert!(p.validate(&m).is_ok());
/// enc.narrow(2);
/// assert!(enc.solve_partition().is_none(), "2 rectangles are too few");
/// # Ok::<(), bitmatrix::ParseMatrixError>(())
/// ```
#[derive(Debug)]
pub struct EbmfEncoder {
    solver: Solver,
    shape: (usize, usize),
    /// 1-cells in row-major order.
    cells: Vec<(usize, usize)>,
    /// Status of every grid cell (indexing 1-cells).
    status: Vec<Vec<CellStatus>>,
    /// Labels allocated at construction.
    capacity: usize,
    /// Labels currently allowed (`narrow` lowers this).
    bound: usize,
    /// Flat `cells.len() × capacity` variable table.
    vars: Vec<Var>,
    /// The options this encoder was built with (capacity in
    /// `options.bound`) — what a byte-identical rebuild needs.
    options: EncoderOptions,
    /// Per-label "ban" selectors (assumption-bound mode only): assuming
    /// `bound_selectors[k]` positive forbids label `k`.
    bound_selectors: Vec<Var>,
    /// Whether the last `solve` returned SAT (enables extraction).
    last_sat: bool,
}

impl EbmfEncoder {
    /// Builds the encoding of `r_B(m) ≤ bound` with symmetry breaking.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` while `m` has at least one 1-cell.
    pub fn new(m: &BitMatrix, bound: usize) -> Self {
        Self::with_options(m, None, bound, true)
    }

    /// Like [`EbmfEncoder::new`] but cells set in `dont_care` are vacancies:
    /// they carry no coverage obligation and rectangles may overlap on them.
    /// `m` and `dont_care` must not both be 1 at any cell.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or on a cell that is both 1 and don't-care.
    pub fn with_dont_cares(m: &BitMatrix, dont_care: &BitMatrix, bound: usize) -> Self {
        Self::with_options(m, Some(dont_care), bound, true)
    }

    /// Constructor with symmetry-breaking control (pairwise AMO); kept for
    /// the ablation benchmarks.
    ///
    /// # Panics
    ///
    /// See [`EbmfEncoder::new`] / [`EbmfEncoder::with_dont_cares`].
    pub fn with_options(
        m: &BitMatrix,
        dont_care: Option<&BitMatrix>,
        bound: usize,
        symmetry_breaking: bool,
    ) -> Self {
        Self::with_encoder_options(
            m,
            dont_care,
            EncoderOptions {
                bound,
                symmetry_breaking,
                ..EncoderOptions::new(bound)
            },
        )
    }

    /// Full-control constructor: bound, symmetry breaking and the
    /// at-most-one encoding (see [`EncoderOptions`]).
    ///
    /// # Panics
    ///
    /// See [`EbmfEncoder::new`] / [`EbmfEncoder::with_dont_cares`].
    #[allow(clippy::needless_range_loop)] // parallel cell/label tables
    pub fn with_encoder_options(
        m: &BitMatrix,
        dont_care: Option<&BitMatrix>,
        options: EncoderOptions,
    ) -> Self {
        let EncoderOptions {
            bound,
            symmetry_breaking,
            amo,
            proof_logging,
            assumption_bounds,
        } = options;
        let (nrows, ncols) = m.shape();
        if let Some(dc) = dont_care {
            assert_eq!(dc.shape(), m.shape(), "don't-care mask shape mismatch");
            assert!(
                m.and(dc).is_zero(),
                "a cell cannot be both 1 and don't-care"
            );
        }
        let cells = m.ones_positions();
        assert!(
            bound > 0 || cells.is_empty(),
            "bound 0 with nonempty matrix is trivially UNSAT; handle upstream"
        );
        let mut status = vec![vec![CellStatus::Zero; ncols]; nrows];
        for (e, &(i, j)) in cells.iter().enumerate() {
            status[i][j] = CellStatus::One(e);
        }
        if let Some(dc) = dont_care {
            for (i, j) in dc.ones_positions() {
                status[i][j] = CellStatus::DontCare;
            }
        }

        let t = cells.len();
        let mut solver = Solver::new();
        if proof_logging {
            solver.enable_proof_logging();
        }
        let vars: Vec<Var> = (0..t * bound).map(|_| solver.new_var()).collect();
        let var = |e: usize, k: usize| vars[e * bound + k];

        // Exactly-one label per cell: at-least-one plus the configured AMO.
        for e in 0..t {
            solver.add_clause((0..bound).map(|k| var(e, k).positive()));
            match amo {
                AmoEncoding::Pairwise => {
                    for k1 in 0..bound {
                        for k2 in (k1 + 1)..bound {
                            solver.add_clause([var(e, k1).negative(), var(e, k2).negative()]);
                        }
                    }
                }
                AmoEncoding::Sequential => {
                    if bound > 1 {
                        // s[k] ⇔ "some label ≤ k is chosen" (one-directional
                        // ladder suffices for AMO).
                        let s: Vec<Var> = (0..bound - 1).map(|_| solver.new_var()).collect();
                        for k in 0..bound - 1 {
                            solver.add_clause([var(e, k).negative(), s[k].positive()]);
                        }
                        for k in 1..bound - 1 {
                            solver.add_clause([s[k - 1].negative(), s[k].positive()]);
                        }
                        for k in 1..bound {
                            solver.add_clause([var(e, k).negative(), s[k - 1].negative()]);
                        }
                    }
                }
            }
        }

        // Pair constraints (Eq. 4 both orderings, deduplicated). The pairs
        // run over 1-cells in row-major order, so corners are classified a
        // row pair at a time with word masks: for cells (i1,j1), (i2,j2)
        // with i1 < i2, corner (i1,j2) is a hard 0 iff j2 falls in
        // `J_{i2} & ~care_{i1}` (precomputed once per row pair), and corner
        // (i2,j1) classifies with two bit tests that are constant across
        // row i2's inner loop. Cell indices come from popcount ranks, so no
        // per-pair status-table lookups remain. Clause emission order is
        // identical to the naive double loop over cell pairs.
        let pair_start = Instant::now();
        let stride = m.stride();
        // care[i] = columns whose (i, ·) cell is a 1 or a don't-care; a
        // corner outside the set is a hard 0.
        let mut care: Vec<u64> = vec![0; nrows * stride];
        for i in 0..nrows {
            let dst = &mut care[i * stride..(i + 1) * stride];
            dst.copy_from_slice(m.row_words(i));
            if let Some(dc) = dont_care {
                kernel::or_assign(dst, dc.row_words(i));
            }
        }
        // row_cell_start[i] = index of row i's first 1-cell in `cells`.
        let mut row_cell_start = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_cell_start[i + 1] = row_cell_start[i] + kernel::count(m.row_words(i));
        }
        // a_zero[i2] = columns of J_{i2} whose (i1, ·) corner is a hard 0;
        // rebuilt for each outer row i1.
        let mut a_zero: Vec<u64> = vec![0; nrows * stride];
        for i1 in 0..nrows {
            let ones1 = m.row_words(i1);
            if kernel::is_zero(ones1) {
                continue;
            }
            let care1 = &care[i1 * stride..(i1 + 1) * stride];
            for i2 in (i1 + 1)..nrows {
                let dst = &mut a_zero[i2 * stride..(i2 + 1) * stride];
                dst.copy_from_slice(m.row_words(i2));
                kernel::andnot_assign(dst, care1);
            }
            for (r1, j1) in kernel::ones(ones1).enumerate() {
                let e1 = row_cell_start[i1] + r1;
                let (w1, b1) = (j1 / 64, 1u64 << (j1 % 64));
                for i2 in (i1 + 1)..nrows {
                    let ones2 = m.row_words(i2);
                    if kernel::is_zero(ones2) {
                        continue;
                    }
                    // Corner (i2, j1) is shared by every pair of this row.
                    let b_zero = care[i2 * stride + w1] & b1 == 0;
                    let eb =
                        (ones2[w1] & b1 != 0).then(|| row_cell_start[i2] + kernel::rank(ones2, j1));
                    let az = &a_zero[i2 * stride..(i2 + 1) * stride];
                    for (r2, j2) in kernel::ones(ones2).enumerate() {
                        if j1 == j2 {
                            continue; // same column: no corner constraint
                        }
                        let e2 = row_cell_start[i2] + r2;
                        let (w2, b2) = (j2 / 64, 1u64 << (j2 % 64));
                        if b_zero || az[w2] & b2 != 0 {
                            // A 0-corner: the cells can never share a
                            // rectangle.
                            for k in 0..bound {
                                solver.add_clause([var(e1, k).negative(), var(e2, k).negative()]);
                            }
                            continue;
                        }
                        // Closure towards each 1-corner ((i1,j2) first, then
                        // (i2,j1)); don't-care corners are free.
                        if ones1[w2] & b2 != 0 {
                            let ea = row_cell_start[i1] + kernel::rank(ones1, j2);
                            for k in 0..bound {
                                solver.add_clause([
                                    var(e1, k).negative(),
                                    var(e2, k).negative(),
                                    var(ea, k).positive(),
                                ]);
                            }
                        }
                        if let Some(eb) = eb {
                            for k in 0..bound {
                                solver.add_clause([
                                    var(e1, k).negative(),
                                    var(e2, k).negative(),
                                    var(eb, k).positive(),
                                ]);
                            }
                        }
                    }
                }
            }
        }
        obs::registry()
            .histogram(obs::names::KERNEL_US_ENCODE_PAIRS)
            .record(pair_start.elapsed().as_micros() as u64);

        // Value-precedence symmetry breaking: cell 0 uses label 0; cell t
        // may open label k only if some earlier cell opened label k−1.
        if symmetry_breaking && t > 0 {
            for k in 1..bound {
                solver.add_clause([var(0, k).negative()]);
            }
            for e in 1..t {
                for k in 1..bound {
                    if k > e {
                        solver.add_clause([var(e, k).negative()]);
                    } else {
                        let mut clause = vec![var(e, k).negative()];
                        clause.extend((0..e).map(|s| var(s, k - 1).positive()));
                        solver.add_clause(clause);
                    }
                }
            }
        }

        // Assumption-bound mode: one ban selector per label. The clauses
        // `off[k] → ¬x[e][k]` are inert until a query assumes `off[k]`, so
        // the same clause database answers every bound `≤ capacity`.
        let bound_selectors: Vec<Var> = if assumption_bounds {
            let off: Vec<Var> = (0..bound).map(|_| solver.new_var()).collect();
            for (k, &sel) in off.iter().enumerate() {
                for e in 0..t {
                    solver.add_clause([sel.negative(), var(e, k).negative()]);
                }
            }
            off
        } else {
            Vec::new()
        };

        EbmfEncoder {
            solver,
            shape: (nrows, ncols),
            cells,
            status,
            capacity: bound,
            bound,
            vars,
            options,
            bound_selectors,
            last_sat: false,
        }
    }

    /// The options this encoder was built with — enough to reconstruct a
    /// byte-identical encoding (same variable numbering), which is what
    /// makes an exported learnt-clause core re-importable.
    pub fn options(&self) -> EncoderOptions {
        self.options
    }

    /// Exports the solver's learnt-clause core as DIMACS-coded literals
    /// (see [`sat::Solver::export_core`]): unconditional units plus up to
    /// `max_clauses` of the strongest learnt clauses. Reinject into an
    /// encoder rebuilt with the **same matrix and options** via
    /// [`EbmfEncoder::import_core`].
    pub fn export_core(&self, max_clauses: usize) -> Vec<Vec<i64>> {
        self.solver
            .export_core(max_clauses)
            .into_iter()
            .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
            .collect()
    }

    /// Reinjects a core exported by [`EbmfEncoder::export_core`] on an
    /// identically-built encoder. Structurally invalid cores (zero or
    /// out-of-range literals) are rejected wholesale.
    ///
    /// # Errors
    ///
    /// Returns a description of the structural problem; the encoding is
    /// unchanged in that case.
    pub fn import_core(&mut self, core: &[Vec<i64>]) -> Result<usize, String> {
        let nvars = self.solver.num_vars() as i64;
        let mut lits: Vec<Vec<sat::Lit>> = Vec::with_capacity(core.len());
        for clause in core {
            let mut out = Vec::with_capacity(clause.len());
            for &v in clause {
                if v == 0 || v.unsigned_abs() > nvars as u64 {
                    return Err(format!("core literal {v} out of range (±1..={nvars})"));
                }
                out.push(sat::Lit::from_dimacs(v));
            }
            lits.push(out);
        }
        self.solver.import_core(&lits)
    }

    /// Like [`EbmfEncoder::import_core`], but each clause is **re-derived**
    /// before it is accepted (see [`sat::Solver::import_core_derived`]): a
    /// bounded refutation of its negation justifies it, so under proof
    /// logging it enters the trace as a checked lemma — never as an
    /// unjustified axiom. Clauses the effort budget cannot re-derive are
    /// dropped, costing warm-start quality but never soundness.
    ///
    /// # Errors
    ///
    /// Returns a description of the structural problem (zero or out-of-range
    /// literals); the encoding is unchanged in that case.
    pub fn import_core_derived(&mut self, core: &[Vec<i64>], effort: u64) -> Result<usize, String> {
        let nvars = self.solver.num_vars() as i64;
        let mut lits: Vec<Vec<sat::Lit>> = Vec::with_capacity(core.len());
        for clause in core {
            let mut out = Vec::with_capacity(clause.len());
            for &v in clause {
                if v == 0 || v.unsigned_abs() > nvars as u64 {
                    return Err(format!("core literal {v} out of range (±1..={nvars})"));
                }
                out.push(sat::Lit::from_dimacs(v));
            }
            lits.push(out);
        }
        self.solver.import_core_derived(&lits, effort)
    }

    /// A self-contained refutation of the last UNSAT answer (see
    /// [`sat::Solver::refutation_proof`]), or `None` when proof logging is
    /// off or the last answer was not UNSAT. Under assumption-encoded bounds
    /// the active bound selectors become unit axioms of the returned proof,
    /// so it certifies exactly the query `r_B(M) ≤ b` that was refuted.
    pub fn unsat_refutation(&self) -> Option<sat::Proof> {
        self.solver.refutation_proof()
    }

    /// The current label bound `b` of the encoded query `r_B(M) ≤ b`.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The label capacity the encoding was built with (the ceiling of
    /// [`EbmfEncoder::solve_at`] queries).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this encoder was built with assumption-encoded bounds.
    pub fn assumption_bounds(&self) -> bool {
        !self.bound_selectors.is_empty()
    }

    /// Limits each subsequent solve to `budget` conflicts (anytime mode).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }

    /// Installs a resumable conflict pool shared across
    /// [`EbmfEncoder::solve_at`] queries (see
    /// [`Solver::set_resumable_budget`](sat::Solver::set_resumable_budget)).
    pub fn set_resumable_budget(&mut self, budget: Option<u64>) {
        self.solver.set_resumable_budget(budget);
    }

    /// Tops up the resumable conflict pool.
    pub fn add_budget(&mut self, extra: u64) {
        self.solver.add_budget(extra);
    }

    /// Conflicts left in the resumable pool (`None` = no pool).
    pub fn remaining_budget(&self) -> Option<u64> {
        self.solver.remaining_budget()
    }

    /// Installs (or clears) a cooperative interrupt on the underlying SAT
    /// solver: once the token trips, the in-flight query answers
    /// [`SolveResult::Unknown`] at its next conflict or decision. This is
    /// the cancellation hook the `rect-addr-engine` portfolio runner uses to
    /// stop a SAT search whose budget has expired.
    pub fn set_interrupt(&mut self, token: Option<sat::CancelToken>) {
        self.solver.set_interrupt(token);
    }

    /// Statistics of the underlying SAT solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Lowers the bound to `new_bound`. In the default (permanent-clause)
    /// mode all higher labels are banned by unit clauses — the paper's
    /// `narrow_down_depth`, incremental because learnt clauses are kept. In
    /// assumption-bound mode nothing is added: the next solve simply assumes
    /// the ban selectors of the excluded labels.
    ///
    /// # Panics
    ///
    /// Panics if `new_bound` exceeds the current bound.
    pub fn narrow(&mut self, new_bound: usize) {
        assert!(
            new_bound <= self.bound,
            "cannot widen the bound ({new_bound} > {})",
            self.bound
        );
        if self.bound_selectors.is_empty() {
            for k in new_bound..self.bound {
                for e in 0..self.cells.len() {
                    let v = self.vars[e * self.capacity + k];
                    self.solver.add_clause([v.negative()]);
                }
            }
        }
        self.bound = new_bound;
        self.last_sat = false;
    }

    /// Runs the SAT query for the current bound.
    pub fn solve(&mut self) -> SolveResult {
        if self.cells.is_empty() {
            self.last_sat = true;
            return SolveResult::Sat;
        }
        if self.bound == 0 {
            self.last_sat = false;
            return SolveResult::Unsat;
        }
        if !self.bound_selectors.is_empty() {
            return self.solve_at(self.bound);
        }
        let res = self.solver.solve();
        self.last_sat = res.is_sat();
        res
    }

    /// Queries `r_B(M) ≤ bound` through the assumption selectors, drawing
    /// conflicts from the resumable pool when one is installed. Unlike
    /// [`EbmfEncoder::narrow`] + [`EbmfEncoder::solve`], the bound may move
    /// in **either** direction between calls, and every learnt clause is
    /// shared across all queries — this is the warm-start entry point.
    ///
    /// # Panics
    ///
    /// Panics if the encoder was not built with
    /// [`EncoderOptions::assumption_bounds`], or if `bound` exceeds the
    /// construction capacity.
    pub fn solve_at(&mut self, bound: usize) -> SolveResult {
        if self.cells.is_empty() {
            self.last_sat = true;
            return SolveResult::Sat;
        }
        assert!(
            !self.bound_selectors.is_empty(),
            "solve_at requires EncoderOptions::assumption_bounds"
        );
        assert!(
            bound <= self.capacity,
            "bound {bound} exceeds encoding capacity {}",
            self.capacity
        );
        self.bound = bound;
        if bound == 0 {
            self.last_sat = false;
            return SolveResult::Unsat;
        }
        let assumptions: Vec<sat::Lit> = self.bound_selectors[bound..]
            .iter()
            .map(|s| s.positive())
            .collect();
        // Draw from the resumable pool when one is installed; otherwise
        // honor the per-call budget of `set_conflict_budget` like `solve`
        // does, so switching encodings never silently unbounds a query.
        let res = if self.solver.remaining_budget().is_some() {
            self.solver.solve_under_assumptions(&assumptions)
        } else {
            self.solver.solve_with_assumptions(&assumptions)
        };
        self.last_sat = res.is_sat();
        res
    }

    /// Solves and extracts the partition on success.
    pub fn solve_partition(&mut self) -> Option<Partition> {
        match self.solve() {
            SolveResult::Sat => Some(self.extract_partition()),
            _ => None,
        }
    }

    /// Reads the partition out of the last SAT model, dropping unused
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if the last solve did not return SAT.
    pub fn extract_partition(&self) -> Partition {
        assert!(self.last_sat, "no model available: last solve was not SAT");
        let (nrows, ncols) = self.shape;
        let model = self.solver.model();
        let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.bound];
        for (e, &cell) in self.cells.iter().enumerate() {
            let k = (0..self.bound)
                .find(|&k| model[self.vars[e * self.capacity + k].index()])
                .expect("exactly-one constraint guarantees a label");
            groups[k].push(cell);
        }
        let mut p = Partition::empty(nrows, ncols);
        for g in groups.into_iter().filter(|g| !g.is_empty()) {
            p.push(Rectangle::from_cells(nrows, ncols, g));
        }
        p
    }

    /// Whether cell `(i, j)` is a don't-care for this encoder.
    pub fn is_dont_care(&self, i: usize, j: usize) -> bool {
        self.status[i][j] == CellStatus::DontCare
    }

    /// Verifies the recorded clausal proof of the last UNSAT answer with
    /// the independent RUP checker (requires
    /// [`EncoderOptions::proof_logging`]).
    ///
    /// # Errors
    ///
    /// Propagates the checker's [`sat::ProofError`].
    ///
    /// # Panics
    ///
    /// Panics if proof logging was not enabled at construction.
    pub fn verify_unsat_proof(&self) -> Result<(), sat::ProofError> {
        self.solver.verify_unsat_proof()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_rb(m: &BitMatrix, b: usize) -> Option<Partition> {
        EbmfEncoder::new(m, b).solve_partition()
    }

    #[test]
    fn eq2_matrix_needs_exactly_three() {
        let m: BitMatrix = "110\n011\n111".parse().unwrap();
        let p3 = solve_rb(&m, 3).expect("3 rectangles must suffice");
        assert!(p3.validate(&m).is_ok());
        assert!(p3.len() <= 3);
        assert!(
            solve_rb(&m, 2).is_none(),
            "binary rank of Eq. (2) matrix is 3"
        );
    }

    #[test]
    fn fig1b_matrix_needs_exactly_five() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let p = solve_rb(&m, 5).expect("5 rectangles suffice (paper Fig. 1b)");
        assert!(p.validate(&m).is_ok());
        assert!(solve_rb(&m, 4).is_none(), "fooling set of size 5 forbids 4");
    }

    #[test]
    fn all_ones_is_one_rectangle() {
        let m = BitMatrix::ones(4, 5);
        let p = solve_rb(&m, 1).expect("a full matrix is a single rectangle");
        assert!(p.validate(&m).is_ok());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn identity_needs_n() {
        let m = BitMatrix::identity(4);
        assert!(solve_rb(&m, 4).is_some());
        assert!(solve_rb(&m, 3).is_none());
    }

    #[test]
    fn empty_matrix_always_sat() {
        let m = BitMatrix::zeros(3, 3);
        let mut enc = EbmfEncoder::new(&m, 0);
        assert_eq!(enc.solve(), SolveResult::Sat);
        let p = enc.extract_partition();
        assert!(p.validate(&m).is_ok());
        assert!(p.is_empty());
    }

    #[test]
    fn narrow_walks_down_to_unsat() {
        // Identity 3: r_B = 3. Start at 5 and narrow down.
        let m = BitMatrix::identity(3);
        let mut enc = EbmfEncoder::new(&m, 5);
        assert_eq!(enc.solve(), SolveResult::Sat);
        let p = enc.extract_partition();
        assert_eq!(p.len(), 3, "unused labels are dropped on extraction");
        enc.narrow(3);
        assert_eq!(enc.solve(), SolveResult::Sat);
        enc.narrow(2);
        assert_eq!(enc.solve(), SolveResult::Unsat);
    }

    #[test]
    fn symmetry_breaking_preserves_answers() {
        let m: BitMatrix = "1101\n0111\n1011".parse().unwrap();
        for b in 1..=5 {
            let with = EbmfEncoder::with_options(&m, None, b, true).solve();
            let without = EbmfEncoder::with_options(&m, None, b, false).solve();
            assert_eq!(with, without, "bound {b}");
        }
    }

    #[test]
    fn extracted_partition_always_validates() {
        let m: BitMatrix = "10110\n11010\n00111\n10101".parse().unwrap();
        for b in 1..=6 {
            if let Some(p) = solve_rb(&m, b) {
                assert!(
                    p.validate(&m).is_ok(),
                    "bound {b} produced invalid partition"
                );
                assert!(p.len() <= b);
            }
        }
    }

    #[test]
    fn dont_cares_can_reduce_rectangles() {
        // M = I_2 with both off-diagonal cells don't-care: a single 2×2
        // rectangle covers everything (vacancies absorb the corners).
        let m = BitMatrix::identity(2);
        let dc: BitMatrix = "01\n10".parse().unwrap();
        assert!(solve_rb(&m, 1).is_none(), "plain identity needs 2");
        let mut enc = EbmfEncoder::with_dont_cares(&m, &dc, 1);
        assert_eq!(enc.solve(), SolveResult::Sat);
        let p = enc.extract_partition();
        assert_eq!(p.len(), 1);
        // The rectangle geometrically covers the don't-care corners —
        // allowed; validation against the care-matrix is done by
        // `completion::validate_completion`.
        assert!(enc.is_dont_care(0, 1));
    }

    #[test]
    fn dont_care_zero_corners_still_forbid() {
        // Only one off-diagonal is don't-care: the other corner is a hard 0,
        // so the two diagonal cells still cannot merge.
        let m = BitMatrix::identity(2);
        let dc: BitMatrix = "01\n00".parse().unwrap();
        let mut enc = EbmfEncoder::with_dont_cares(&m, &dc, 1);
        assert_eq!(enc.solve(), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "both 1 and don't-care")]
    fn overlapping_one_and_dont_care_rejected() {
        let m = BitMatrix::ones(1, 1);
        let dc = BitMatrix::ones(1, 1);
        EbmfEncoder::with_dont_cares(&m, &dc, 1);
    }

    #[test]
    fn sequential_amo_agrees_with_pairwise() {
        let matrices: [BitMatrix; 3] = [
            "110\n011\n111".parse().unwrap(),
            BitMatrix::identity(4),
            "1101\n0111\n1011".parse().unwrap(),
        ];
        for m in &matrices {
            for b in 1..=5 {
                let mut pw = EbmfEncoder::with_encoder_options(
                    m,
                    None,
                    EncoderOptions {
                        bound: b,
                        symmetry_breaking: true,
                        amo: AmoEncoding::Pairwise,
                        ..EncoderOptions::new(b)
                    },
                );
                let mut seq = EbmfEncoder::with_encoder_options(
                    m,
                    None,
                    EncoderOptions {
                        bound: b,
                        symmetry_breaking: true,
                        amo: AmoEncoding::Sequential,
                        ..EncoderOptions::new(b)
                    },
                );
                assert_eq!(pw.solve(), seq.solve(), "bound {b} on\n{m}");
                if pw.solve().is_sat() {
                    let p = seq.extract_partition();
                    assert!(p.validate(m).is_ok(), "sequential model invalid, b={b}");
                }
            }
        }
    }

    #[test]
    fn sequential_amo_narrow_still_works() {
        let m = BitMatrix::identity(3);
        let mut enc = EbmfEncoder::with_encoder_options(
            &m,
            None,
            EncoderOptions {
                bound: 4,
                symmetry_breaking: true,
                amo: AmoEncoding::Sequential,
                ..EncoderOptions::new(4)
            },
        );
        assert!(enc.solve().is_sat());
        enc.narrow(3);
        assert!(enc.solve().is_sat());
        enc.narrow(2);
        assert!(enc.solve().is_unsat());
    }

    fn assumption_encoder(m: &BitMatrix, capacity: usize) -> EbmfEncoder {
        EbmfEncoder::with_encoder_options(
            m,
            None,
            EncoderOptions::new(capacity).with_assumption_bounds(),
        )
    }

    #[test]
    fn assumption_bounds_agree_with_permanent_narrowing() {
        let matrices: [BitMatrix; 3] = [
            "110\n011\n111".parse().unwrap(),
            BitMatrix::identity(4),
            "1101\n0111\n1011".parse().unwrap(),
        ];
        for m in &matrices {
            let mut warm = assumption_encoder(m, 6);
            for b in (1..=6).rev() {
                let cold = EbmfEncoder::new(m, b).solve();
                assert_eq!(warm.solve_at(b), cold, "bound {b} on\n{m}");
                if warm.solve_at(b).is_sat() {
                    let p = warm.extract_partition();
                    assert!(p.validate(m).is_ok(), "bound {b} model invalid");
                    assert!(p.len() <= b);
                }
            }
        }
    }

    #[test]
    fn assumption_bounds_can_rewiden_after_unsat() {
        // Permanent narrowing can never widen; the selector encoding can.
        let m = BitMatrix::identity(3);
        let mut enc = assumption_encoder(&m, 5);
        assert!(enc.solve_at(2).is_unsat());
        assert!(enc.solve_at(3).is_sat());
        assert!(enc.extract_partition().validate(&m).is_ok());
        assert!(enc.solve_at(2).is_unsat(), "learnt clauses stay sound");
    }

    #[test]
    fn assumption_bounds_resume_from_exhausted_pool() {
        // Identity 7 at bound 6 without symmetry breaking is pigeonhole-hard;
        // a tiny resumable pool must be exhausted at least once and, after
        // refills, conclude UNSAT using the clauses learnt in earlier slices.
        let m = BitMatrix::identity(7);
        let mut enc = EbmfEncoder::with_encoder_options(
            &m,
            None,
            EncoderOptions {
                symmetry_breaking: false,
                ..EncoderOptions::new(6).with_assumption_bounds()
            },
        );
        enc.set_resumable_budget(Some(20));
        let mut refills = 0u32;
        let result = loop {
            match enc.solve_at(6) {
                SolveResult::Unknown => {
                    assert_eq!(enc.remaining_budget(), Some(0));
                    enc.add_budget(20);
                    refills += 1;
                    assert!(refills < 10_000, "must terminate");
                }
                done => break done,
            }
        };
        assert!(result.is_unsat());
        assert!(refills > 0, "instance must exhaust the first pool slice");
    }

    #[test]
    fn assumption_bounds_honor_per_call_budget_without_pool() {
        // No resumable pool installed: solve_at must still respect the
        // per-call conflict budget instead of running unbounded.
        let m = BitMatrix::identity(7);
        let mut enc = EbmfEncoder::with_encoder_options(
            &m,
            None,
            EncoderOptions {
                symmetry_breaking: false,
                ..EncoderOptions::new(6).with_assumption_bounds()
            },
        );
        enc.set_conflict_budget(Some(10));
        assert_eq!(enc.solve_at(6), SolveResult::Unknown);
        enc.set_conflict_budget(None);
        assert!(enc.solve_at(6).is_unsat());
    }

    #[test]
    fn conflict_budget_gives_unknown() {
        // A hard UNSAT instance (identity 6 with bound 5 is pigeonhole-ish).
        let m = BitMatrix::identity(6);
        let mut enc = EbmfEncoder::with_options(&m, None, 5, false);
        enc.set_conflict_budget(Some(1));
        assert_eq!(enc.solve(), SolveResult::Unknown);
    }
}
