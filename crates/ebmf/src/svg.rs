//! SVG rendering of partitions — publication-style figures like the
//! paper's Fig. 1b (distinct marker per rectangle, dashed cells for
//! untargeted sites).

use std::fmt::Write as _;

use bitmatrix::BitMatrix;

use crate::Partition;

/// Options for [`partition_to_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Side length of one grid cell in SVG units.
    pub cell_size: f64,
    /// Margin around the grid.
    pub margin: f64,
    /// Draw grid lines.
    pub grid: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            cell_size: 24.0,
            margin: 8.0,
            grid: true,
        }
    }
}

/// A qualitative colour cycle (Okabe–Ito palette: colour-blind safe).
const PALETTE: [&str; 8] = [
    "#E69F00", "#56B4E9", "#009E73", "#F0E442", "#0072B2", "#D55E00", "#CC79A7", "#999999",
];

/// Renders a partition over its matrix as a standalone SVG document: one
/// fill colour per rectangle, open circles for unaddressed 1-cells (none
/// when the partition is complete), dashed outlines for 0-cells.
///
/// # Examples
///
/// ```
/// use bitmatrix::BitMatrix;
/// use rect_addr_ebmf::{sap, SapConfig, svg::partition_to_svg};
///
/// let m: BitMatrix = "11\n11".parse()?;
/// let p = sap(&m, &SapConfig::default()).partition;
/// let doc = partition_to_svg(&p, &m, &Default::default());
/// assert!(doc.starts_with("<svg") && doc.ends_with("</svg>\n"));
/// # Ok::<(), bitmatrix::ParseMatrixError>(())
/// ```
#[allow(clippy::needless_range_loop)] // (i, j) grid walk mirrors the SVG layout
pub fn partition_to_svg(p: &Partition, m: &BitMatrix, opts: &SvgOptions) -> String {
    let (rows, cols) = m.shape();
    let cs = opts.cell_size;
    let w = opts.margin * 2.0 + cols as f64 * cs;
    let h = opts.margin * 2.0 + rows as f64 * cs;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    if opts.grid {
        for i in 0..=rows {
            let y = opts.margin + i as f64 * cs;
            let _ = writeln!(
                out,
                r##"<line x1="{x1}" y1="{y}" x2="{x2}" y2="{y}" stroke="#ddd" stroke-width="1"/>"##,
                x1 = opts.margin,
                x2 = opts.margin + cols as f64 * cs,
            );
        }
        for j in 0..=cols {
            let x = opts.margin + j as f64 * cs;
            let _ = writeln!(
                out,
                r##"<line x1="{x}" y1="{y1}" x2="{x}" y2="{y2}" stroke="#ddd" stroke-width="1"/>"##,
                y1 = opts.margin,
                y2 = opts.margin + rows as f64 * cs,
            );
        }
    }
    let labels = p.labels();
    for i in 0..rows {
        for j in 0..cols {
            let cx = opts.margin + (j as f64 + 0.5) * cs;
            let cy = opts.margin + (i as f64 + 0.5) * cs;
            let r = cs * 0.36;
            match labels[i][j] {
                Some(k) => {
                    let colour = PALETTE[k % PALETTE.len()];
                    let _ = writeln!(
                        out,
                        r#"<circle cx="{cx}" cy="{cy}" r="{r}" fill="{colour}" stroke="black" stroke-width="1"><title>rect {k}</title></circle>"#
                    );
                }
                None if m.get(i, j) => {
                    // Un-partitioned 1-cell: hollow marker (flags bugs
                    // visually when rendering partial partitions).
                    let _ = writeln!(
                        out,
                        r#"<circle cx="{cx}" cy="{cy}" r="{r}" fill="none" stroke="red" stroke-width="2"/>"#
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        r##"<circle cx="{cx}" cy="{cy}" r="{r}" fill="none" stroke="#bbb" stroke-width="1" stroke-dasharray="3 2"/>"##
                    );
                }
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sap, SapConfig};

    #[test]
    fn renders_well_formed_document() {
        let m: BitMatrix = "101100\n010011\n101010\n010101\n111000\n000111"
            .parse()
            .unwrap();
        let p = sap(&m, &SapConfig::default()).partition;
        let doc = partition_to_svg(&p, &m, &SvgOptions::default());
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>\n"));
        // 5 rectangles → 5 distinct palette colours present.
        for k in 0..5 {
            assert!(doc.contains(&format!("rect {k}")), "missing rect {k}");
        }
        // 18 filled markers (one per 1-cell), 18 dashed (one per 0-cell).
        assert_eq!(doc.matches("<title>").count(), 18);
        assert_eq!(doc.matches("stroke-dasharray").count(), 18);
        // Complete partition → no red hollow markers.
        assert!(!doc.contains("stroke=\"red\""));
    }

    #[test]
    fn partial_partition_shows_uncovered_cells() {
        let m: BitMatrix = "11".parse().unwrap();
        let mut p = Partition::empty(1, 2);
        p.push(crate::Rectangle::singleton(1, 2, 0, 0));
        let doc = partition_to_svg(&p, &m, &SvgOptions::default());
        assert!(
            doc.contains("stroke=\"red\""),
            "uncovered 1-cell must be flagged"
        );
    }

    #[test]
    fn grid_can_be_disabled() {
        let m: BitMatrix = "1".parse().unwrap();
        let p = sap(&m, &SapConfig::default()).partition;
        let with = partition_to_svg(&p, &m, &SvgOptions::default());
        let without = partition_to_svg(
            &p,
            &m,
            &SvgOptions {
                grid: false,
                ..SvgOptions::default()
            },
        );
        assert!(with.matches("<line").count() > 0);
        assert_eq!(without.matches("<line").count(), 0);
    }

    #[test]
    fn document_size_scales_with_cell_size() {
        let m: BitMatrix = "10\n01".parse().unwrap();
        let p = sap(&m, &SapConfig::default()).partition;
        let doc = partition_to_svg(
            &p,
            &m,
            &SvgOptions {
                cell_size: 10.0,
                margin: 0.0,
                grid: false,
            },
        );
        assert!(doc.contains(r#"width="20" height="20""#), "{doc}");
    }
}
